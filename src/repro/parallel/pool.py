"""Backend-agnostic parallel map."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_BACKENDS = ("serial", "thread", "process")


class WorkerError(RuntimeError):
    """A ``parallel_map`` worker raised.

    Carries which item failed (``index``) and the original exception
    (``original``, also chained as ``__cause__``) — with pooled workers
    the bare exception otherwise surfaces with no hint of which of the
    N items caused it.
    """

    def __init__(self, index: int, n_items: int, original: BaseException):
        self.index = index
        self.original = original
        super().__init__(
            f"worker failed on item {index} of {n_items}: "
            f"{type(original).__name__}: {original}"
        )


def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    backend: str = "serial",
    n_workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``backend``:

    - ``"serial"`` — plain loop (default: correct everywhere, zero
      overhead; experiment folds are usually fast enough).
    - ``"thread"`` — thread pool; effective when ``fn`` releases the GIL
      (NumPy-heavy work does).
    - ``"process"`` — process pool; requires ``fn`` and items to be
      picklable (module-level functions, plain data).

    Falls back to serial for 0/1 items or 1 worker — no pool overhead for
    degenerate cases.

    A worker exception is re-raised as :class:`WorkerError` naming the
    failing item's index, with the original exception chained, on every
    backend.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    if n_workers is not None and n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    workers = n_workers if n_workers is not None else _default_workers()
    n = len(items)
    if backend == "serial" or workers == 1 or n <= 1:
        out: List[R] = []
        for i, item in enumerate(items):
            try:
                out.append(fn(item))
            except Exception as exc:
                raise WorkerError(i, n, exc) from exc
        return out
    executor = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    results: List[R] = []
    with executor(max_workers=workers) as pool:
        # Executor.map re-raises a worker's exception when its position
        # in the result stream is reached, which is exactly the failing
        # item's index.
        stream = pool.map(fn, items)
        for i in range(n):
            try:
                results.append(next(stream))
            except Exception as exc:
                raise WorkerError(i, n, exc) from exc
    return results
