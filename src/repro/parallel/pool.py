"""Backend-agnostic parallel map."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_BACKENDS = ("serial", "thread", "process")


def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    backend: str = "serial",
    n_workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``backend``:

    - ``"serial"`` — plain loop (default: correct everywhere, zero
      overhead; experiment folds are usually fast enough).
    - ``"thread"`` — thread pool; effective when ``fn`` releases the GIL
      (NumPy-heavy work does).
    - ``"process"`` — process pool; requires ``fn`` and items to be
      picklable (module-level functions, plain data).

    Falls back to serial for 0/1 items or 1 worker — no pool overhead for
    degenerate cases.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
    if n_workers is not None and n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    workers = n_workers if n_workers is not None else _default_workers()
    if backend == "serial" or workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
