"""Parallel execution helpers.

Fold/split evaluation in the experiment runner is embarrassingly
parallel; these helpers provide a backend-agnostic chunked map
(serial / threads / processes) per the hpc-parallel guide's advice to
parallelize at the outermost loop.
"""

from repro.parallel.partition import chunk_evenly, split_indices
from repro.parallel.pool import WorkerError, parallel_map

__all__ = ["parallel_map", "WorkerError", "chunk_evenly", "split_indices"]
