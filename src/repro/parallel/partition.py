"""Work partitioning utilities."""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def chunk_evenly(items: Sequence[T], n_chunks: int) -> List[List[T]]:
    """Split ``items`` into ``n_chunks`` near-equal contiguous chunks.

    Sizes differ by at most one; empty chunks are dropped (when
    ``n_chunks`` exceeds ``len(items)``).
    """
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    n = len(items)
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    base = n // n_chunks
    extra = n % n_chunks
    out: List[List[T]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


def split_indices(n: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Half-open index ranges covering ``range(n)`` in near-equal parts."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n_chunks < 1:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    base = n // n_chunks
    extra = n % n_chunks
    out = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out
