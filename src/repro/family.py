"""Family-aware hierarchical recognition: a coarse→fine depth cascade.

The paper's flat label space cannot distinguish "same application, new
version" from "unknown application": both produce zero full-depth
matches.  Its own rounding-depth mechanism (§3, Table 1) is a natural
coarse→fine knob, though — at a shallow depth, nearby levels (a new
version's slightly shifted working set) collapse onto one key, while
genuinely different applications stay apart.  This module layers a
two-tier hierarchy on top of any :class:`~repro.engine.backend.
DictionaryBackend`:

- the **fine tier** is the full-depth dictionary you already have —
  flat, sharded, columnar (npz or mmap, with delta-log learning), or
  remote; every label names an application *variant* (a version);
- the **coarse tier** is a small flat in-memory EFD whose keys are the
  fine keys re-rounded at ``coarse_depth`` and whose labels are *family*
  names (the application stripped of its version suffix).

The containment invariant the cascade relies on
-----------------------------------------------
A coarse key is always the projection ``round_depth(fine_key.value,
coarse_depth)`` of a *fine* key — never a fresh rounding of the raw
measurement.  Double rounding makes the two differ at bucket edges
(``round_depth(1.4996, 3) == 1.5`` projects to ``2.0`` at depth 1,
while the raw value rounds to ``1.0``), so probing the coarse tier with
raw-value roundings would break containment.  Projected on both the
build side and the probe side, the invariant is exact: every stored
fine key's projection is present in the coarse tier under its label's
family, hence

- a probe whose projection misses the coarse tier **cannot** match the
  fine tier — the cascade answers "unknown" without touching the fine
  backend at all (the depth-cascade short-circuit; for unknown-heavy
  traffic the coarse tier plays the same role as the columnar store's
  negative-lookup keyfilters, one layer earlier and for every backend);
- a fine-tier match always lands inside a family the coarse tier voted
  for — property-tested in ``tests/test_engine_properties.py``.

Verdicts (:class:`FamilyVerdict`) refine the binary known/unknown of
:class:`~repro.core.matcher.MatchResult` into three outcomes:
``"match"`` (family and variant recognized at full depth),
``"near-family"`` (the coarse tier matched but the fine tier missed —
same application, new version), and ``"unknown"`` (no family matched).
With singleton families and ``coarse_depth == fine_depth`` the cascade
degenerates to flat full-depth recognition, element-wise — the
equivalence discipline every backend is held to.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.dictionary import ExecutionFingerprintDictionary, app_of_label
from repro.core.fingerprint import DEFAULT_INTERVAL, Fingerprint
from repro.core.matcher import MatchResult
from repro.core.rounding import round_depth

#: The three cascade outcomes, from strongest to weakest evidence.
OUTCOME_MATCH = "match"
OUTCOME_NEAR_FAMILY = "near-family"
OUTCOME_UNKNOWN = "unknown"
OUTCOMES = (OUTCOME_MATCH, OUTCOME_NEAR_FAMILY, OUTCOME_UNKNOWN)

#: ``app-1.2`` / ``app-v3`` style version suffixes: a trailing dash
#: segment starting with a digit (optionally ``v``-prefixed).
_VERSION_SUFFIX = re.compile(r"^(?P<family>.+)-(?P<version>v?\d[\w.]*)$")


def split_version(app: str) -> Tuple[str, Optional[str]]:
    """Split an application name into ``(family, version)``.

    ``"lammps-2.1" -> ("lammps", "2.1")``; names without a version
    suffix are their own family: ``"miniAMR" -> ("miniAMR", None)``.
    """
    m = _VERSION_SUFFIX.match(app)
    if m is None:
        return app, None
    return m.group("family"), m.group("version")


class FamilySpec:
    """The label hierarchy: which applications belong to which family.

    A spec maps *application* names (the version-qualified names that
    :func:`~repro.core.dictionary.app_of_label` derives from labels) to
    family names.  Families keep first-seen order — the coarse tier's
    tie-breaking order, mirroring the flat dictionary's app order.
    Applications not covered by the explicit mapping fall back to the
    :func:`split_version` heuristic, so a spec built from today's
    dictionary keeps working when tomorrow's learn introduces a new
    version of a known family.
    """

    def __init__(self, mapping: Optional[Mapping[str, str]] = None):
        self._family_of: Dict[str, str] = {}
        for app, family in (mapping or {}).items():
            if not app or not family:
                raise ValueError(
                    f"family spec entries must be non-empty, got "
                    f"{app!r} -> {family!r}"
                )
            self._family_of[app] = family

    # -- construction -------------------------------------------------------
    @classmethod
    def singleton(cls, apps: Sequence[str]) -> "FamilySpec":
        """Every application is its own family (the degenerate hierarchy
        under which the cascade must equal flat recognition)."""
        return cls({app: app for app in apps})

    @classmethod
    def from_apps(cls, apps: Sequence[str]) -> "FamilySpec":
        """Derive families from version suffixes of application names."""
        return cls({app: split_version(app)[0] for app in apps})

    @classmethod
    def from_backend(cls, backend) -> "FamilySpec":
        """Derive the hierarchy from a dictionary's label→app mapping."""
        return cls.from_apps(backend.app_names())

    # -- queries ------------------------------------------------------------
    def family_of_app(self, app: str) -> str:
        explicit = self._family_of.get(app)
        if explicit is not None:
            return explicit
        return split_version(app)[0]

    def family_of_label(self, label: str) -> str:
        return self.family_of_app(app_of_label(label))

    def version_of_app(self, app: str) -> Optional[str]:
        """The version suffix of ``app``, or None for an unversioned name."""
        family = self._family_of.get(app)
        if family is not None and app != family and app.startswith(family + "-"):
            return app[len(family) + 1:]
        return split_version(app)[1]

    def families(self, apps: Sequence[str]) -> List[str]:
        """Families of ``apps``, deduped, in first-appearance order."""
        return list(dict.fromkeys(self.family_of_app(app) for app in apps))

    def variants_by_family(self, apps: Sequence[str]) -> Dict[str, List[str]]:
        """``{family: [app, ...]}`` over ``apps``, both in first-seen order."""
        out: Dict[str, List[str]] = {}
        for app in apps:
            out.setdefault(self.family_of_app(app), []).append(app)
        return out

    # -- (de)serialization --------------------------------------------------
    def as_dict(self) -> Dict[str, str]:
        return dict(self._family_of)

    @classmethod
    def from_dict(cls, mapping: Mapping[str, str]) -> "FamilySpec":
        return cls(mapping)

    def __repr__(self) -> str:
        n_fam = len(set(self._family_of.values()))
        return f"FamilySpec({len(self._family_of)} app(s), {n_fam} family(ies))"


def save_family_spec(
    path: str, spec: FamilySpec, coarse_depth: int, fine_depth: int
) -> None:
    """Write a family hierarchy (plus its depth pair) as JSON."""
    payload = {
        "format": "efd-family-spec",
        "version": 1,
        "coarse_depth": int(coarse_depth),
        "fine_depth": int(fine_depth),
        "families": spec.as_dict(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_family_spec(path: str) -> Tuple[FamilySpec, int, int]:
    """Load a spec written by :func:`save_family_spec`.

    Returns ``(spec, coarse_depth, fine_depth)``.
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != "efd-family-spec":
        raise ValueError(f"{path} is not a family spec (missing format marker)")
    return (
        FamilySpec.from_dict(payload["families"]),
        int(payload["coarse_depth"]),
        int(payload["fine_depth"]),
    )


@dataclass(frozen=True)
class FamilyVerdict:
    """Outcome of cascading one execution through coarse then fine tier.

    Duck-type compatible with :class:`~repro.core.matcher.MatchResult`
    (``prediction`` / ``votes`` / ``is_unknown`` / counters delegate to
    the embedded full-depth result), so the serving stack and
    :meth:`EngineStats.record_batch` consume verdicts unchanged.
    """

    outcome: str                     # "match" | "near-family" | "unknown"
    family: Optional[str]            # winning family (None when unknown)
    variant: Optional[str]           # full-depth app prediction, if any
    version: Optional[str]           # parsed version suffix of the variant
    match: MatchResult               # fine-tier result == flat recognition
    family_ranked: Tuple[str, ...]   # coarse-tier tied-or-winning families
    family_votes: Dict[str, int]     # family -> coarse-matched node count

    # -- MatchResult-compatible surface -------------------------------------
    @property
    def ranked(self) -> Tuple[str, ...]:
        return self.match.ranked

    @property
    def votes(self) -> Dict[str, int]:
        return self.match.votes

    @property
    def matched_labels(self) -> Dict[str, int]:
        return self.match.matched_labels

    @property
    def n_fingerprints(self) -> int:
        return self.match.n_fingerprints

    @property
    def n_missing(self) -> int:
        return self.match.n_missing

    @property
    def prediction(self) -> Optional[str]:
        return self.match.prediction

    @property
    def is_tie(self) -> bool:
        return self.match.is_tie

    def confidence(self) -> float:
        return self.match.confidence()

    # -- cascade surface ----------------------------------------------------
    @property
    def is_unknown(self) -> bool:
        """True only for a full miss — near-family is *not* unknown."""
        return self.outcome == OUTCOME_UNKNOWN

    @property
    def is_near_family(self) -> bool:
        """Coarse tier matched, fine tier missed: same app, new version."""
        return self.outcome == OUTCOME_NEAR_FAMILY

    def describe(self) -> str:
        """One-line human rendering for reports and serve verdict lines."""
        if self.outcome == OUTCOME_MATCH:
            tag = f"family={self.family} variant={self.variant}"
            if self.version is not None:
                tag += f" (version {self.version})"
            return f"match {tag}"
        if self.outcome == OUTCOME_NEAR_FAMILY:
            return (f"near-family family={self.family} "
                    f"(same app, new version)")
        return "unknown (no family matched)"


class FamilyCascade:
    """Two-tier hierarchical EFD over any dictionary backend.

    Parameters
    ----------
    fine:
        The full-depth dictionary — any
        :class:`~repro.engine.backend.DictionaryBackend`.
    spec:
        The label hierarchy.  Defaults to families derived from the
        fine tier's application names via :func:`split_version`.
    coarse_depth / fine_depth:
        The depth pair.  ``coarse_depth <= fine_depth``; equality (with
        a singleton spec) degenerates the cascade to flat recognition.
    stats:
        Optional :class:`~repro.engine.stats.EngineStats` receiving the
        cascade counters (coarse hits, short-circuits, refinements,
        near-family verdicts).

    The coarse tier is derived state: it is rebuilt from the fine
    tier's entries whenever the fine backend's ``version`` moved behind
    the cascade's back, and kept in sync incrementally by the
    write-through :meth:`add` / :meth:`learn` paths — interleaved
    learning through the cascade never pays a rebuild.
    """

    def __init__(
        self,
        fine,
        spec: Optional[FamilySpec] = None,
        coarse_depth: int = 1,
        fine_depth: int = 3,
        stats=None,
    ):
        if coarse_depth < 1:
            raise ValueError(
                f"rounding depth must be >= 1, got {coarse_depth}"
            )
        if fine_depth < coarse_depth:
            raise ValueError(
                f"fine_depth must be >= coarse_depth, got "
                f"fine_depth={fine_depth} < coarse_depth={coarse_depth}"
            )
        self.fine = fine
        self.spec = spec if spec is not None else FamilySpec.from_backend(fine)
        self.coarse_depth = int(coarse_depth)
        self.fine_depth = int(fine_depth)
        self.stats = stats
        self.coarse = ExecutionFingerprintDictionary()
        self._synced_version: Optional[int] = None
        self.rebuild_coarse()

    # -- the projection -----------------------------------------------------
    def project(self, fingerprint: Fingerprint) -> Fingerprint:
        """Coarse key of a fine key: the value re-rounded at coarse depth.

        Always applied to *fine-depth* values (stored keys and probes
        alike) — see the module docstring for why raw-value rounding
        would break containment.
        """
        return Fingerprint(
            metric=fingerprint.metric,
            node=fingerprint.node,
            interval=fingerprint.interval,
            value=round_depth(fingerprint.value, self.coarse_depth),
        )

    # -- coarse-tier maintenance --------------------------------------------
    def rebuild_coarse(self) -> None:
        """Re-derive the coarse tier from the fine tier's live entries.

        Family label order mirrors the fine tier's application order
        (mapped through the spec, deduped), so coarse tie-breaking
        agrees with flat tie-breaking in the degenerate configuration.
        """
        coarse = ExecutionFingerprintDictionary()
        for family in self.spec.families(self.fine.app_names()):
            coarse.register_label(family)
        for fp, labels in self.fine.entries():
            proj = self.project(fp)
            for label in labels:
                coarse.add(proj, self.spec.family_of_label(label))
        self.coarse = coarse
        self._synced_version = self.fine.version

    def _sync(self) -> None:
        if self.fine.version != self._synced_version:
            self.rebuild_coarse()

    # -- write-through learning ---------------------------------------------
    def add(self, fingerprint: Fingerprint, label: str) -> None:
        """Insert one observation into both tiers."""
        self._sync()
        self.fine.add(fingerprint, label)
        self.coarse.add(self.project(fingerprint), self.spec.family_of_label(label))
        self._synced_version = self.fine.version

    def learn(
        self, fingerprints: Sequence[Optional[Fingerprint]], label: str
    ) -> int:
        """Insert all non-``None`` fingerprints under ``label`` (both
        tiers); returns how many landed — the cascade's analogue of
        ``add_many`` on a plain backend."""
        self._sync()
        n = self.fine.add_many(fingerprints, label)
        family = self.spec.family_of_label(label)
        for fp in fingerprints:
            if fp is not None:
                self.coarse.add(self.project(fp), family)
        self._synced_version = self.fine.version
        return n

    # -- recognition --------------------------------------------------------
    def cascade_match(
        self,
        fingerprint_lists: Sequence[Sequence[Optional[Fingerprint]]],
        backend: str = "serial",
        n_workers: Optional[int] = None,
    ) -> List[FamilyVerdict]:
        """Cascade a batch of executions' *fine-depth* fingerprints.

        Per execution: project every fingerprint onto the coarse tier
        and vote at family level; probes whose projection misses are
        guaranteed global misses and never reach the fine backend.  The
        surviving unique keys resolve through the fine backend's batch
        path (``lookup_many`` scatter/gather for a remote store, the
        vectorized columnar index, shard buckets, or chunked flat
        lookups), and the full-depth verdict is assembled exactly as
        flat recognition would — so ``verdict.match`` is element-wise
        equal to ``match_fingerprints(fine, fps)``.
        """
        verdicts, _ = self._cascade(fingerprint_lists, backend, n_workers)
        return verdicts

    def _cascade(
        self,
        fingerprint_lists: Sequence[Sequence[Optional[Fingerprint]]],
        backend: str = "serial",
        n_workers: Optional[int] = None,
    ) -> Tuple[List[FamilyVerdict], int]:
        """:meth:`cascade_match` plus the fine-tier hit count (the
        ``n_hits`` that :meth:`EngineStats.record_batch` expects)."""
        # Deferred: repro.engine.batch imports the whole engine stack.
        from repro.engine.batch import _batch_lookup

        self._sync()
        unique: Dict[Fingerprint, None] = {}
        for fps in fingerprint_lists:
            for fp in fps:
                if fp is not None:
                    unique.setdefault(fp, None)
        # Coarse tier: one O(1) probe per unique key, families deduped
        # per key by the dictionary's own label-list semantics.
        coarse_table: Dict[Fingerprint, List[str]] = {
            fp: self.coarse.lookup(self.project(fp)) for fp in unique
        }
        need_fine = [fp for fp in unique if coarse_table[fp]]
        fine_table = (
            _batch_lookup(self.fine, need_fine, backend, n_workers, self.stats)
            if need_fine
            else {}
        )
        fam_position = {f: i for i, f in enumerate(self.coarse.labels())}
        app_position = {a: i for i, a in enumerate(self.fine.app_names())}

        verdicts: List[FamilyVerdict] = []
        n_hits = 0
        coarse_hits = 0
        short_circuits = 0
        n_near = 0
        for fps in fingerprint_lists:
            fam_votes: Dict[str, int] = {}
            app_votes: Dict[str, int] = {}
            matched_labels: Dict[str, int] = {}
            n_missing = 0
            n_fingerprints = 0
            for fp in fps:
                if fp is None:
                    n_missing += 1
                    continue
                n_fingerprints += 1
                families = coarse_table[fp]
                if not families:
                    short_circuits += 1
                    continue
                coarse_hits += 1
                for family in families:
                    fam_votes[family] = fam_votes.get(family, 0) + 1
                labels = fine_table.get(fp, [])
                if not labels:
                    continue
                n_hits += 1
                apps_this_node: Dict[str, None] = {}
                for label in labels:
                    matched_labels[label] = matched_labels.get(label, 0) + 1
                    apps_this_node.setdefault(app_of_label(label), None)
                for app in apps_this_node:
                    app_votes[app] = app_votes.get(app, 0) + 1
            verdicts.append(
                self._verdict(
                    fam_votes, app_votes, matched_labels,
                    n_fingerprints, n_missing, fam_position, app_position,
                )
            )
            if verdicts[-1].outcome == OUTCOME_NEAR_FAMILY:
                n_near += 1
        if self.stats is not None:
            self.stats.record_cascade(
                coarse_hits=coarse_hits,
                short_circuits=short_circuits,
                refinements=len(need_fine),
                near_family=n_near,
            )
        return verdicts, n_hits

    def _verdict(
        self,
        fam_votes: Dict[str, int],
        app_votes: Dict[str, int],
        matched_labels: Dict[str, int],
        n_fingerprints: int,
        n_missing: int,
        fam_position: Dict[str, int],
        app_position: Dict[str, int],
    ) -> FamilyVerdict:
        """Assemble one execution's verdict from both tiers' votes."""
        # Family ranking, tie-broken by the coarse tier's first-seen
        # family order (the mirror of the flat dictionary's app order).
        if fam_votes:
            top = max(fam_votes.values())
            fam_tied = [f for f, c in fam_votes.items() if c == top]
            if len(fam_tied) > 1:
                n = len(fam_position)
                fam_tied.sort(key=lambda f: fam_position.get(f, n))
            family_ranked = tuple(fam_tied)
        else:
            family_ranked = ()
        # Fine (app/variant) ranking, identical to flat vote().
        if app_votes:
            top = max(app_votes.values())
            tied = [a for a, c in app_votes.items() if c == top]
            if len(tied) > 1:
                n = len(app_position)
                tied.sort(key=lambda a: app_position.get(a, n))
            ranked = tuple(tied)
        else:
            ranked = ()
        match = MatchResult(
            ranked=ranked,
            votes=app_votes,
            matched_labels=matched_labels,
            n_fingerprints=n_fingerprints,
            n_missing=n_missing,
        )
        if not family_ranked:
            # Containment: no coarse match means no fine match either.
            return FamilyVerdict(
                outcome=OUTCOME_UNKNOWN, family=None, variant=None,
                version=None, match=match, family_ranked=(), family_votes={},
            )
        prediction = match.prediction
        if prediction is None:
            return FamilyVerdict(
                outcome=OUTCOME_NEAR_FAMILY,
                family=family_ranked[0],
                variant=None,
                version=None,
                match=match,
                family_ranked=family_ranked,
                family_votes=fam_votes,
            )
        # A fine-tier winner is reported under its *own* family (which,
        # by containment, always holds coarse votes — the property the
        # equivalence matrix pins).
        return FamilyVerdict(
            outcome=OUTCOME_MATCH,
            family=self.spec.family_of_app(prediction),
            variant=prediction,
            version=self.spec.version_of_app(prediction),
            match=match,
            family_ranked=family_ranked,
            family_votes=fam_votes,
        )

    # -- record-level convenience -------------------------------------------
    def recognize_records(
        self,
        records: Sequence,
        metric: str = "nr_mapped_vmstat",
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        backend: str = "serial",
        n_workers: Optional[int] = None,
    ) -> List[FamilyVerdict]:
        """Cascade stored :class:`~repro.data.dataset.ExecutionRecord`\\ s:
        fingerprints are built once at ``fine_depth`` (the coarse probes
        are projections, never a second pass over the telemetry)."""
        from repro.engine.batch import build_fingerprints_batch

        fingerprint_lists = build_fingerprints_batch(
            records, metric, self.fine_depth, interval
        )
        return self.cascade_match(
            fingerprint_lists, backend=backend, n_workers=n_workers
        )

    def coarse_stats(self) -> Dict[str, int]:
        """Tier sizes: how small the coarse tier actually stays."""
        return {
            "fine_keys": len(self.fine),
            "coarse_keys": len(self.coarse),
            "families": len(self.coarse.labels()),
            "variants": len(self.fine.app_names()),
        }

    def __repr__(self) -> str:
        kind = type(self.fine).__name__
        return (
            f"FamilyCascade({kind}, coarse_depth={self.coarse_depth}, "
            f"fine_depth={self.fine_depth}, "
            f"{len(self.coarse)}/{len(self.fine)} coarse/fine key(s))"
        )


def make_family_engine(
    cascade: FamilyCascade,
    metric: str = "nr_mapped_vmstat",
    interval: Tuple[float, float] = DEFAULT_INTERVAL,
    unknown_label: str = "unknown",
    backend: str = "serial",
    n_workers: Optional[int] = None,
):
    """A :class:`FamilyBatchRecognizer` bound to ``cascade`` (deferred
    import helper so ``repro.family`` stays importable without the
    engine stack)."""
    from repro.engine.batch import BatchRecognizer, build_fingerprints_batch

    class FamilyBatchRecognizer(BatchRecognizer):
        """Drop-in batch engine whose verdicts are cascade verdicts.

        The serving stack (:class:`repro.serve.IngestService`) only ever
        calls ``recognize_sessions`` / reads ``stats`` / ``dictionary``,
        and :class:`FamilyVerdict` is MatchResult-duck-typed, so family
        serving is this subclass plus two ``ServeConfig`` knobs.
        """

        def __init__(self):
            super().__init__(
                cascade.fine,
                metric=metric,
                depth=cascade.fine_depth,
                interval=interval,
                unknown_label=unknown_label,
                backend=backend,
                n_workers=n_workers,
            )
            self.cascade = cascade
            cascade.stats = self.stats

        def _match(self, fingerprint_lists):
            verdicts, n_hits = cascade._cascade(
                fingerprint_lists, backend=self.backend,
                n_workers=self.n_workers,
            )
            self._record_stats(verdicts, n_hits)
            return verdicts

        def recognize_records(self, records):
            fingerprint_lists = build_fingerprints_batch(
                records, self.metric, self.depth, self.interval
            )
            return self._match(fingerprint_lists)

        def __repr__(self):
            return (
                f"FamilyBatchRecognizer({type(cascade.fine).__name__}, "
                f"coarse_depth={cascade.coarse_depth}, "
                f"fine_depth={cascade.fine_depth})"
            )

    return FamilyBatchRecognizer()
