"""Raw memory-mapped shard files: the columnar store's serving layout.

The compressed ``.npz`` shard codec is the *archival* layout — small on
disk, but every process that opens it decompresses its own private copy
of every column before the first vectorized probe can run.  This module
is the *serving* layout (``efd engine compact --layout mmap``): each
shard's parallel arrays are written as one raw little-endian file that
:class:`~repro.engine.columnar.ColumnarDictionary` opens with
:func:`numpy.memmap`, so

- **query-ready is O(manifest)** — opening a shard maps it, it does not
  read it; columns fault in lazily as probes touch them;
- **N serving processes share one copy** — the mapping is backed by the
  OS page cache, so every ``efd serve`` worker (and the process-pool
  batch backend) reads the same physical pages instead of each holding
  a decompressed private heap copy;
- **the vectorized indexes build zero-copy** — the rank-packed
  ``searchsorted`` index consumes the mapped arrays directly (a
  single-shard store concatenates nothing at all).

File format (all little-endian, every column 64-byte aligned)::

    offset 0   magic        b"EFDMMAP1"
           8   u64 n_keys
          16   u64 n_label_entries
          24   u64 n_label_order
          32   zero padding to 64
          64   columns of repro.core.serialization.COLUMN_NAMES, in
               order, each starting at the next 64-byte boundary with
               the dtype/length given by COLUMN_DTYPES/column_lengths

The total size is a pure function of the three header scalars, so
truncation is detected by a size check before anything is mapped; the
manifest carries a blake2b checksum of the whole file, verified once on
the first *bulk* access (:meth:`MmapShardFile.columns` — index build,
iteration, warm-start; bit flips raise by name, and the verification
pass doubles as a page-cache prefault).  The hash-scan verification
path reads a handful of rows through :meth:`MmapShardFile.peek_columns`
after the structural checks alone, so a cold miss-heavy batch faults in
kilobytes rather than checksumming whole shards.  Integer columns are
stored at full width — narrowing would force the reader to copy,
defeating the layout.
"""

from __future__ import annotations

import hashlib
import os
import struct
from typing import Dict, Optional

import numpy as np

from repro.core.serialization import (
    COLUMN_DTYPES,
    COLUMN_NAMES,
    column_lengths,
)

MMAP_MAGIC = b"EFDMMAP1"
_ALIGN = 64
#: magic + n_keys + n_label_entries + n_label_order
_HEADER = struct.Struct("<8sQQQ")


def mmap_filename(index: int, generation: int = 0) -> str:
    """Shard file name in the mmap layout (generation-suffixed like npz)."""
    if generation:
        return f"shard-{index:02d}.g{generation}.mmap"
    return f"shard-{index:02d}.mmap"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _layout(n_keys: int, n_label_entries: int, n_label_order: int):
    """(name, offset, length, dtype) per column, plus the total file size."""
    lengths = column_lengths(n_keys, n_label_entries, n_label_order)
    plan = []
    offset = _aligned(_HEADER.size)
    for name in COLUMN_NAMES:
        dtype = np.dtype(COLUMN_DTYPES[name])
        plan.append((name, offset, lengths[name], dtype))
        offset = _aligned(offset + lengths[name] * dtype.itemsize)
    return plan, offset


def write_mmap_shard(path: str, columns: Dict[str, np.ndarray]) -> str:
    """Write one shard's columns as a raw aligned file; returns checksum.

    The checksum (blake2b-16 over the full file bytes, computed while
    writing) goes into the directory manifest — the file itself stays
    byte-addressable with no trailer to skip.
    """
    n_keys = len(columns["node"]) if "node" in columns else 0
    n_entries = len(columns["label_ids"])
    n_order = len(columns["label_order"])
    plan, total = _layout(n_keys, n_entries, n_order)
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "wb") as fh:
        cursor = 0

        def emit(data: bytes) -> None:
            nonlocal cursor
            fh.write(data)
            digest.update(data)
            cursor += len(data)

        emit(_HEADER.pack(MMAP_MAGIC, n_keys, n_entries, n_order))
        for name, offset, length, dtype in plan:
            if offset > cursor:
                emit(b"\x00" * (offset - cursor))
            array = np.ascontiguousarray(columns[name], dtype=dtype)
            if len(array) != length:
                raise ValueError(
                    f"column {name!r} holds {len(array)} elements, "
                    f"expected {length}"
                )
            emit(array.tobytes())
        if total > cursor:
            emit(b"\x00" * (total - cursor))
    return digest.hexdigest()


class MmapShardFile:
    """One ``shard-NN.mmap``: mapped on demand, checksummed once.

    Drop-in for the npz ``_ShardFile`` proxy — same attributes, same
    ``columns()`` contract, same error names — except ``columns()``
    returns zero-copy views into one shared :func:`numpy.memmap`
    instead of decompressed private arrays.  Structural damage
    (missing file, bad magic, size/key-count mismatch) is rejected
    before mapping; the manifest checksum is verified on the first
    ``columns()`` call, which also prefaults the shard's pages.
    """

    __slots__ = ("path", "name", "checksum", "n_keys", "_columns", "_mm",
                 "_verified")

    def __init__(self, path: str, name: str, checksum: Optional[str],
                 n_keys: int):
        self.path = path
        self.name = name
        self.checksum = checksum
        self.n_keys = int(n_keys)
        self._columns: Optional[Dict[str, np.ndarray]] = None
        self._mm: Optional[np.memmap] = None
        self._verified = False

    def columns(self) -> Dict[str, np.ndarray]:
        """The shard's parallel arrays as views over the mapping.

        The bulk accessor: the manifest checksum is verified on the
        first call (the pass doubles as a page-cache prefault), so
        every full hydration — index build, iteration, ``_concat`` —
        sees integrity-checked bytes.
        """
        columns = self._map()
        if not self._verified:
            if self.checksum is not None:
                digest = hashlib.blake2b(memoryview(self._mm),
                                         digest_size=16)
                if digest.hexdigest() != self.checksum:
                    raise ValueError(
                        f"shard file {self.name!r} is corrupt: checksum "
                        f"mismatch (expected {self.checksum})"
                    )
            self._verified = True
        return columns

    def peek_columns(self) -> Dict[str, np.ndarray]:
        """The mapped views *without* the whole-file checksum pass.

        For the few-row hash-scan verification path: structural damage
        (missing file, bad magic, truncation, key-count mismatch) is
        still rejected before mapping, but only the touched pages fault
        in — a cold 1k-batch with a handful of hits reads kilobytes,
        not the whole shard.  The checksum still runs on the first
        *bulk* access (:meth:`columns`), so a full hydration or
        ``warm_index`` detects media damage exactly as before.
        """
        return self._map()

    def _map(self) -> Dict[str, np.ndarray]:
        if self._columns is not None:
            return self._columns
        if not os.path.isfile(self.path):
            raise FileNotFoundError(
                f"columnar EFD is incomplete: missing shard file "
                f"{self.name!r}"
            )
        size = os.path.getsize(self.path)
        if size < _HEADER.size:
            raise ValueError(
                f"shard file {self.name!r} is corrupt: {size} bytes is "
                f"smaller than the header"
            )
        with open(self.path, "rb") as fh:
            header = fh.read(_HEADER.size)
        magic, n_keys, n_entries, n_order = _HEADER.unpack(header)
        if magic != MMAP_MAGIC:
            raise ValueError(
                f"shard file {self.name!r} is corrupt: bad magic {magic!r}"
            )
        if n_keys != self.n_keys:
            raise ValueError(
                f"shard file {self.name!r} holds {n_keys} keys but the "
                f"manifest expects {self.n_keys}"
            )
        plan, total = _layout(n_keys, n_entries, n_order)
        if size != total:
            raise ValueError(
                f"shard file {self.name!r} is corrupt: file is {size} "
                f"bytes but the header implies {total} (truncated?)"
            )
        mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        columns: Dict[str, np.ndarray] = {}
        for name, offset, length, dtype in plan:
            view = mm[offset:offset + length * dtype.itemsize].view(dtype)
            # On little-endian hosts '<i8'/'<f8' are the native int64/
            # float64 — consumers see the usual dtypes, zero-copy.
            columns[name] = view.view(
                np.float64 if name == "value" else np.int64
            ) if dtype.isnative else view
        self._mm = mm
        self._columns = columns
        return columns
