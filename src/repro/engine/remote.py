"""Distributed shard fan-out: probe servers, a resilient scatter/gather
client, and the fault-handling layer that makes it production-grade.

ROADMAP item 1 asks for a recognition tier whose dictionary exceeds one
host's RAM: shards scattered across hosts behind the same
:class:`~repro.engine.backend.DictionaryBackend` seam everything else
already speaks.  The routing is the easy part — EFD keys partition by
``stable_hash % N`` exactly as in :mod:`repro.engine.sharded`, so a
probe batch buckets by shard and fans out to whichever hosts own those
shards.  The hard part (per GRR's frontend/worker fleet and SIREN's
system-scale framing) is surviving slow, flapping, and dead hosts, so
every remote call is wrapped in a resilience layer:

- **deadline budgets** — a batch gets one wall-clock budget; every
  connect/read timeout is derived from the *remaining* budget, so a
  slow host cannot starve the rest of the batch;
- **bounded retries** with exponential backoff + full jitter
  (:class:`repro._util.backoff.BackoffPolicy`, shared with the
  replication follower's redial loop);
- **hedged probes** — when a primary host takes longer than a latency
  percentile of recent calls, the same bucket is duplicated to the
  shard's next replica and the first answer wins;
- **per-host circuit breakers** (closed/open/half-open with probe-based
  recovery) so a dead host costs one timeout, not one per batch;
- **graceful degradation** — when every host of a shard is down, the
  batch still resolves: the unreachable keys get explicit ``degraded``
  verdicts (unknown-with-reason, never silently wrong) and the
  ``remote_*`` counters on :class:`~repro.engine.stats.EngineStats`
  record exactly what happened.

Wire protocol v1: u32 length-prefixed JSON frames
(:mod:`repro._util.framing` — the replication codec), one request frame
per connection turn::

    {"op": "status"}                                  # shards, tables, counts
    {"op": "probe", "keys": [REC, ...], "counts": B}  # -> {"ok", "labels", ...}
    {"op": "learn", "records": [REC, ...]}            # delta-log record shapes
    {"op": "entries", "shard": S}                     # full shard dump
    {"op": "ping"}                                    # liveness / breaker probe

where ``REC`` is the delta-log record encoding of
:func:`repro.core.serialization.fingerprint_to_record`.

Wire protocol v2 closes the wire tax that per-key JSON plus a fresh
TCP dial per request put on the fan-out (measured ~5x against the
in-process stores).  It is negotiated per connection — a JSON
``{"op": "hello", "proto": 2}`` on first use; a v1 server answers it
with its usual unknown-op error reply and the client transparently
stays on v1 over the very same socket — and adds, on top of the v1
ops (which remain available on a v2 connection):

- **persistent pooled connections** — the client keeps a small
  per-host pool of sockets and pipelines multiple probe buckets per
  connection, each frame tagged by a request id;
- **a zero-copy binary probe codec** (:mod:`repro._util.framing`
  ``encode_probe_request`` / ``encode_probe_reply``) — probe batches
  travel as ``int32`` metric/interval-id + ``int64`` node + ``float64``
  value columns against per-connection interned string tables
  (negotiated at hello, extended incrementally in-band), and replies
  come back as match-count offsets plus CSR label-id arrays;
- **server-side bulk lookup** — a decoded bucket goes through the
  store's ``lookup_many`` bulk path (or straight dict hits for plain
  sharded stores) instead of 20k per-key probes.  Per-key shard
  ownership is spot-checked on a sample (the client routes with the
  same ``stable_hash``), trading the v1 per-key boundary check for
  the vectorized fast path;
- **filter mirrors** — a binary ``filters`` op ships each shard's
  Bloom sidecar to the client, which then resolves definitely-absent
  keys locally without any wire round trip (re-fetched when a reply's
  store version shows the sidecar went stale; writes through this
  client are inserted into the mirror inline).

Healthy-path verdicts are element-wise equal to the single-process
stores — pinned by the equivalence matrix in
``tests/test_engine_properties.py`` — and the fault layer is gated by
the live-topology sweeps in ``tests/test_faultinject.py``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import random
import select
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro._util import framing
from repro._util.backoff import BackoffPolicy
from repro.core.dictionary import DictionaryStats, app_of_label
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import (
    fingerprint_from_record,
    fingerprint_to_record,
)
from repro.engine.backend import DictionaryBackend, merge_into
from repro.engine.keyfilter import KeyFilter, key_hashes
from repro.engine.sharded import ShardedDictionary, shard_index
from repro.engine.stats import EngineStats

__all__ = [
    "CircuitBreaker",
    "RemoteDegradedError",
    "RemoteError",
    "RemoteHost",
    "RemoteOpError",
    "RemoteShardBackend",
    "RemoteVerdict",
    "ShardServer",
    "ShardServerThread",
    "parse_remote_spec",
]


#: In-flight pipelined probe chunks per connection.  A bounded sliding
#: window (send up to W, then read one before sending the next) keeps
#: both peers' socket buffers from deadlocking on a huge batch while
#: still hiding one round trip behind the previous chunk's encode.
_PIPELINE_WINDOW = 4

#: Route-cache bound: ``stable_hash`` costs ~6µs per key, so repeat
#: probes of a bounded key population resolve their shard from a dict
#: instead.  Cleared wholesale at the bound (no LRU bookkeeping on the
#: hot path).
_ROUTE_CACHE_MAX = 1 << 20


class RemoteError(framing.FramingError):
    """Transport-level failure talking to a shard host (refused, torn,
    oversized, undecodable).  Retryable: the resilience layer redials,
    hedges, or degrades."""


class _ReplyCodecError(framing.FramingError):
    """A structurally invalid v2 reply frame (truncated column, bad
    version byte, length mismatch).  Deliberately *not* a
    :class:`RemoteError`: the transport worked, the payload is garbage
    — the bucket degrades with the named reason instead of retrying."""


class RemoteOpError(RuntimeError):
    """The shard host is alive but refused the operation (a key probed
    at a host that does not own its shard, a malformed record).  Not
    retryable — retrying the same bad request cannot succeed."""


class RemoteDegradedError(RuntimeError):
    """A strict single-key operation (``lookup``, ``__contains__``, a
    write) could not reach any host of the owning shard within budget.
    ``reasons`` maps each affected fingerprint to why."""

    def __init__(self, message: str, reasons: Optional[Dict] = None):
        super().__init__(message)
        self.reasons: Dict = reasons or {}


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class CircuitBreaker:
    """Per-host closed/open/half-open breaker with probe-based recovery.

    ``failures`` *consecutive* failures trip the breaker open; while
    open, :meth:`allow` refuses instantly (a dead host costs one timeout
    per reset window, not one per batch).  After ``reset_timeout``
    seconds the breaker goes half-open and :meth:`allow` admits exactly
    one probe call: its success closes the breaker, its failure re-opens
    it (restarting the window).  :meth:`would_allow` is the non-claiming
    peek for building candidate lists — only the host actually dialed
    may claim the probe slot, and a claimed slot whose outcome never
    arrives (claimant crashed, call never dialed) expires after
    ``reset_timeout`` so the host cannot be locked out of rotation
    forever; :meth:`release` returns an unused slot immediately.
    ``clock`` is injectable so tests drive state transitions without
    sleeping; ``on_open`` fires once per closed/half-open -> open
    transition (the stats hook).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failures: int = 3,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_open: Optional[Callable[[], None]] = None,
    ):
        if failures < 1:
            raise ValueError(f"breaker failures must be >= 1, got {failures}")
        if reset_timeout <= 0:
            raise ValueError(
                f"breaker reset_timeout must be positive, got {reset_timeout}"
            )
        self.failures = int(failures)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._on_open = on_open
        self._lock = threading.Lock()
        self._consecutive = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False
        self._probe_started = 0.0

    def _effective_state(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            return self.HALF_OPEN
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _probe_claimed(self) -> bool:
        """Is the half-open probe slot currently held?  A slot whose
        outcome never arrived expires after ``reset_timeout`` so a
        claimant that died mid-call cannot lock the host out forever.
        Caller holds the lock."""
        if not self._probing:
            return False
        if self._clock() - self._probe_started >= self.reset_timeout:
            self._probing = False
            return False
        return True

    def would_allow(self) -> bool:
        """Non-claiming peek: would :meth:`allow` admit a call right
        now?  Use this to build candidate lists — it never consumes the
        half-open probe slot, so a host that is merely *listed* (but not
        dialed) stays in rotation."""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            return state == self.HALF_OPEN and not self._probe_claimed()

    def allow(self) -> bool:
        """May a call be attempted right now?  Call this only for the
        host actually being dialed: a half-open ``True`` claims the
        single probe slot, and the caller must report the outcome via
        :meth:`record_success` / :meth:`record_failure` (or hand back an
        undialed slot with :meth:`release`)."""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probe_claimed():
                self._state = self.HALF_OPEN
                self._probing = True
                self._probe_started = self._clock()
                return True
            return False

    def release(self) -> None:
        """Return a claimed probe slot without an outcome (the call was
        never dialed): the next caller may probe immediately."""
        with self._lock:
            self._probing = False

    def record_success(self) -> None:
        """One call to this host succeeded: close and reset."""
        with self._lock:
            self._consecutive = 0
            self._state = self.CLOSED
            self._probing = False

    def record_failure(self) -> None:
        """One call to this host failed; trips open at the threshold
        (or instantly when a half-open probe fails)."""
        tripped = False
        with self._lock:
            self._consecutive += 1
            should_open = (
                self._state == self.HALF_OPEN
                or self._consecutive >= self.failures
            )
            if should_open:
                tripped = self._state != self.OPEN
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False
        if tripped and self._on_open is not None:
            self._on_open()


# ---------------------------------------------------------------------------
# Host specs
# ---------------------------------------------------------------------------

@dataclass
class RemoteHost:
    """One shard host: an endpoint plus the shards it serves.

    ``shards=None`` means every shard (a full replica).  ``endpoint``
    is ``HOST:PORT`` or ``unix:PATH``.
    """

    endpoint: str
    shards: Optional[Tuple[int, ...]] = None
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)

    def serves(self, shard: int) -> bool:
        return self.shards is None or shard in self.shards

    def connect(self, timeout: float) -> socket.socket:
        if self.endpoint.startswith("unix:"):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.endpoint[len("unix:"):])
            return sock
        host, _, port = self.endpoint.rpartition(":")
        return socket.create_connection(
            (host or "127.0.0.1", int(port)), timeout=timeout
        )

    def __str__(self) -> str:
        owned = "all" if self.shards is None else ",".join(
            str(s) for s in self.shards
        )
        return f"{owned}@{self.endpoint}"


def parse_remote_spec(spec: str) -> RemoteHost:
    """``SHARDS@ENDPOINT`` -> :class:`RemoteHost`.

    ``SHARDS`` is a comma list of shard indexes or ``all``; with no
    ``@`` the whole string is an endpoint serving every shard.
    Endpoints are ``HOST:PORT``, ``:PORT``, or ``unix:PATH`` (the
    :func:`~repro.engine.replicate.parse_replica_endpoint` shapes).
    """
    shards: Optional[Tuple[int, ...]] = None
    endpoint = spec
    head, sep, tail = spec.partition("@")
    if sep and not head.startswith("unix:"):
        endpoint = tail
        if head.strip().lower() != "all":
            try:
                shards = tuple(
                    int(s) for s in head.split(",") if s.strip() != ""
                )
            except ValueError:
                raise ValueError(f"invalid shard list in remote spec {spec!r}")
            if not shards or any(s < 0 for s in shards):
                raise ValueError(f"invalid shard list in remote spec {spec!r}")
    if not endpoint or (
        not endpoint.startswith("unix:") and ":" not in endpoint
    ):
        raise ValueError(f"invalid endpoint in remote spec {spec!r}")
    return RemoteHost(endpoint=endpoint, shards=shards)


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------

class _ConnState:
    """Per-connection v2 negotiation state.

    The interned string tables are a property of the *connection*, not
    the store: the client seeds metric/interval tables at hello, both
    sides extend them incrementally (client via the in-band table
    extension, server via the reply's new-label list), and ids are only
    meaningful between these two peers.  Connections are handled
    strictly request-at-a-time, so no locking is needed."""

    __slots__ = ("metrics", "intervals", "labels", "label_ids", "snap_maps")

    def __init__(self) -> None:
        self.metrics: List[str] = []
        self.intervals: List[Tuple[float, float]] = []
        self.labels: List[str] = []
        self.label_ids: Dict[str, int] = {}
        # shard -> (snapshot, snapshot-label-id -> conn-label-id array)
        self.snap_maps: Dict[int, Tuple["_ShardSnapshot", np.ndarray]] = {}


#: Packed probe-key record: the byte image *is* the equality relation,
#: so one void-view sort gives binary-searchable exact lookups.
_KEY_DTYPE = np.dtype(
    [("m", "<i4"), ("i", "<i4"), ("n", "<i8"), ("v", "<i8")]
)


class _ShardSnapshot:
    """One shard's keys flattened to sorted packed columns + CSR label
    arrays: the server-side bulk lookup index.

    Built once per (shard, store version) and immutable after — a 20k
    key bucket then costs one ``searchsorted`` and a couple of fancy-
    index gathers instead of 20k Fingerprint constructions and dict
    probes.  Write-heavy stores rebuild per version bump; that is the
    documented trade (docs/serving.md tuning table)."""

    __slots__ = (
        "version", "n", "packed", "label_off", "label_n", "label_ids",
        "label_counts", "labels", "metric_ids", "interval_ids",
    )

    def __init__(
        self,
        version: int,
        items: List[Tuple[Fingerprint, Dict[str, int]]],
    ) -> None:
        self.version = version
        self.n = len(items)
        self.metric_ids: Dict[str, int] = {}
        self.interval_ids: Dict[Tuple[float, float], int] = {}
        self.labels: List[str] = []
        label_ids: Dict[str, int] = {}
        n = self.n
        packed = np.empty(n, dtype=_KEY_DTYPE)
        mids = packed["m"]
        iids = packed["i"]
        per_row: List[List[Tuple[int, int]]] = []
        for row, (fp, counts) in enumerate(items):
            mi = self.metric_ids.setdefault(fp.metric, len(self.metric_ids))
            key = (fp.interval[0] + 0.0, fp.interval[1] + 0.0)
            ii = self.interval_ids.setdefault(key, len(self.interval_ids))
            mids[row] = mi
            iids[row] = ii
            pairs = []
            for label, count in counts.items():
                j = label_ids.get(label)
                if j is None:
                    j = len(self.labels)
                    self.labels.append(label)
                    label_ids[label] = j
                pairs.append((j, int(count)))
            per_row.append(pairs)
        packed["n"] = np.fromiter(
            (fp.node for fp, _ in items), np.int64, n
        )
        packed["v"] = (np.fromiter(
            (fp.value for fp, _ in items), np.float64, n
        ) + 0.0).view(np.int64)
        flat = packed.view(f"V{_KEY_DTYPE.itemsize}").ravel()
        order = np.argsort(flat, kind="stable")
        self.packed = flat[order]
        lens = np.fromiter(
            (len(per_row[r]) for r in order.tolist()), np.int64, n
        )
        self.label_n = lens
        self.label_off = np.concatenate(([0], np.cumsum(lens)))
        total = int(self.label_off[-1])
        self.label_ids = np.empty(total, np.int64)
        self.label_counts = np.empty(total, np.uint64)
        pos = 0
        for r in order.tolist():
            for j, count in per_row[r]:
                self.label_ids[pos] = j
                self.label_counts[pos] = count
                pos += 1


class ShardServer:
    """Serve a slice of a dictionary's shard space over framed JSON.

    Holds any :class:`~repro.engine.backend.DictionaryBackend` and
    answers probes for the shards it was told it owns — probing (or
    learning into) a shard outside ``shards`` is refused with an error
    reply, which catches routing bugs at the boundary instead of
    returning silently-empty verdicts.  Store access runs in the
    default executor under ``lock`` so a slow disk hydration never
    blocks the event loop or a concurrent replication task.
    """

    def __init__(
        self,
        store: DictionaryBackend,
        n_shards: int,
        shards: Optional[Sequence[int]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        uds: Optional[str] = None,
        stats: Optional[EngineStats] = None,
        lock: Optional[threading.Lock] = None,
    ):
        if (port is None) == (uds is None):
            raise ValueError("ShardServer needs exactly one of port / uds")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.store = store
        self.n_shards = int(n_shards)
        self.shards: Tuple[int, ...] = (
            tuple(range(self.n_shards)) if shards is None
            else tuple(sorted(set(int(s) for s in shards)))
        )
        if any(s < 0 or s >= self.n_shards for s in self.shards):
            raise ValueError(
                f"shards {self.shards} out of range for n_shards={n_shards}"
            )
        self._host = host or "127.0.0.1"
        self._port = port
        self._uds = uds
        self.stats = stats if stats is not None else EngineStats()
        self._lock = lock if lock is not None else threading.Lock()
        self._server: Optional[asyncio.base_events.Server] = None
        self._count_cache: Optional[Tuple[int, Dict[int, int]]] = None
        self._filter_cache: Optional[
            Tuple[int, Dict[int, bytes], dict]
        ] = None
        self._bulk_cache: Dict[int, _ShardSnapshot] = {}

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "ShardServer":
        if self._uds is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self._uds
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self._host, port=self._port
            )
        return self

    async def __aenter__(self) -> "ShardServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def endpoints(self) -> List[str]:
        """Bound endpoints (``tcp://h:p`` / ``unix://path``), for logs
        and for tests that bind port 0."""
        if self._server is None:
            return []
        if self._uds is not None:
            return [f"unix://{self._uds}"]
        return [
            f"tcp://{sock.getsockname()[0]}:{sock.getsockname()[1]}"
            for sock in self._server.sockets
        ]

    @property
    def port(self) -> Optional[int]:
        if self._server is None or self._uds is not None:
            return None
        return self._server.sockets[0].getsockname()[1]

    # -- connection handler --------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.record_conn_open()
        dropped = False
        state = _ConnState()
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    payload = await framing.read_frame(
                        reader, error=RemoteError
                    )
                except RemoteError:
                    self.stats.record_protocol_error()
                    dropped = True
                    return
                if payload is None:
                    return
                reply: Union[dict, bytes]
                try:
                    if framing.is_v2_frame(payload):
                        reply = await loop.run_in_executor(
                            None, self._dispatch_v2, payload, state
                        )
                    else:
                        msg = framing.parse_json(payload, error=RemoteError)
                        reply = await loop.run_in_executor(
                            None, self._dispatch, msg, state
                        )
                except RemoteError as exc:
                    self.stats.record_protocol_error()
                    reply = {"error": str(exc)}
                    dropped = True
                except RemoteOpError as exc:
                    reply = {"error": str(exc)}
                if isinstance(reply, (bytes, bytearray)):
                    writer.write(framing.encode_frame(bytes(reply)))
                    await writer.drain()
                else:
                    await framing.send_json(writer, reply)
                if dropped:
                    return
        except (ConnectionError, OSError):
            dropped = True
        finally:
            self.stats.record_conn_close(dropped=dropped)
            writer.close()

    # -- op dispatch (runs in executor, sync) --------------------------------
    def _dispatch(
        self, msg: dict, state: Optional[_ConnState] = None
    ) -> dict:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "hello":
            return self._op_hello(msg, state)
        if op == "status":
            return self._op_status()
        if op == "probe":
            return self._op_probe(msg)
        if op == "learn":
            return self._op_learn(msg)
        if op == "entries":
            return self._op_entries(msg)
        raise RemoteOpError(f"unknown op {op!r}")

    def _dispatch_v2(self, payload: bytes, state: _ConnState) -> bytes:
        op, _, _, _ = framing.v2_header(payload, error=RemoteError)
        if op == framing.V2_OP_PROBE:
            return self._op_probe_v2(payload, state)
        if op == framing.V2_OP_FILTERS:
            return self._op_filters_v2(payload)
        raise RemoteError(f"unexpected v2 op {op}")

    def _op_hello(self, msg: dict, state: Optional[_ConnState]) -> dict:
        """Negotiate protocol v2 for this connection: take the client's
        metric/interval tables, hand back the label table and store
        version.  A v1 server never reaches here — its unknown-op error
        reply *is* the downgrade signal."""
        proto = msg.get("proto")
        if proto != 2:
            raise RemoteOpError(f"unsupported hello proto {proto!r}")
        if state is None:
            state = _ConnState()
        metrics = msg.get("metrics") or []
        intervals = msg.get("intervals") or []
        if not isinstance(metrics, list) or not isinstance(intervals, list):
            raise RemoteOpError("hello tables must be lists")
        try:
            state.metrics = [str(m) for m in metrics]
            state.intervals = [
                (float(iv[0]) + 0.0, float(iv[1]) + 0.0) for iv in intervals
            ]
        except (TypeError, ValueError, IndexError, KeyError):
            raise RemoteOpError("malformed hello interval table")
        with self._lock:
            state.labels = [str(l) for l in self.store.labels()]
            version = self.store.version
        state.label_ids = {l: i for i, l in enumerate(state.labels)}
        return {
            "ok": True,
            "proto": 2,
            "labels": state.labels,
            "version": version,
            "n_shards": self.n_shards,
            "shards": list(self.shards),
        }

    def _op_probe_v2(self, payload: bytes, state: _ConnState) -> bytes:
        """Decode a binary probe bucket straight into the store's bulk
        lookup path and answer with CSR label-id columns.

        Per-key shard ownership is spot-checked on a ~1/8 sample: the
        client routes with the same ``stable_hash``, and a full per-key
        check would cost more than the lookup itself."""
        req = framing.decode_probe_request(payload, error=RemoteError)
        ext = req["ext"]
        try:
            for m in ext.get("metrics", ()):
                state.metrics.append(str(m))
            for iv in ext.get("intervals", ()):
                state.intervals.append(
                    (float(iv[0]) + 0.0, float(iv[1]) + 0.0)
                )
        except (TypeError, ValueError, IndexError, KeyError, AttributeError):
            raise RemoteError("malformed v2 table extension")
        shard = req["shard"]
        if shard not in self.shards:
            raise RemoteOpError(
                f"shard {shard} not served here (serving "
                f"{','.join(str(s) for s in self.shards)} of {self.n_shards})"
            )
        metrics, intervals = state.metrics, state.intervals
        n_m, n_i = len(metrics), len(intervals)
        mids = req["metric_id"].astype(np.int64, copy=False)
        iids = req["interval_id"].astype(np.int64, copy=False)
        nodes = req["node"]
        values = req["value"]
        n = len(mids)
        if n:
            bad = np.flatnonzero(
                (mids < 0) | (mids >= n_m) | (iids < 0) | (iids >= n_i)
            )
            if len(bad):
                b = int(bad[0])
                raise RemoteOpError(
                    f"v2 probe id out of table range "
                    f"(metric {int(mids[b])}/{n_m}, "
                    f"interval {int(iids[b])}/{n_i})"
                )
            # Per-key shard ownership is spot-checked on a small sample:
            # the client routes with the same stable_hash, and a full
            # per-key check would cost more than the lookup itself.
            step = max(1, n // 8)
            for i in range(0, n, step):
                try:
                    fp = Fingerprint(
                        metric=metrics[int(mids[i])], node=int(nodes[i]),
                        interval=intervals[int(iids[i])],
                        value=float(values[i]),
                    )
                except (TypeError, ValueError) as exc:
                    raise RemoteOpError(f"malformed v2 probe key: {exc}")
                actual = shard_index(fp, self.n_shards)
                if actual != shard:
                    raise RemoteOpError(
                        f"key routed to shard {shard} belongs to "
                        f"shard {actual}"
                    )
        counts_flag = req["counts"]
        with self._lock:
            snap = self._bulk_snapshot(shard)
        # Translate connection ids into snapshot ids (tables are tiny;
        # unseen strings can't match any stored key).
        trans_m = np.fromiter(
            (snap.metric_ids.get(m, -1) for m in metrics), np.int64, n_m
        )
        trans_i = np.fromiter(
            (snap.interval_ids.get(iv, -1) for iv in intervals),
            np.int64, n_i,
        )
        query = np.empty(n, dtype=_KEY_DTYPE)
        smids = trans_m[mids] if n_m else np.full(n, -1, np.int64)
        siids = trans_i[iids] if n_i else np.full(n, -1, np.int64)
        query["m"] = smids
        query["i"] = siids
        query["n"] = nodes
        query["v"] = (values + 0.0).view(np.int64)
        flat = query.view(f"V{_KEY_DTYPE.itemsize}").ravel()
        valid = (smids >= 0) & (siids >= 0)
        match_counts = np.zeros(n, dtype="<u4")
        if snap.n and n:
            pos = np.searchsorted(snap.packed, flat)
            safe = np.minimum(pos, snap.n - 1)
            found = valid & (pos < snap.n) & (snap.packed[safe] == flat)
            rows = safe[found]
        else:
            found = np.zeros(n, dtype=bool)
            rows = np.empty(0, dtype=np.int64)
        label_map, new_labels = self._conn_label_map(state, shard, snap)
        lens = snap.label_n[rows]
        match_counts[found] = lens
        total = int(lens.sum())
        if total:
            starts = snap.label_off[rows]
            # CSR gather: absolute index = row start + offset-in-row.
            span = np.arange(total, dtype=np.int64)
            gidx = np.repeat(starts, lens) + (
                span - np.repeat(np.cumsum(lens) - lens, lens)
            )
            out_ids = label_map[snap.label_ids[gidx]].astype("<i4")
            out_counts = (
                snap.label_counts[gidx].astype("<u8")
                if counts_flag else None
            )
        else:
            out_ids = np.empty(0, dtype="<i4")
            out_counts = np.empty(0, dtype="<u8") if counts_flag else None
        return framing.encode_probe_reply(
            req["request_id"], snap.version,
            match_counts, out_ids,
            new_labels=new_labels,
            label_counts=out_counts,
        )

    def _bulk_snapshot(self, shard: int) -> _ShardSnapshot:
        """The shard's bulk index at the current store version (caller
        holds the lock); rebuilt lazily after writes."""
        version = self.store.version
        snap = self._bulk_cache.get(shard)
        if snap is not None and snap.version == version:
            return snap
        store = self.store
        items: List[Tuple[Fingerprint, Dict[str, int]]] = []
        if (
            type(store) is ShardedDictionary
            and store.n_shards == self.n_shards
        ):
            items = list(store.shards[shard]._store.items())
        else:
            for fp, _ in store.entries():
                if shard_index(fp, self.n_shards) == shard:
                    items.append((fp, store.lookup_counts(fp)))
        snap = _ShardSnapshot(version, items)
        self._bulk_cache[shard] = snap
        return snap

    def _conn_label_map(
        self, state: _ConnState, shard: int, snap: _ShardSnapshot
    ) -> Tuple[np.ndarray, List[str]]:
        """Snapshot-label-id → connection-label-id array, interning
        labels this connection has not seen (announced once, in the
        reply that first uses this snapshot)."""
        cached = state.snap_maps.get(shard)
        if cached is not None and cached[0] is snap:
            return cached[1], []
        new_labels: List[str] = []
        label_map = np.empty(len(snap.labels), np.int64)
        table_ids = state.label_ids
        for k, label in enumerate(snap.labels):
            j = table_ids.get(label)
            if j is None:
                j = len(state.labels)
                state.labels.append(label)
                table_ids[label] = j
                new_labels.append(label)
            label_map[k] = j
        state.snap_maps[shard] = (snap, label_map)
        return label_map, new_labels

    def _op_filters_v2(self, payload: bytes) -> bytes:
        request_id, shards = framing.decode_filters_request(
            payload, error=RemoteError
        )
        bad = [s for s in shards if s not in self.shards]
        if bad:
            raise RemoteOpError(f"shard(s) {bad} not served here")
        with self._lock:
            version, blobs, tables = self._filter_payload()
        return framing.encode_filters_reply(
            request_id, version, [(s, blobs[s]) for s in shards], tables
        )

    def _filter_payload(self) -> Tuple[int, Dict[int, bytes], dict]:
        """Per-shard Bloom sidecar blobs plus the interned tables their
        hashes are keyed against, cached per store version (caller holds
        the lock).

        A clean columnar store ships its on-disk sidecars as-is (the
        mirror hashes against the manifest tables); anything else — a
        plain sharded store, a columnar store with overlay writes —
        gets filters built from a routed key walk against the store's
        own table order."""
        version = self.store.version
        if self._filter_cache is not None and self._filter_cache[0] == version:
            _, blobs, tables = self._filter_cache
            return version, blobs, tables
        store = self.store
        blobs: Dict[int, bytes] = {}
        tables: Optional[dict] = None
        sidecars = getattr(store, "_filters", None)
        if (
            sidecars is not None
            and getattr(store, "n_shards", 0) == self.n_shards
            and not store._base_mutated()
            and not store.overlay_keys()
        ):
            tables = {
                "metrics": [str(m) for m in store._metric_table],
                "intervals": [
                    [float(a), float(b)] for a, b in store._interval_table
                ],
            }
            for s in self.shards:
                blobs[s] = sidecars[s].to_bytes()
        if tables is None:
            metrics = [str(m) for m in store.metrics()]
            intervals = [
                (float(a) + 0.0, float(b) + 0.0)
                for a, b in store.intervals()
            ]
            m_map = {m: i for i, m in enumerate(metrics)}
            i_map = {iv: i for i, iv in enumerate(intervals)}
            per_shard: Dict[int, List[Fingerprint]] = {
                s: [] for s in self.shards
            }
            if (
                type(store) is ShardedDictionary
                and store.n_shards == self.n_shards
            ):
                for s in self.shards:
                    per_shard[s] = list(store.shards[s]._store)
            else:
                for fp, _ in store.entries():
                    s = shard_index(fp, self.n_shards)
                    if s in per_shard:
                        per_shard[s].append(fp)
            for s, fps in per_shard.items():
                n = len(fps)
                mids = np.fromiter(
                    (m_map[fp.metric] for fp in fps), np.int64, n
                )
                iids = np.fromiter(
                    (i_map[(fp.interval[0] + 0.0, fp.interval[1] + 0.0)]
                     for fp in fps),
                    np.int64, n,
                )
                nodes = np.fromiter((fp.node for fp in fps), np.int64, n)
                vbits = (
                    np.fromiter((fp.value for fp in fps), np.float64, n) + 0.0
                ).view(np.int64)
                blobs[s] = KeyFilter.build(
                    key_hashes(mids, iids, nodes, vbits)
                ).to_bytes()
            tables = {
                "metrics": metrics,
                "intervals": [[a, b] for a, b in intervals],
            }
        self._filter_cache = (version, blobs, tables)
        return version, blobs, tables

    def _owned(self, fp: Fingerprint) -> int:
        shard = shard_index(fp, self.n_shards)
        if shard not in self.shards:
            raise RemoteOpError(
                f"shard {shard} not served here (serving "
                f"{','.join(str(s) for s in self.shards)} of {self.n_shards})"
            )
        return shard

    def _parse_key(self, record: dict) -> Fingerprint:
        try:
            return fingerprint_from_record(record)
        except (KeyError, TypeError, ValueError) as exc:
            raise RemoteOpError(f"malformed fingerprint record: {exc}")

    def _op_status(self) -> dict:
        with self._lock:
            return {
                "ok": True,
                "n_shards": self.n_shards,
                "shards": list(self.shards),
                "version": self.store.version,
                "keys": len(self.store),
                "keys_by_shard": {
                    str(s): n for s, n in self._shard_counts().items()
                },
                "labels": self.store.labels(),
                "metrics": self.store.metrics(),
                "intervals": [list(iv) for iv in self.store.intervals()],
            }

    def _shard_counts(self) -> Dict[int, int]:
        version = self.store.version
        if self._count_cache is not None and self._count_cache[0] == version:
            return self._count_cache[1]
        counts = {s: 0 for s in self.shards}
        for fp, _ in self.store.entries():
            shard = shard_index(fp, self.n_shards)
            if shard in counts:
                counts[shard] += 1
        self._count_cache = (version, counts)
        return counts

    def _op_probe(self, msg: dict) -> dict:
        keys = msg.get("keys")
        if not isinstance(keys, list):
            raise RemoteOpError("probe needs a keys list")
        fps = [self._parse_key(rec) for rec in keys]
        for fp in fps:
            self._owned(fp)
        with self._lock:
            reply: dict = {
                "ok": True,
                "labels": [self.store.lookup(fp) for fp in fps],
            }
            if msg.get("counts"):
                reply["counts"] = [self.store.lookup_counts(fp) for fp in fps]
        return reply

    def _op_learn(self, msg: dict) -> dict:
        records = msg.get("records")
        if not isinstance(records, list):
            raise RemoteOpError("learn needs a records list")
        with self._lock:
            applied = 0
            for record in records:
                rop = record.get("op") if isinstance(record, dict) else None
                if rop == "label":
                    label = record.get("label")
                    if not isinstance(label, str) or not label:
                        raise RemoteOpError("label record needs a label")
                    self.store.register_label(label)
                elif rop == "add":
                    fp = self._parse_key(record)
                    self._owned(fp)
                    label = record.get("label")
                    if not isinstance(label, str) or not label:
                        raise RemoteOpError("add record needs a label")
                    self.store.add_repeated(
                        fp, label, int(record.get("count", 1))
                    )
                else:
                    raise RemoteOpError(f"unknown learn record op {rop!r}")
                applied += 1
            return {
                "ok": True, "applied": applied, "version": self.store.version
            }

    def _op_entries(self, msg: dict) -> dict:
        shard = msg.get("shard")
        if not isinstance(shard, int) or shard not in self.shards:
            raise RemoteOpError(f"shard {shard!r} not served here")
        with self._lock:
            out = []
            for fp, _ in self.store.entries():
                if shard_index(fp, self.n_shards) != shard:
                    continue
                record = fingerprint_to_record(fp)
                record["labels"] = self.store.lookup_counts(fp)
                out.append(record)
        return {"ok": True, "shard": shard, "entries": out}


class ShardServerThread:
    """A :class:`ShardServer` on its own event-loop thread.

    The synchronous client, tests, and benchmarks need live servers
    without owning an event loop; this wrapper runs one per server and
    exposes the bound endpoint.  ``start()`` blocks until the socket is
    listening, ``stop()`` until the loop exits.
    """

    def __init__(
        self,
        store: DictionaryBackend,
        n_shards: int,
        shards: Optional[Sequence[int]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        uds: Optional[str] = None,
        stats: Optional[EngineStats] = None,
    ):
        self._kwargs = dict(
            store=store, n_shards=n_shards, shards=shards, stats=stats,
        )
        if uds is not None:
            self._kwargs["uds"] = uds
        else:
            self._kwargs.update(host=host, port=port)
        self.server: Optional[ShardServer] = None
        self.endpoint: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None

    def start(self) -> "ShardServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        self._started.wait(10.0)
        if self._error is not None:
            raise self._error
        if self.endpoint is None:
            raise RuntimeError("shard server failed to start")
        return self

    def _main(self) -> None:
        async def run() -> None:
            server = ShardServer(**self._kwargs)
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await server.start()
            except BaseException as exc:
                self._error = exc
                self._started.set()
                return
            self.server = server
            uds = self._kwargs.get("uds")
            self.endpoint = (
                f"unix:{uds}" if uds is not None
                else f"{self._kwargs['host']}:{server.port}"
            )
            self._started.set()
            try:
                await self._stop.wait()
            finally:
                await server.close()

        asyncio.run(run())

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already exited: nothing to wake
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    def __enter__(self) -> "ShardServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------

@dataclass
class RemoteVerdict:
    """One key's remote resolution: its labels, or an explicit
    degradation.  ``degraded`` verdicts carry empty labels plus the
    ``reason`` the key-space was unreachable — unknown-with-reason,
    never silently wrong."""

    labels: List[str]
    degraded: bool = False
    reason: str = ""
    counts: Optional[Dict[str, int]] = None


class _CallFailed(Exception):
    """Internal: one physical call failed (already counted/broken)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _DegradeBucket(Exception):
    """Internal: the host answered, but with a structurally invalid
    reply (short labels list, truncated v2 column, id out of table
    range).  Not retryable — a protocol bug, not a dead host — the
    whole bucket degrades immediately with the named reason."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _PooledConnection:
    """One persistent socket to a shard host plus its negotiated state:
    protocol version, the per-connection interned v2 tables, and the
    pipelining request-id counter."""

    __slots__ = (
        "sock", "endpoint", "proto", "closed", "_next_id",
        "metrics", "metric_ids", "intervals", "interval_ids",
        "labels", "store_version",
    )

    def __init__(self, sock: socket.socket, endpoint: str):
        self.sock = sock
        self.endpoint = endpoint
        self.proto = 1
        self.closed = False
        self._next_id = 0
        self.metrics: List[str] = []
        self.metric_ids: Dict[str, int] = {}
        self.intervals: List[Tuple[float, float]] = []
        self.interval_ids: Dict[Tuple[float, float], int] = {}
        self.labels: List[str] = []
        self.store_version = -1

    def next_request_id(self) -> int:
        self._next_id = (self._next_id + 1) & 0xFFFF
        return self._next_id

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.sock.close()
            except OSError:
                pass


def _socket_is_idle(sock: socket.socket) -> bool:
    """A pooled socket is reusable only while silent: readability on an
    idle connection means EOF or an unsolicited frame — either way the
    turn discipline is gone and the socket must be evicted."""
    try:
        readable, _, _ = select.select([sock], [], [], 0)
    except (OSError, ValueError):
        return False
    return not readable


@dataclass
class _FilterMirror:
    """A client-side copy of one shard's Bloom sidecar.

    ``metrics``/``intervals`` are the table order the filter's hashes
    were computed against (shipped alongside the blob — the server's
    interned order, not the client's).  ``source``/``version`` pin the
    host and store version the blob reflects; a probe reply from the
    same host with a different version marks the mirror stale until the
    background refetch replaces it."""

    shard: int
    filter: KeyFilter
    metrics: List[str]
    metric_ids: Dict[str, int]
    intervals: List[Tuple[float, float]]
    interval_ids: Dict[Tuple[float, float], int]
    source: str
    version: int
    fresh: bool = True


class RemoteShardBackend:
    """A :class:`~repro.engine.backend.DictionaryBackend` whose shards
    live on remote :class:`ShardServer` hosts.

    Reads bucket by ``stable_hash % n_shards`` and scatter/gather in
    parallel over the owning hosts; every physical call rides the
    resilience layer (deadlines, retries + full-jitter backoff, hedges,
    per-host circuit breakers).  Healthy-path answers are element-wise
    equal to the single-process stores.  When a shard's hosts are all
    unreachable, :meth:`probe_many` marks exactly those keys
    ``degraded`` (and :meth:`lookup_many` resolves them as unknown,
    recording the degradation in ``last_degraded`` and the
    ``remote_degraded`` counter); strict single-key ops raise
    :class:`RemoteDegradedError` instead.

    The string tables (labels/apps/metrics/intervals) are kept
    client-side — synced from host ``status`` at construction, then
    maintained by writes through this client — because tie-break order
    must be stable even while hosts flap.  ``entries()`` streams keys
    shard-major (shard 0..N-1, per-shard insertion order), which is the
    one documented deviation from the flat store's global insertion
    order.  Writes propagate to every host serving the owning shard and
    are at-least-once under faults (a retry after a lost reply can
    re-apply); label registration broadcasts to all hosts.

    Transport: each host gets a pool of up to ``pool_size`` persistent
    connections (checked out per call, evicted on any transport fault,
    redialed behind the retry ladder's backoff).  The first dial per
    host sends a v2 hello; v1 servers answer it with their unknown-op
    error reply and the client stays on JSON over the same socket
    (``protocol="json"`` pins v1 and skips the handshake).  On v2
    connections probe buckets are split into ``pipeline_chunk``-key
    binary column frames with a bounded in-flight window.  With
    ``filter_mirrors`` on, shard Bloom sidecars are fetched in the
    background and definitely-absent keys resolve locally — probes of
    unknown apps never cross the wire once the mirrors are warm
    (:meth:`warm_filter_mirrors` fetches them synchronously).
    """

    def __init__(
        self,
        hosts: Sequence[Union[str, RemoteHost]],
        n_shards: int,
        deadline: float = 2.0,
        try_timeout: float = 0.5,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        hedge_delay: float = 0.05,
        hedge_percentile: float = 0.95,
        breaker_failures: int = 3,
        breaker_reset: float = 1.0,
        stats: Optional[EngineStats] = None,
        rng: Optional[random.Random] = None,
        sync_tables: bool = True,
        pool_size: int = 4,
        pipeline_chunk: int = 4096,
        filter_mirrors: bool = True,
        protocol: str = "auto",
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not hosts:
            raise ValueError("RemoteShardBackend needs at least one host")
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if pipeline_chunk < 1:
            raise ValueError(
                f"pipeline_chunk must be >= 1, got {pipeline_chunk}"
            )
        if protocol not in ("auto", "json"):
            raise ValueError(
                f"protocol must be 'auto' or 'json', got {protocol!r}"
            )
        self.n_shards = int(n_shards)
        self.deadline = float(deadline)
        self.try_timeout = float(try_timeout)
        self.retries = int(retries)
        self.hedge_delay = float(hedge_delay)
        self.hedge_percentile = float(hedge_percentile)
        self.pool_size = int(pool_size)
        self.pipeline_chunk = int(pipeline_chunk)
        self.filter_mirrors = bool(filter_mirrors)
        self.protocol = str(protocol)
        self.engine_stats = stats if stats is not None else EngineStats()
        self._backoff = BackoffPolicy(
            base=backoff_base, cap=backoff_cap, rng=rng
        )
        self.hosts: List[RemoteHost] = []
        for spec in hosts:
            host = spec if isinstance(spec, RemoteHost) else parse_remote_spec(
                spec
            )
            host.breaker = CircuitBreaker(
                failures=breaker_failures,
                reset_timeout=breaker_reset,
                on_open=self._on_breaker_open,
            )
            self.hosts.append(host)
        self._shard_hosts: List[List[RemoteHost]] = [
            [h for h in self.hosts if h.serves(s)]
            for s in range(self.n_shards)
        ]
        uncovered = [s for s, hs in enumerate(self._shard_hosts) if not hs]
        if uncovered:
            raise ValueError(
                f"no host serves shard(s) {uncovered} of {self.n_shards}"
            )
        self._label_order: Dict[str, None] = {}
        self._app_order: Dict[str, None] = {}
        self._metric_order: Dict[str, None] = {}
        self._interval_order: Dict[Tuple[float, float], None] = {}
        self._version = 0
        self._len_cache: Optional[Tuple[int, List[int]]] = None
        self._latencies: List[float] = []
        self._stats_lock = threading.Lock()
        self._io_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(8, 2 * len(self.hosts)),
            thread_name_prefix="efd-remote-io",
        )
        self._fan_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(4, min(self.n_shards, 16)),
            thread_name_prefix="efd-remote-fan",
        )
        #: fingerprint -> reason for every key the *last* batch degraded.
        self.last_degraded: Dict[Fingerprint, str] = {}
        #: shard ids the last :meth:`shard_sizes` poll could not reach
        #: (their reported size is an undercount, not a true zero).
        self.last_sizes_unreachable: List[int] = []
        self._closed = False
        self._pool: Dict[str, List[_PooledConnection]] = {}
        self._pool_lock = threading.Lock()
        #: endpoint -> negotiated protocol (2 or 1); absent = unknown.
        self._host_proto: Dict[str, int] = {}
        self._route_cache: Dict[Fingerprint, int] = {}
        self._mirrors: Dict[int, _FilterMirror] = {}
        self._mirror_lock = threading.Lock()
        self._mirror_retry_at: Dict[str, float] = {}
        self._mirror_fetching = False
        self._mirror_cooldown = float(breaker_reset)
        if sync_tables:
            self.sync_tables()

    def close(self) -> None:
        self._closed = True
        with self._pool_lock:
            conns = [c for idle in self._pool.values() for c in idle]
            self._pool.clear()
        for conn in conns:
            conn.close()
        self._io_pool.shutdown(wait=False)
        self._fan_pool.shutdown(wait=False)

    def __enter__(self) -> "RemoteShardBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- stats plumbing ------------------------------------------------------
    def _rec(self, recorder: Callable, *args) -> None:
        with self._stats_lock:
            recorder(*args)

    def _on_breaker_open(self) -> None:
        self._rec(self.engine_stats.record_breaker_open)

    # -- connection pool -----------------------------------------------------
    def _io_timeout(self, deadline: float) -> float:
        return max(0.001, min(self.try_timeout, deadline - time.monotonic()))

    def _checkout(self, host: RemoteHost, deadline: float) -> _PooledConnection:
        """Pop a live pooled connection for ``host``, or dial (and
        handshake) a fresh one.  Transport errors propagate raw — the
        caller owns breaker and stats accounting."""
        reused: Optional[_PooledConnection] = None
        with self._pool_lock:
            idle = self._pool.setdefault(host.endpoint, [])
            while idle:
                conn = idle.pop()
                if _socket_is_idle(conn.sock):
                    reused = conn
                    break
                conn.close()
        if reused is not None:
            self._rec(self.engine_stats.record_pool_checkout, True)
            return reused
        self._rec(self.engine_stats.record_pool_checkout, False)
        return self._dial(host, deadline)

    def _checkin(self, host: RemoteHost, conn: _PooledConnection) -> None:
        if conn.closed:
            return
        with self._pool_lock:
            if not self._closed:
                idle = self._pool.setdefault(host.endpoint, [])
                if len(idle) < self.pool_size:
                    idle.append(conn)
                    return
        conn.close()

    def _evict(self, conn: _PooledConnection) -> None:
        conn.close()

    def _dial(self, host: RemoteHost, deadline: float) -> _PooledConnection:
        """Dial ``host`` and negotiate the protocol.

        The first connection to an unknown host sends a JSON
        ``hello``: a v2 server acks with its label table, a v1 server
        answers with its standard unknown-op error reply — the
        connection stays usable for JSON ops either way, and the
        outcome is cached per endpoint so later dials skip the
        handshake round trip."""
        sock = host.connect(self._io_timeout(deadline))
        conn = _PooledConnection(sock, host.endpoint)
        proto = (
            1 if self.protocol == "json"
            else self._host_proto.get(host.endpoint, 0)
        )
        if proto == 1:
            return conn
        hello_metrics = list(self._metric_order)
        hello_intervals = list(self._interval_order)
        hello = {
            "op": "hello",
            "proto": 2,
            "metrics": hello_metrics,
            "intervals": [list(iv) for iv in hello_intervals],
        }
        try:
            sock.settimeout(self._io_timeout(deadline))
            reply = self._exchange_json(conn, hello)
        except BaseException:
            conn.close()
            raise
        if (
            isinstance(reply, dict) and reply.get("ok")
            and reply.get("proto") == 2
            and isinstance(reply.get("labels"), list)
        ):
            conn.proto = 2
            conn.metrics = hello_metrics
            conn.metric_ids = {m: i for i, m in enumerate(hello_metrics)}
            conn.intervals = [
                (float(a) + 0.0, float(b) + 0.0) for a, b in hello_intervals
            ]
            conn.interval_ids = {
                iv: i for i, iv in enumerate(conn.intervals)
            }
            conn.labels = [str(l) for l in reply["labels"]]
            try:
                conn.store_version = int(reply.get("version", -1))
            except (TypeError, ValueError):
                conn.store_version = -1
            self._host_proto[host.endpoint] = 2
            return conn
        self._host_proto[host.endpoint] = 1
        if "error" in reply:
            # A real v1 server: the refusal left the connection synced.
            return conn
        # Unknown reply shape: the turn is consumed and the peer's frame
        # discipline is unknown — redial clean (now pinned to v1).
        conn.close()
        return self._dial(host, deadline)

    def _exchange_json(self, conn: _PooledConnection, msg: dict) -> dict:
        """One JSON request/reply turn on a pooled connection, with the
        wire bytes recorded.  The caller sets the socket timeout."""
        payload = json.dumps(msg).encode("utf-8")
        sent = framing.send_frame_sock(conn.sock, payload)
        raw = framing.recv_frame_sock(conn.sock, error=RemoteError)
        if raw is None:
            raise RemoteError(
                f"{conn.endpoint} closed the connection before replying"
            )
        reply = framing.parse_json(raw, require_op=False, error=RemoteError)
        self._rec(self.engine_stats.record_remote_wire, sent, len(raw) + 4)
        return reply

    # -- one physical call ---------------------------------------------------
    def _one_call(
        self, host: RemoteHost, msg: dict, deadline: float, n_keys: int
    ) -> dict:
        """One JSON request/reply on a pooled connection, budget-bounded.

        Records the call, its outcome, and the host's breaker state;
        raises :class:`_CallFailed` on any retryable failure and
        :class:`RemoteOpError` (breaker untouched — the host is alive)
        on a refused op.
        """
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # Never dialed: hand back a claimed half-open probe slot.
            host.breaker.release()
            raise _CallFailed("deadline exhausted")
        self._rec(self.engine_stats.record_remote_call, n_keys)
        start = time.monotonic()
        conn: Optional[_PooledConnection] = None
        try:
            conn = self._checkout(host, deadline)
            conn.sock.settimeout(self._io_timeout(deadline))
            reply = self._exchange_json(conn, msg)
        except (socket.timeout, TimeoutError):
            if conn is not None:
                self._evict(conn)
            self._rec(self.engine_stats.record_remote_timeout)
            host.breaker.record_failure()
            raise _CallFailed(f"timeout talking to {host.endpoint}")
        except (RemoteError, ConnectionError, OSError) as exc:
            if conn is not None:
                self._evict(conn)
            self._rec(self.engine_stats.record_remote_error)
            host.breaker.record_failure()
            raise _CallFailed(f"{host.endpoint}: {exc}")
        if "error" in reply:
            # The host answered: it is healthy, the request is wrong.
            host.breaker.record_success()
            self._checkin(host, conn)
            raise RemoteOpError(str(reply["error"]))
        host.breaker.record_success()
        self._checkin(host, conn)
        with self._stats_lock:
            self._latencies.append(time.monotonic() - start)
            del self._latencies[:-64]
        return reply

    def _hedge_wait(self) -> float:
        """Seconds to wait on the primary before hedging: the configured
        floor, raised to the observed latency percentile once enough
        calls have been measured."""
        with self._stats_lock:
            window = list(self._latencies)
        if len(window) < 8:
            return self.hedge_delay
        window.sort()
        rank = min(
            len(window) - 1,
            max(0, int(self.hedge_percentile * len(window))),
        )
        return max(self.hedge_delay, window[rank])

    def _call_resilient(
        self,
        shard_hosts: Sequence[RemoteHost],
        call: Callable[[RemoteHost], Any],
        deadline: float,
        hedge: bool = True,
    ) -> Tuple[Optional[Any], str]:
        """The full resilience ladder for one logical request.

        ``call`` performs one physical attempt against one host (it
        owns the breaker/stats accounting and raises :class:`_CallFailed`
        on retryable failure).  Walks the shard's hosts behind their
        breakers — candidates are peeked non-claimingly
        (:meth:`CircuitBreaker.would_allow`) and each host claims its
        probe slot only when actually dialed; a fast-failing primary
        fails over to the next candidate *within the same attempt*, so
        a healthy replica is reached before the retry budget burns
        down.  Retries with full-jitter backoff within the deadline
        budget; hedges to the next replica when the primary dawdles.
        Returns ``(result, reason)`` — result ``None`` means the
        request degraded and ``reason`` says why.
        :class:`RemoteOpError` and :class:`_DegradeBucket` propagate
        immediately (retrying a refused op or a protocol bug cannot
        help).
        """
        attempt = 0
        reason = "no reachable host"
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None, f"deadline exhausted ({reason})"
            candidates = [h for h in shard_hosts if h.breaker.would_allow()]
            if not candidates:
                reason = "circuit breakers open for all hosts"
            dialed = False
            for i, host in enumerate(candidates):
                if deadline - time.monotonic() <= 0:
                    return None, f"deadline exhausted ({reason})"
                if not host.breaker.allow():
                    continue  # slot claimed between the peek and the dial
                dialed = True
                try:
                    return self._race(
                        host, candidates[i + 1:] if hedge else [], call,
                        deadline,
                    ), ""
                except (RemoteOpError, _DegradeBucket):
                    raise
                except _CallFailed as exc:
                    reason = exc.reason
            if candidates and not dialed:
                reason = "circuit breakers open for all hosts"
            if attempt >= self.retries:
                return None, reason
            attempt += 1
            self._rec(self.engine_stats.record_remote_retry)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None, f"deadline exhausted ({reason})"
            time.sleep(min(self._backoff.delay(attempt - 1), remaining))

    def _race(
        self,
        primary: RemoteHost,
        backups: Sequence[RemoteHost],
        call: Callable[[RemoteHost], Any],
        deadline: float,
    ) -> Any:
        """Primary call with an optional hedge to the next replica.

        The hedge launches only after the primary has been quiet past
        the latency-percentile threshold; first success wins and the
        win/loss is counted.  Raises :class:`_CallFailed` when every
        launched copy failed."""
        futures: Dict[concurrent.futures.Future, bool] = {}
        primary_future = self._io_pool.submit(call, primary)
        futures[primary_future] = False  # not a hedge
        hedged = False
        if backups:
            wait = min(self._hedge_wait(), max(0.0, deadline - time.monotonic()))
            done, _ = concurrent.futures.wait(
                [primary_future], timeout=wait
            )
            if not done:
                backup = next(
                    (b for b in backups if b.breaker.allow()), None
                )
                if backup is not None:
                    hedged = True
                    self._rec(self.engine_stats.record_remote_hedge)
                    futures[self._io_pool.submit(call, backup)] = True
        pending = set(futures)
        failure: Optional[_CallFailed] = None
        while pending:
            remaining = deadline - time.monotonic()
            done, pending = concurrent.futures.wait(
                pending,
                timeout=max(0.001, remaining),
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            if not done:  # budget gone with calls still in flight
                break
            for future in done:
                try:
                    reply = future.result()
                except (RemoteOpError, _DegradeBucket):
                    raise
                except _CallFailed as exc:
                    failure = exc
                    continue
                if hedged:
                    self._rec(
                        self.engine_stats.record_remote_hedge, futures[future]
                    )
                return reply
        if failure is not None:
            raise failure
        raise _CallFailed("deadline exhausted mid-call")

    # -- the probe fast path -------------------------------------------------
    def _probe_call(
        self,
        host: RemoteHost,
        shard: int,
        fps: List[Fingerprint],
        counts: bool,
        deadline: float,
    ) -> List[RemoteVerdict]:
        """One bucket exchange against one host on a pooled connection
        — binary pipelined on v2, single JSON turn on v1.  Same
        accounting contract as :meth:`_one_call`, plus
        :class:`_DegradeBucket` for structurally invalid replies (the
        host is alive — breaker success — but the bucket degrades)."""
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            host.breaker.release()
            raise _CallFailed("deadline exhausted")
        self._rec(self.engine_stats.record_remote_call, len(fps))
        start = time.monotonic()
        try:
            conn = self._checkout(host, deadline)
        except (socket.timeout, TimeoutError):
            self._rec(self.engine_stats.record_remote_timeout)
            host.breaker.record_failure()
            raise _CallFailed(f"timeout talking to {host.endpoint}")
        except (RemoteError, ConnectionError, OSError) as exc:
            self._rec(self.engine_stats.record_remote_error)
            host.breaker.record_failure()
            raise _CallFailed(f"{host.endpoint}: {exc}")
        try:
            if conn.proto == 2:
                verdicts = self._probe_v2_on_conn(
                    conn, host, shard, fps, counts, deadline
                )
            else:
                verdicts = self._probe_v1_on_conn(
                    conn, shard, fps, counts, deadline
                )
        except (socket.timeout, TimeoutError):
            self._evict(conn)
            self._rec(self.engine_stats.record_remote_timeout)
            host.breaker.record_failure()
            raise _CallFailed(f"timeout talking to {host.endpoint}")
        except (RemoteError, ConnectionError, OSError) as exc:
            self._evict(conn)
            self._rec(self.engine_stats.record_remote_error)
            host.breaker.record_failure()
            raise _CallFailed(f"{host.endpoint}: {exc}")
        except RemoteOpError:
            host.breaker.record_success()
            if conn.proto == 2:
                # Pipelined replies may still be in flight behind the
                # refusal: the connection is desynced, not reusable.
                self._evict(conn)
            else:
                self._checkin(host, conn)
            raise
        except _DegradeBucket:
            # The host answered — healthy breaker-wise — but the reply
            # is garbage, so the connection's state is untrustworthy.
            host.breaker.record_success()
            self._evict(conn)
            raise
        host.breaker.record_success()
        self._checkin(host, conn)
        with self._stats_lock:
            self._latencies.append(time.monotonic() - start)
            del self._latencies[:-64]
        return verdicts

    def _probe_v1_on_conn(
        self,
        conn: _PooledConnection,
        shard: int,
        fps: List[Fingerprint],
        counts: bool,
        deadline: float,
    ) -> List[RemoteVerdict]:
        msg: dict = {
            "op": "probe",
            "keys": [fingerprint_to_record(fp) for fp in fps],
        }
        if counts:
            msg["counts"] = True
        conn.sock.settimeout(self._io_timeout(deadline))
        reply = self._exchange_json(conn, msg)
        if "error" in reply:
            raise RemoteOpError(str(reply["error"]))
        # A host that answers with the wrong shape is a protocol bug,
        # not a dead host: degrade the bucket (every key gets a verdict,
        # so the batch merge cannot KeyError) instead of crashing the
        # whole batch on a truncated zip.
        labels = reply.get("labels")
        count_maps = reply.get("counts") if counts else None
        malformed = not isinstance(labels, list) or len(labels) != len(fps)
        if not malformed and counts:
            malformed = (
                not isinstance(count_maps, list)
                or len(count_maps) != len(fps)
            )
        if malformed:
            got = (
                len(labels) if isinstance(labels, list)
                else type(labels).__name__
            )
            raise _DegradeBucket(
                f"malformed probe reply for shard {shard}: "
                f"{len(fps)} keys probed, labels={got}"
            )
        if count_maps is None:
            count_maps = [None] * len(fps)
        out = []
        for found, cmap in zip(labels, count_maps):
            verdict = RemoteVerdict([str(l) for l in found])
            if counts and cmap is not None:
                verdict.counts = {str(k): int(v) for k, v in cmap.items()}
            out.append(verdict)
        return out

    def _encode_probe_chunk(
        self,
        conn: _PooledConnection,
        request_id: int,
        shard: int,
        fps: List[Fingerprint],
        counts: bool,
    ) -> bytes:
        """Pack one chunk as v2 id/value columns against the
        connection's tables, extending them in-band for strings the
        peer has not seen on this connection."""
        m_ids = conn.metric_ids
        i_ids = conn.interval_ids
        metrics = conn.metrics
        intervals = conn.intervals
        mids: List[int] = []
        iids: List[int] = []
        nodes: List[int] = []
        values: List[float] = []
        ext_m: List[str] = []
        ext_i: List[List[float]] = []
        for fp in fps:
            mi = m_ids.get(fp.metric)
            if mi is None:
                mi = len(metrics)
                metrics.append(fp.metric)
                m_ids[fp.metric] = mi
                ext_m.append(fp.metric)
            key = (fp.interval[0] + 0.0, fp.interval[1] + 0.0)
            ii = i_ids.get(key)
            if ii is None:
                ii = len(intervals)
                intervals.append(key)
                i_ids[key] = ii
                ext_i.append([key[0], key[1]])
            mids.append(mi)
            iids.append(ii)
            nodes.append(fp.node)
            values.append(fp.value)
        ext: Optional[dict] = None
        if ext_m or ext_i:
            ext = {}
            if ext_m:
                ext["metrics"] = ext_m
            if ext_i:
                ext["intervals"] = ext_i
        return framing.encode_probe_request(
            request_id, shard,
            np.asarray(mids, dtype="<i4"), np.asarray(iids, dtype="<i4"),
            np.asarray(nodes, dtype="<i8"), np.asarray(values, dtype="<f8"),
            table_ext=ext, counts=counts,
        )

    def _probe_v2_on_conn(
        self,
        conn: _PooledConnection,
        host: RemoteHost,
        shard: int,
        fps: List[Fingerprint],
        counts: bool,
        deadline: float,
    ) -> List[RemoteVerdict]:
        """The bucket as pipelined binary chunks: up to
        ``_PIPELINE_WINDOW`` requests in flight, replies read in order
        and verified by request id.  A well-framed reply that is not
        the expected binary reply (a duplicated frame, a JSON frame
        out of turn) is a *desync* — retryable on a fresh connection —
        while a structurally invalid binary reply degrades the bucket
        immediately."""
        sock = conn.sock
        chunk = max(1, self.pipeline_chunk)
        verdicts: List[RemoteVerdict] = []
        pending: Deque[Tuple[int, int]] = deque()
        enc_s = dec_s = 0.0
        sent_b = recv_b = 0
        try:
            next_i = 0
            while next_i < len(fps) or pending:
                if next_i < len(fps) and len(pending) < _PIPELINE_WINDOW:
                    part = fps[next_i:next_i + chunk]
                    request_id = conn.next_request_id()
                    t0 = time.perf_counter()
                    frame = self._encode_probe_chunk(
                        conn, request_id, shard, part, counts
                    )
                    enc_s += time.perf_counter() - t0
                    sock.settimeout(self._io_timeout(deadline))
                    sent_b += framing.send_frame_sock(sock, frame)
                    pending.append((request_id, len(part)))
                    next_i += len(part)
                    continue
                request_id, n_part = pending.popleft()
                sock.settimeout(self._io_timeout(deadline))
                raw = framing.recv_frame_sock(sock, error=RemoteError)
                if raw is None:
                    raise RemoteError(f"{host.endpoint} closed mid-probe")
                recv_b += len(raw) + 4
                if not framing.is_v2_frame(raw):
                    reply = framing.parse_json(
                        raw, require_op=False, error=RemoteError
                    )
                    if "error" in reply:
                        raise RemoteOpError(str(reply["error"]))
                    raise RemoteError(
                        "JSON frame where a v2 probe reply was expected "
                        "(pipeline desync)"
                    )
                t0 = time.perf_counter()
                try:
                    rep = framing.decode_probe_reply(
                        raw, error=_ReplyCodecError
                    )
                except _ReplyCodecError as exc:
                    raise _DegradeBucket(
                        f"malformed v2 probe reply for shard {shard}: {exc}"
                    )
                if rep["request_id"] != request_id:
                    raise RemoteError(
                        f"pipeline desync: reply {rep['request_id']} for "
                        f"request {request_id}"
                    )
                mc = rep["match_counts"]
                if len(mc) != n_part:
                    raise _DegradeBucket(
                        f"malformed v2 probe reply for shard {shard}: "
                        f"{n_part} keys probed, {len(mc)} match counts"
                    )
                if rep["new_labels"]:
                    conn.labels.extend(rep["new_labels"])
                ids = rep["label_ids"]
                if len(ids) and (
                    int(ids.min()) < 0 or int(ids.max()) >= len(conn.labels)
                ):
                    raise _DegradeBucket(
                        f"malformed v2 probe reply for shard {shard}: "
                        f"label id out of table range"
                    )
                lcounts = rep["label_counts"]
                if counts and lcounts is None:
                    raise _DegradeBucket(
                        f"malformed v2 probe reply for shard {shard}: "
                        f"counts column missing"
                    )
                table = conn.labels
                id_list = ids.tolist()
                lc_list = lcounts.tolist() if lcounts is not None else None
                pos = 0
                for k in mc.tolist():
                    if k:
                        labels = [table[j] for j in id_list[pos:pos + k]]
                    else:
                        labels = []
                    verdict = RemoteVerdict(labels)
                    if counts:
                        verdict.counts = (
                            dict(zip(labels, lc_list[pos:pos + k]))
                            if k else {}
                        )
                    verdicts.append(verdict)
                    pos += k
                dec_s += time.perf_counter() - t0
                self._note_host_version(
                    host.endpoint, rep["store_version"]
                )
        finally:
            with self._stats_lock:
                self.engine_stats.record_remote_wire(sent_b, recv_b)
                self.engine_stats.record_remote_codec(enc_s, dec_s)
        return verdicts

    # -- filter mirrors ------------------------------------------------------
    def _note_host_version(self, endpoint: str, version: int) -> None:
        """A reply told us the host's store version: any mirror sourced
        from that host at a different version is stale (an out-of-band
        writer advanced the store) and gets refetched in the
        background."""
        if not self.filter_mirrors:
            return
        with self._mirror_lock:
            for mirror in self._mirrors.values():
                if mirror.source == endpoint and mirror.version != version:
                    mirror.fresh = False

    def _maybe_refresh_mirrors(self) -> None:
        """Kick one background fetch for missing/stale mirrors.  Never
        blocks the probe path: until the mirrors land, every key simply
        goes over the wire."""
        if self._closed:
            return
        with self._mirror_lock:
            stale = [
                s for s in range(self.n_shards)
                if s not in self._mirrors or not self._mirrors[s].fresh
            ]
            if not stale or self._mirror_fetching:
                return
            self._mirror_fetching = True
        threading.Thread(
            target=self._mirror_fetch_worker, args=(stale,),
            daemon=True, name="efd-remote-mirrors",
        ).start()

    def _mirror_fetch_worker(self, stale: List[int]) -> None:
        try:
            self._fetch_mirrors(stale, time.monotonic() + self.deadline)
        finally:
            with self._mirror_lock:
                self._mirror_fetching = False

    def warm_filter_mirrors(self, timeout: Optional[float] = None) -> bool:
        """Synchronously fetch every shard's Bloom sidecar; returns
        ``True`` when all mirrors are fresh afterwards.  Benchmarks and
        latency-sensitive callers use this to pre-pay the fetch instead
        of warming lazily in the background."""
        if not self.filter_mirrors:
            return False
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.deadline
        )
        with self._mirror_lock:
            stale = [
                s for s in range(self.n_shards)
                if s not in self._mirrors or not self._mirrors[s].fresh
            ]
        if stale:
            self._fetch_mirrors(stale, deadline)
        with self._mirror_lock:
            return all(
                s in self._mirrors and self._mirrors[s].fresh
                for s in range(self.n_shards)
            )

    def _fetch_mirrors(self, shards_needed: List[int], deadline: float) -> None:
        """Plan one host per needed shard (first admitted v2-capable
        host wins; full replicas batch all their shards into one
        request) and fetch.  Failures set a per-endpoint cooldown so a
        dead host costs one attempt per window, not one per batch."""
        now = time.monotonic()
        plan: Dict[str, Tuple[RemoteHost, List[int]]] = {}
        for s in shards_needed:
            for host in self._shard_hosts[s]:
                endpoint = host.endpoint
                if self._host_proto.get(endpoint) == 1:
                    continue  # v1 host: no filters op
                if self._mirror_retry_at.get(endpoint, 0.0) > now:
                    continue
                if not host.breaker.would_allow():
                    continue
                plan.setdefault(endpoint, (host, []))[1].append(s)
                break
        for endpoint, (host, shards) in plan.items():
            try:
                self._fetch_filters(host, shards, deadline)
            except (_CallFailed, RemoteOpError):
                self._mirror_retry_at[endpoint] = (
                    time.monotonic()
                    + max(self._mirror_cooldown, 2 * self.try_timeout)
                )

    def _fetch_filters(
        self, host: RemoteHost, shards: List[int], deadline: float
    ) -> None:
        """One binary ``filters`` round trip; installs the mirrors.
        Deliberately *not* counted as a remote call (the fault sweeps
        assert exact per-probe call counts), though wire bytes, breaker
        outcomes, and error counters still move."""
        if not host.breaker.allow():
            raise _CallFailed(f"breaker open for {host.endpoint}")
        try:
            conn = self._checkout(host, deadline)
        except (socket.timeout, TimeoutError):
            self._rec(self.engine_stats.record_remote_timeout)
            host.breaker.record_failure()
            raise _CallFailed(f"timeout fetching filters: {host.endpoint}")
        except (RemoteError, ConnectionError, OSError) as exc:
            self._rec(self.engine_stats.record_remote_error)
            host.breaker.record_failure()
            raise _CallFailed(f"{host.endpoint}: {exc}")
        if conn.proto != 2:
            host.breaker.record_success()
            self._checkin(host, conn)
            raise _CallFailed(
                f"{host.endpoint} speaks v1 (no filter sidecars)"
            )
        request_id = conn.next_request_id()
        try:
            conn.sock.settimeout(self._io_timeout(deadline))
            sent = framing.send_frame_sock(
                conn.sock, framing.encode_filters_request(request_id, shards)
            )
            raw = framing.recv_frame_sock(conn.sock, error=RemoteError)
            if raw is None:
                raise RemoteError(f"{host.endpoint} closed mid-filters")
        except (socket.timeout, TimeoutError):
            self._evict(conn)
            self._rec(self.engine_stats.record_remote_timeout)
            host.breaker.record_failure()
            raise _CallFailed(f"timeout fetching filters: {host.endpoint}")
        except (RemoteError, ConnectionError, OSError) as exc:
            self._evict(conn)
            self._rec(self.engine_stats.record_remote_error)
            host.breaker.record_failure()
            raise _CallFailed(f"{host.endpoint}: {exc}")
        self._rec(self.engine_stats.record_remote_wire, sent, len(raw) + 4)
        host.breaker.record_success()
        if not framing.is_v2_frame(raw):
            try:
                reply = framing.parse_json(
                    raw, require_op=False, error=RemoteError
                )
            except RemoteError:
                reply = {}
            if "error" in reply:
                self._checkin(host, conn)
                raise RemoteOpError(str(reply["error"]))
            self._evict(conn)
            raise _CallFailed(f"{host.endpoint}: filters reply desync")
        try:
            rep = framing.decode_filters_reply(raw, error=_ReplyCodecError)
        except _ReplyCodecError as exc:
            self._evict(conn)
            raise RemoteOpError(
                f"malformed filters reply from {host.endpoint}: {exc}"
            )
        if rep["request_id"] != request_id:
            self._evict(conn)
            raise _CallFailed(
                f"{host.endpoint}: filters reply id mismatch"
            )
        self._checkin(host, conn)
        tables = rep["tables"]
        try:
            metrics = [str(m) for m in tables.get("metrics", [])]
            intervals = [
                (float(iv[0]) + 0.0, float(iv[1]) + 0.0)
                for iv in tables.get("intervals", [])
            ]
        except (TypeError, ValueError, IndexError, KeyError):
            raise RemoteOpError(
                f"malformed filter tables from {host.endpoint}"
            )
        version = rep["store_version"]
        for s, blob in rep["filters"]:
            if not 0 <= s < self.n_shards:
                continue
            try:
                filt = KeyFilter.from_bytes(blob)
            except (ValueError, framing.FramingError) as exc:
                raise RemoteOpError(
                    f"malformed filter blob from {host.endpoint}: {exc}"
                )
            mirror = _FilterMirror(
                shard=s, filter=filt,
                metrics=list(metrics),
                metric_ids={m: i for i, m in enumerate(metrics)},
                intervals=list(intervals),
                interval_ids={iv: i for i, iv in enumerate(intervals)},
                source=host.endpoint, version=version,
            )
            with self._mirror_lock:
                self._mirrors[s] = mirror

    def _mirror_resolve(
        self, keys: List[Fingerprint], counts: bool
    ) -> Dict[Fingerprint, RemoteVerdict]:
        """Resolve definitely-absent keys locally against the mirrors.

        Sound only when *every* shard has a fresh mirror: a key that no
        shard's filter might contain is absent everywhere (Bloom
        filters have no false negatives), so it resolves as unknown
        without routing (``stable_hash``) or a wire round trip.  Keys
        any filter might contain — and all keys while any mirror is
        missing or stale — go over the wire as usual."""
        with self._mirror_lock:
            if len(self._mirrors) < self.n_shards:
                return {}
            mirrors = list(self._mirrors.values())
            if any(not m.fresh for m in mirrors):
                return {}
        n = len(keys)
        nodes = np.fromiter((fp.node for fp in keys), np.int64, n)
        vbits = (
            np.fromiter((fp.value for fp in keys), np.float64, n) + 0.0
        ).view(np.int64)
        might = np.zeros(n, dtype=bool)
        # Hosts may intern tables in different orders; group mirrors by
        # table content so ids (and hashes) are computed once per group.
        groups: Dict[Tuple, List[_FilterMirror]] = {}
        for mirror in mirrors:
            groups.setdefault(
                (tuple(mirror.metrics), tuple(mirror.intervals)), []
            ).append(mirror)
        for members in groups.values():
            ref = members[0]
            m_map = ref.metric_ids
            i_map = ref.interval_ids
            mids = np.fromiter(
                (m_map.get(fp.metric, -1) for fp in keys), np.int64, n
            )
            iids = np.fromiter(
                (i_map.get((fp.interval[0] + 0.0, fp.interval[1] + 0.0), -1)
                 for fp in keys),
                np.int64, n,
            )
            # A key whose metric/interval this table has never seen is
            # definitely absent from these shards — but its -1 ids hash
            # to junk, so mask filter hits down to known components.
            known = (mids >= 0) & (iids >= 0)
            if not known.any():
                continue
            hashes = key_hashes(mids, iids, nodes, vbits)
            group_might = np.zeros(n, dtype=bool)
            for mirror in members:
                group_might |= mirror.filter.might_contain(hashes)
            might |= group_might & known
        out: Dict[Fingerprint, RemoteVerdict] = {}
        for fp, hit in zip(keys, might.tolist()):
            if not hit:
                verdict = RemoteVerdict([])
                if counts:
                    verdict.counts = {}
                out[fp] = verdict
        if out:
            self._rec(self.engine_stats.record_filter_mirror_hits, len(out))
        return out

    def _mirror_note_versions(self, versions: Dict[str, int]) -> None:
        """A write through this client landed on these hosts at these
        store versions: mirrors sourced from them stay fresh (the write
        is already reflected — see :meth:`_mirror_note_write`)."""
        if not self.filter_mirrors:
            return
        with self._mirror_lock:
            for mirror in self._mirrors.values():
                if mirror.source in versions:
                    mirror.version = versions[mirror.source]

    def _mirror_note_write(
        self, fingerprint: Fingerprint, shard: int, versions: Dict[str, int]
    ) -> None:
        """Write-through: insert the new key into the owning shard's
        mirror (extending its tables for unseen strings) so probes for
        it keep crossing the wire instead of short-circuiting as
        absent."""
        if not self.filter_mirrors:
            return
        with self._mirror_lock:
            for mirror in self._mirrors.values():
                if mirror.source in versions:
                    mirror.version = versions[mirror.source]
            mirror = self._mirrors.get(shard)
            if mirror is None:
                return
            mi = mirror.metric_ids.get(fingerprint.metric)
            if mi is None:
                mi = len(mirror.metrics)
                mirror.metrics.append(fingerprint.metric)
                mirror.metric_ids[fingerprint.metric] = mi
            key = (fingerprint.interval[0] + 0.0, fingerprint.interval[1] + 0.0)
            ii = mirror.interval_ids.get(key)
            if ii is None:
                ii = len(mirror.intervals)
                mirror.intervals.append(key)
                mirror.interval_ids[key] = ii
            vbits = (
                np.array([fingerprint.value], np.float64) + 0.0
            ).view(np.int64)
            mirror.filter.insert(key_hashes(
                np.array([mi], np.int64), np.array([ii], np.int64),
                np.array([int(fingerprint.node)], np.int64), vbits,
            ))

    # -- scatter/gather reads ------------------------------------------------
    def probe_many(
        self, fingerprints: Sequence[Fingerprint], counts: bool = False
    ) -> List[RemoteVerdict]:
        """Resolve a batch of keys: the scatter/gather primitive.

        Buckets by shard, fans out in parallel, merges in input order.
        Never raises on host failure — unreachable key-space comes back
        as explicit ``degraded`` verdicts, and ``last_degraded`` maps
        exactly those keys to their reasons."""
        deadline = time.monotonic() + self.deadline
        unique: Dict[Fingerprint, int] = {}
        for fp in fingerprints:
            unique.setdefault(fp, len(unique))
        keys = list(unique)
        local: Dict[Fingerprint, RemoteVerdict] = {}
        route = self._route_cache
        if self.filter_mirrors and keys:
            self._maybe_refresh_mirrors()
            # A route-cached key already crossed the wire once — the
            # mirrors can only say "might contain" for it, so the Bloom
            # pass would be pure overhead on repeat-hit traffic.  Only
            # first-seen keys get the local-miss check.
            fresh = [fp for fp in keys if fp not in route]
            if fresh:
                local = self._mirror_resolve(fresh, counts)
        buckets: Dict[int, List[Fingerprint]] = {}
        for fp in keys:
            if fp in local:
                continue
            shard = route.get(fp)
            if shard is None:
                if len(route) >= _ROUTE_CACHE_MAX:
                    route.clear()
                shard = shard_index(fp, self.n_shards)
                route[fp] = shard
            buckets.setdefault(shard, []).append(fp)

        def probe_bucket(
            shard: int, fps: List[Fingerprint]
        ) -> List[RemoteVerdict]:
            try:
                verdicts, reason = self._call_resilient(
                    self._shard_hosts[shard],
                    lambda h: self._probe_call(h, shard, fps, counts, deadline),
                    deadline,
                )
            except _DegradeBucket as exc:
                # A host that answers with the wrong shape is a
                # protocol bug, not a dead host: degrade the bucket
                # (every key gets a verdict, so the merge below cannot
                # KeyError) instead of crashing the whole batch.
                self._rec(self.engine_stats.record_remote_error)
                return [
                    RemoteVerdict([], degraded=True, reason=exc.reason)
                    for _ in fps
                ]
            if verdicts is None:
                return [
                    RemoteVerdict([], degraded=True, reason=reason)
                    for _ in fps
                ]
            return verdicts

        items = sorted(buckets.items())
        if not items:
            resolved: List[List[RemoteVerdict]] = []
        elif len(items) == 1:
            resolved = [probe_bucket(*items[0])]
        else:
            resolved = list(self._fan_pool.map(
                lambda item: probe_bucket(*item), items
            ))
        by_key: Dict[Fingerprint, RemoteVerdict] = dict(local)
        degraded: Dict[Fingerprint, str] = {}
        for (shard, fps), verdicts in zip(items, resolved):
            for fp, verdict in zip(fps, verdicts):
                by_key[fp] = verdict
                if verdict.degraded:
                    degraded[fp] = verdict.reason
        self.last_degraded = degraded
        if degraded:
            self._rec(self.engine_stats.record_remote_degraded, len(degraded))
        return [by_key[fp] for fp in fingerprints]

    def lookup_many(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Optional[List[List[str]]]:
        """Batch lookup over the wire; degraded keys resolve as unknown
        (``[]``) with the explicit record kept in ``last_degraded`` and
        the ``remote_degraded`` counter."""
        return [v.labels for v in self.probe_many(fingerprints)]

    def _probe_one(self, fingerprint: Fingerprint, counts: bool = False):
        verdict = self.probe_many([fingerprint], counts=counts)[0]
        if verdict.degraded:
            raise RemoteDegradedError(
                f"shard {shard_index(fingerprint, self.n_shards)} "
                f"unreachable: {verdict.reason}",
                reasons={fingerprint: verdict.reason},
            )
        return verdict

    def lookup(self, fingerprint: Optional[Fingerprint]) -> List[str]:
        if fingerprint is None:
            return []
        return self._probe_one(fingerprint).labels

    def lookup_counts(
        self, fingerprint: Optional[Fingerprint]
    ) -> Dict[str, int]:
        if fingerprint is None:
            return {}
        verdict = self._probe_one(fingerprint, counts=True)
        return verdict.counts or {}

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return bool(self._probe_one(fingerprint).labels)

    def __len__(self) -> int:
        """Total keys across reachable shards; see :meth:`shard_sizes`
        for how unreachable shards are surfaced."""
        return sum(self.shard_sizes())

    def shard_sizes(self) -> List[int]:
        """Key count per shard as reported by the first live host of
        each (occupancy diagnostics, like the local sharded store).

        A shard none of whose hosts answered reports ``0`` — an
        *undercount*, surfaced rather than silent: those shard ids land
        in ``last_sizes_unreachable``, the ``remote_degraded`` counter
        moves, and the snapshot is not cached (the next call re-polls).
        Healthy snapshots are cached per client version — a batch's
        stats must not cost one status round trip per host per batch."""
        if self._len_cache is not None and self._len_cache[0] == self._version:
            return self._len_cache[1]
        counted: Dict[int, int] = {}
        reached: List[RemoteHost] = []
        for host, status in self._status_by_host():
            if status is None:
                continue
            reached.append(host)
            for key, n in status.get("keys_by_shard", {}).items():
                counted.setdefault(int(key), int(n))
        sizes = [counted.get(s, 0) for s in range(self.n_shards)]
        unreachable = [
            s for s in range(self.n_shards)
            if not any(h.serves(s) for h in reached)
        ]
        self.last_sizes_unreachable = unreachable
        if unreachable:
            self._rec(
                self.engine_stats.record_remote_degraded, len(unreachable)
            )
            return sizes  # degraded snapshot: do not cache the undercount
        self._len_cache = (self._version, sizes)
        return sizes

    def _status_by_host(self) -> Iterator[Tuple[RemoteHost, Optional[dict]]]:
        """One ``(host, status reply)`` pair per host; reply ``None``
        for unreachable hosts."""
        deadline = time.monotonic() + self.deadline
        for host in self.hosts:
            reply, _ = self._call_resilient(
                [host],
                lambda h: self._one_call(h, {"op": "status"}, deadline, 0),
                deadline, hedge=False,
            )
            yield host, reply

    def _statuses(self) -> Iterator[dict]:
        """One ``status`` reply per host, skipping unreachable ones."""
        for _, reply in self._status_by_host():
            if reply is not None:
                yield reply

    # -- writes --------------------------------------------------------------
    def _learn(
        self, hosts_by_record: Sequence[Tuple[RemoteHost, List[dict]]]
    ) -> Dict[str, int]:
        """Ship learn records; every targeted host must accept (writes
        must never silently drop — unreachable hosts raise).  Returns
        the per-endpoint store version after the write so the filter
        mirrors can stay fresh (the write is reflected via
        write-through, not a refetch)."""
        deadline = time.monotonic() + self.deadline
        versions: Dict[str, int] = {}
        for host, records in hosts_by_record:
            msg = {"op": "learn", "records": records}
            reply, reason = self._call_resilient(
                [host],
                lambda h: self._one_call(h, msg, deadline, len(records)),
                deadline, hedge=False,
            )
            if reply is None:
                raise RemoteDegradedError(
                    f"write not applied on {host.endpoint}: {reason}"
                )
            versions[host.endpoint] = int(reply.get("version", -1))
        return versions

    def register_label(self, label: str) -> None:
        if not isinstance(label, str) or not label:
            raise ValueError(f"label must be a non-empty string, got {label!r}")
        record = {"op": "label", "label": label}
        versions = self._learn([(host, [record]) for host in self.hosts])
        self._mirror_note_versions(versions)
        self._label_order.setdefault(label, None)
        self._app_order.setdefault(app_of_label(label), None)
        self._bump()

    def add_repeated(
        self, fingerprint: Fingerprint, label: str, count: int
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        shard = shard_index(fingerprint, self.n_shards)
        record = dict(fingerprint_to_record(fingerprint))
        record.update(op="add", label=label, count=int(count))
        versions = self._learn([
            (host, [record]) for host in self._shard_hosts[shard]
        ])
        self._mirror_note_write(fingerprint, shard, versions)
        self._label_order.setdefault(label, None)
        self._app_order.setdefault(app_of_label(label), None)
        self._metric_order.setdefault(fingerprint.metric, None)
        self._interval_order.setdefault(fingerprint.interval, None)
        self._bump()

    def add(self, fingerprint: Fingerprint, label: str) -> None:
        self.add_repeated(fingerprint, label, 1)

    def add_many(
        self, fingerprints: Sequence[Optional[Fingerprint]], label: str
    ) -> int:
        added = 0
        for fp in fingerprints:
            if fp is not None:
                self.add_repeated(fp, label, 1)
                added += 1
        return added

    def merge(self, other: DictionaryBackend) -> None:
        merge_into(self, other)

    def _bump(self) -> None:
        self._version += 1

    @property
    def version(self) -> int:
        return self._version

    # -- string tables (client-side, see class docstring) --------------------
    def sync_tables(self) -> None:
        """Refresh the client-side string tables from host ``status``
        replies (first live host's order wins, later hosts append what
        it had not seen).  Called at construction; call again after
        out-of-band server-side changes."""
        for status in self._statuses():
            for label in status.get("labels", []):
                self._label_order.setdefault(str(label), None)
                self._app_order.setdefault(app_of_label(str(label)), None)
            for metric in status.get("metrics", []):
                self._metric_order.setdefault(str(metric), None)
            for interval in status.get("intervals", []):
                self._interval_order.setdefault(
                    (float(interval[0]), float(interval[1])), None
                )
        self._bump()

    def labels(self) -> List[str]:
        return list(self._label_order)

    def app_names(self) -> List[str]:
        return list(self._app_order)

    def metrics(self) -> List[str]:
        return list(self._metric_order)

    def intervals(self) -> List[Tuple[float, float]]:
        return list(self._interval_order)

    # -- bulk reads / analysis ----------------------------------------------
    def entries(self) -> Iterator[Tuple[Fingerprint, List[str]]]:
        """All (key, labels) pairs, shard-major order.  Raises
        :class:`RemoteDegradedError` when a shard has no reachable
        host — a partial dump would silently look complete."""
        for _, fp, counts in self._entry_records():
            yield fp, list(counts)

    def _entry_records(
        self,
    ) -> Iterator[Tuple[int, Fingerprint, Dict[str, int]]]:
        for shard in range(self.n_shards):
            deadline = time.monotonic() + self.deadline
            msg = {"op": "entries", "shard": shard}
            reply, reason = self._call_resilient(
                self._shard_hosts[shard],
                lambda h: self._one_call(h, msg, deadline, 0),
                deadline,
            )
            if reply is None:
                raise RemoteDegradedError(
                    f"shard {shard} unreachable: {reason}"
                )
            for record in reply.get("entries", []):
                fp = fingerprint_from_record(record)
                counts = {
                    str(k): int(v)
                    for k, v in record.get("labels", {}).items()
                }
                yield shard, fp, counts

    def stats(self) -> DictionaryStats:
        n_keys = 0
        n_insertions = 0
        n_colliding = 0
        max_labels = 0
        for _, _, counts in self._entry_records():
            n_keys += 1
            n_insertions += sum(counts.values())
            max_labels = max(max_labels, len(counts))
            if len({app_of_label(l) for l in counts}) > 1:
                n_colliding += 1
        return DictionaryStats(
            n_keys=n_keys,
            n_insertions=n_insertions,
            n_labels=len(self._label_order),
            n_colliding_keys=n_colliding,
            max_labels_per_key=max_labels,
        )

    def collisions(self) -> List[Tuple[Fingerprint, List[str]]]:
        out = []
        for _, fp, counts in self._entry_records():
            labels = list(counts)
            if len({app_of_label(l) for l in labels}) > 1:
                out.append((fp, labels))
        return out

    def fingerprints_for(self, label_prefix: str) -> List[Fingerprint]:
        out = []
        for _, fp, counts in self._entry_records():
            for label in counts:
                if label == label_prefix \
                        or label.startswith(label_prefix + "_") \
                        or app_of_label(label) == label_prefix:
                    out.append(fp)
                    break
        return out

    def __repr__(self) -> str:
        hosts = ", ".join(str(h) for h in self.hosts)
        return (
            f"RemoteShardBackend(n_shards={self.n_shards}, hosts=[{hosts}])"
        )
