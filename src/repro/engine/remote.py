"""Distributed shard fan-out: probe servers, a resilient scatter/gather
client, and the fault-handling layer that makes it production-grade.

ROADMAP item 1 asks for a recognition tier whose dictionary exceeds one
host's RAM: shards scattered across hosts behind the same
:class:`~repro.engine.backend.DictionaryBackend` seam everything else
already speaks.  The routing is the easy part — EFD keys partition by
``stable_hash % N`` exactly as in :mod:`repro.engine.sharded`, so a
probe batch buckets by shard and fans out to whichever hosts own those
shards.  The hard part (per GRR's frontend/worker fleet and SIREN's
system-scale framing) is surviving slow, flapping, and dead hosts, so
every remote call is wrapped in a resilience layer:

- **deadline budgets** — a batch gets one wall-clock budget; every
  connect/read timeout is derived from the *remaining* budget, so a
  slow host cannot starve the rest of the batch;
- **bounded retries** with exponential backoff + full jitter
  (:class:`repro._util.backoff.BackoffPolicy`, shared with the
  replication follower's redial loop);
- **hedged probes** — when a primary host takes longer than a latency
  percentile of recent calls, the same bucket is duplicated to the
  shard's next replica and the first answer wins;
- **per-host circuit breakers** (closed/open/half-open with probe-based
  recovery) so a dead host costs one timeout, not one per batch;
- **graceful degradation** — when every host of a shard is down, the
  batch still resolves: the unreachable keys get explicit ``degraded``
  verdicts (unknown-with-reason, never silently wrong) and the
  ``remote_*`` counters on :class:`~repro.engine.stats.EngineStats`
  record exactly what happened.

Wire protocol: u32 length-prefixed JSON frames
(:mod:`repro._util.framing` — the replication codec), one request frame
per connection turn::

    {"op": "status"}                                  # shards, tables, counts
    {"op": "probe", "keys": [REC, ...], "counts": B}  # -> {"ok", "labels", ...}
    {"op": "learn", "records": [REC, ...]}            # delta-log record shapes
    {"op": "entries", "shard": S}                     # full shard dump
    {"op": "ping"}                                    # liveness / breaker probe

where ``REC`` is the delta-log record encoding of
:func:`repro.core.serialization.fingerprint_to_record`.  Healthy-path
verdicts are element-wise equal to the single-process stores — pinned
by the equivalence matrix in ``tests/test_engine_properties.py`` — and
the fault layer is gated by the live-topology sweeps in
``tests/test_faultinject.py``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro._util import framing
from repro._util.backoff import BackoffPolicy
from repro.core.dictionary import DictionaryStats, app_of_label
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import (
    fingerprint_from_record,
    fingerprint_to_record,
)
from repro.engine.backend import DictionaryBackend, merge_into
from repro.engine.sharded import shard_index
from repro.engine.stats import EngineStats

__all__ = [
    "CircuitBreaker",
    "RemoteDegradedError",
    "RemoteError",
    "RemoteHost",
    "RemoteOpError",
    "RemoteShardBackend",
    "RemoteVerdict",
    "ShardServer",
    "ShardServerThread",
    "parse_remote_spec",
]


class RemoteError(framing.FramingError):
    """Transport-level failure talking to a shard host (refused, torn,
    oversized, undecodable).  Retryable: the resilience layer redials,
    hedges, or degrades."""


class RemoteOpError(RuntimeError):
    """The shard host is alive but refused the operation (a key probed
    at a host that does not own its shard, a malformed record).  Not
    retryable — retrying the same bad request cannot succeed."""


class RemoteDegradedError(RuntimeError):
    """A strict single-key operation (``lookup``, ``__contains__``, a
    write) could not reach any host of the owning shard within budget.
    ``reasons`` maps each affected fingerprint to why."""

    def __init__(self, message: str, reasons: Optional[Dict] = None):
        super().__init__(message)
        self.reasons: Dict = reasons or {}


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class CircuitBreaker:
    """Per-host closed/open/half-open breaker with probe-based recovery.

    ``failures`` *consecutive* failures trip the breaker open; while
    open, :meth:`allow` refuses instantly (a dead host costs one timeout
    per reset window, not one per batch).  After ``reset_timeout``
    seconds the breaker goes half-open and :meth:`allow` admits exactly
    one probe call: its success closes the breaker, its failure re-opens
    it (restarting the window).  :meth:`would_allow` is the non-claiming
    peek for building candidate lists — only the host actually dialed
    may claim the probe slot, and a claimed slot whose outcome never
    arrives (claimant crashed, call never dialed) expires after
    ``reset_timeout`` so the host cannot be locked out of rotation
    forever; :meth:`release` returns an unused slot immediately.
    ``clock`` is injectable so tests drive state transitions without
    sleeping; ``on_open`` fires once per closed/half-open -> open
    transition (the stats hook).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failures: int = 3,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        on_open: Optional[Callable[[], None]] = None,
    ):
        if failures < 1:
            raise ValueError(f"breaker failures must be >= 1, got {failures}")
        if reset_timeout <= 0:
            raise ValueError(
                f"breaker reset_timeout must be positive, got {reset_timeout}"
            )
        self.failures = int(failures)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._on_open = on_open
        self._lock = threading.Lock()
        self._consecutive = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False
        self._probe_started = 0.0

    def _effective_state(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            return self.HALF_OPEN
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _probe_claimed(self) -> bool:
        """Is the half-open probe slot currently held?  A slot whose
        outcome never arrived expires after ``reset_timeout`` so a
        claimant that died mid-call cannot lock the host out forever.
        Caller holds the lock."""
        if not self._probing:
            return False
        if self._clock() - self._probe_started >= self.reset_timeout:
            self._probing = False
            return False
        return True

    def would_allow(self) -> bool:
        """Non-claiming peek: would :meth:`allow` admit a call right
        now?  Use this to build candidate lists — it never consumes the
        half-open probe slot, so a host that is merely *listed* (but not
        dialed) stays in rotation."""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            return state == self.HALF_OPEN and not self._probe_claimed()

    def allow(self) -> bool:
        """May a call be attempted right now?  Call this only for the
        host actually being dialed: a half-open ``True`` claims the
        single probe slot, and the caller must report the outcome via
        :meth:`record_success` / :meth:`record_failure` (or hand back an
        undialed slot with :meth:`release`)."""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probe_claimed():
                self._state = self.HALF_OPEN
                self._probing = True
                self._probe_started = self._clock()
                return True
            return False

    def release(self) -> None:
        """Return a claimed probe slot without an outcome (the call was
        never dialed): the next caller may probe immediately."""
        with self._lock:
            self._probing = False

    def record_success(self) -> None:
        """One call to this host succeeded: close and reset."""
        with self._lock:
            self._consecutive = 0
            self._state = self.CLOSED
            self._probing = False

    def record_failure(self) -> None:
        """One call to this host failed; trips open at the threshold
        (or instantly when a half-open probe fails)."""
        tripped = False
        with self._lock:
            self._consecutive += 1
            should_open = (
                self._state == self.HALF_OPEN
                or self._consecutive >= self.failures
            )
            if should_open:
                tripped = self._state != self.OPEN
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False
        if tripped and self._on_open is not None:
            self._on_open()


# ---------------------------------------------------------------------------
# Host specs
# ---------------------------------------------------------------------------

@dataclass
class RemoteHost:
    """One shard host: an endpoint plus the shards it serves.

    ``shards=None`` means every shard (a full replica).  ``endpoint``
    is ``HOST:PORT`` or ``unix:PATH``.
    """

    endpoint: str
    shards: Optional[Tuple[int, ...]] = None
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)

    def serves(self, shard: int) -> bool:
        return self.shards is None or shard in self.shards

    def connect(self, timeout: float) -> socket.socket:
        if self.endpoint.startswith("unix:"):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self.endpoint[len("unix:"):])
            return sock
        host, _, port = self.endpoint.rpartition(":")
        return socket.create_connection(
            (host or "127.0.0.1", int(port)), timeout=timeout
        )

    def __str__(self) -> str:
        owned = "all" if self.shards is None else ",".join(
            str(s) for s in self.shards
        )
        return f"{owned}@{self.endpoint}"


def parse_remote_spec(spec: str) -> RemoteHost:
    """``SHARDS@ENDPOINT`` -> :class:`RemoteHost`.

    ``SHARDS`` is a comma list of shard indexes or ``all``; with no
    ``@`` the whole string is an endpoint serving every shard.
    Endpoints are ``HOST:PORT``, ``:PORT``, or ``unix:PATH`` (the
    :func:`~repro.engine.replicate.parse_replica_endpoint` shapes).
    """
    shards: Optional[Tuple[int, ...]] = None
    endpoint = spec
    head, sep, tail = spec.partition("@")
    if sep and not head.startswith("unix:"):
        endpoint = tail
        if head.strip().lower() != "all":
            try:
                shards = tuple(
                    int(s) for s in head.split(",") if s.strip() != ""
                )
            except ValueError:
                raise ValueError(f"invalid shard list in remote spec {spec!r}")
            if not shards or any(s < 0 for s in shards):
                raise ValueError(f"invalid shard list in remote spec {spec!r}")
    if not endpoint or (
        not endpoint.startswith("unix:") and ":" not in endpoint
    ):
        raise ValueError(f"invalid endpoint in remote spec {spec!r}")
    return RemoteHost(endpoint=endpoint, shards=shards)


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------

class ShardServer:
    """Serve a slice of a dictionary's shard space over framed JSON.

    Holds any :class:`~repro.engine.backend.DictionaryBackend` and
    answers probes for the shards it was told it owns — probing (or
    learning into) a shard outside ``shards`` is refused with an error
    reply, which catches routing bugs at the boundary instead of
    returning silently-empty verdicts.  Store access runs in the
    default executor under ``lock`` so a slow disk hydration never
    blocks the event loop or a concurrent replication task.
    """

    def __init__(
        self,
        store: DictionaryBackend,
        n_shards: int,
        shards: Optional[Sequence[int]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        uds: Optional[str] = None,
        stats: Optional[EngineStats] = None,
        lock: Optional[threading.Lock] = None,
    ):
        if (port is None) == (uds is None):
            raise ValueError("ShardServer needs exactly one of port / uds")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.store = store
        self.n_shards = int(n_shards)
        self.shards: Tuple[int, ...] = (
            tuple(range(self.n_shards)) if shards is None
            else tuple(sorted(set(int(s) for s in shards)))
        )
        if any(s < 0 or s >= self.n_shards for s in self.shards):
            raise ValueError(
                f"shards {self.shards} out of range for n_shards={n_shards}"
            )
        self._host = host or "127.0.0.1"
        self._port = port
        self._uds = uds
        self.stats = stats if stats is not None else EngineStats()
        self._lock = lock if lock is not None else threading.Lock()
        self._server: Optional[asyncio.base_events.Server] = None
        self._count_cache: Optional[Tuple[int, Dict[int, int]]] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "ShardServer":
        if self._uds is not None:
            self._server = await asyncio.start_unix_server(
                self._handle, path=self._uds
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self._host, port=self._port
            )
        return self

    async def __aenter__(self) -> "ShardServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def endpoints(self) -> List[str]:
        """Bound endpoints (``tcp://h:p`` / ``unix://path``), for logs
        and for tests that bind port 0."""
        if self._server is None:
            return []
        if self._uds is not None:
            return [f"unix://{self._uds}"]
        return [
            f"tcp://{sock.getsockname()[0]}:{sock.getsockname()[1]}"
            for sock in self._server.sockets
        ]

    @property
    def port(self) -> Optional[int]:
        if self._server is None or self._uds is not None:
            return None
        return self._server.sockets[0].getsockname()[1]

    # -- connection handler --------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.record_conn_open()
        dropped = False
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    payload = await framing.read_frame(
                        reader, error=RemoteError
                    )
                except RemoteError:
                    self.stats.record_protocol_error()
                    dropped = True
                    return
                if payload is None:
                    return
                try:
                    msg = framing.parse_json(payload, error=RemoteError)
                    reply = await loop.run_in_executor(
                        None, self._dispatch, msg
                    )
                except RemoteError as exc:
                    self.stats.record_protocol_error()
                    reply = {"error": str(exc)}
                    dropped = True
                except RemoteOpError as exc:
                    reply = {"error": str(exc)}
                await framing.send_json(writer, reply)
                if dropped:
                    return
        except (ConnectionError, OSError):
            dropped = True
        finally:
            self.stats.record_conn_close(dropped=dropped)
            writer.close()

    # -- op dispatch (runs in executor, sync) --------------------------------
    def _dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "status":
            return self._op_status()
        if op == "probe":
            return self._op_probe(msg)
        if op == "learn":
            return self._op_learn(msg)
        if op == "entries":
            return self._op_entries(msg)
        raise RemoteOpError(f"unknown op {op!r}")

    def _owned(self, fp: Fingerprint) -> int:
        shard = shard_index(fp, self.n_shards)
        if shard not in self.shards:
            raise RemoteOpError(
                f"shard {shard} not served here (serving "
                f"{','.join(str(s) for s in self.shards)} of {self.n_shards})"
            )
        return shard

    def _parse_key(self, record: dict) -> Fingerprint:
        try:
            return fingerprint_from_record(record)
        except (KeyError, TypeError, ValueError) as exc:
            raise RemoteOpError(f"malformed fingerprint record: {exc}")

    def _op_status(self) -> dict:
        with self._lock:
            return {
                "ok": True,
                "n_shards": self.n_shards,
                "shards": list(self.shards),
                "version": self.store.version,
                "keys": len(self.store),
                "keys_by_shard": {
                    str(s): n for s, n in self._shard_counts().items()
                },
                "labels": self.store.labels(),
                "metrics": self.store.metrics(),
                "intervals": [list(iv) for iv in self.store.intervals()],
            }

    def _shard_counts(self) -> Dict[int, int]:
        version = self.store.version
        if self._count_cache is not None and self._count_cache[0] == version:
            return self._count_cache[1]
        counts = {s: 0 for s in self.shards}
        for fp, _ in self.store.entries():
            shard = shard_index(fp, self.n_shards)
            if shard in counts:
                counts[shard] += 1
        self._count_cache = (version, counts)
        return counts

    def _op_probe(self, msg: dict) -> dict:
        keys = msg.get("keys")
        if not isinstance(keys, list):
            raise RemoteOpError("probe needs a keys list")
        fps = [self._parse_key(rec) for rec in keys]
        for fp in fps:
            self._owned(fp)
        with self._lock:
            reply: dict = {
                "ok": True,
                "labels": [self.store.lookup(fp) for fp in fps],
            }
            if msg.get("counts"):
                reply["counts"] = [self.store.lookup_counts(fp) for fp in fps]
        return reply

    def _op_learn(self, msg: dict) -> dict:
        records = msg.get("records")
        if not isinstance(records, list):
            raise RemoteOpError("learn needs a records list")
        with self._lock:
            applied = 0
            for record in records:
                rop = record.get("op") if isinstance(record, dict) else None
                if rop == "label":
                    label = record.get("label")
                    if not isinstance(label, str) or not label:
                        raise RemoteOpError("label record needs a label")
                    self.store.register_label(label)
                elif rop == "add":
                    fp = self._parse_key(record)
                    self._owned(fp)
                    label = record.get("label")
                    if not isinstance(label, str) or not label:
                        raise RemoteOpError("add record needs a label")
                    self.store.add_repeated(
                        fp, label, int(record.get("count", 1))
                    )
                else:
                    raise RemoteOpError(f"unknown learn record op {rop!r}")
                applied += 1
            return {
                "ok": True, "applied": applied, "version": self.store.version
            }

    def _op_entries(self, msg: dict) -> dict:
        shard = msg.get("shard")
        if not isinstance(shard, int) or shard not in self.shards:
            raise RemoteOpError(f"shard {shard!r} not served here")
        with self._lock:
            out = []
            for fp, _ in self.store.entries():
                if shard_index(fp, self.n_shards) != shard:
                    continue
                record = fingerprint_to_record(fp)
                record["labels"] = self.store.lookup_counts(fp)
                out.append(record)
        return {"ok": True, "shard": shard, "entries": out}


class ShardServerThread:
    """A :class:`ShardServer` on its own event-loop thread.

    The synchronous client, tests, and benchmarks need live servers
    without owning an event loop; this wrapper runs one per server and
    exposes the bound endpoint.  ``start()`` blocks until the socket is
    listening, ``stop()`` until the loop exits.
    """

    def __init__(
        self,
        store: DictionaryBackend,
        n_shards: int,
        shards: Optional[Sequence[int]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        uds: Optional[str] = None,
        stats: Optional[EngineStats] = None,
    ):
        self._kwargs = dict(
            store=store, n_shards=n_shards, shards=shards, stats=stats,
        )
        if uds is not None:
            self._kwargs["uds"] = uds
        else:
            self._kwargs.update(host=host, port=port)
        self.server: Optional[ShardServer] = None
        self.endpoint: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None

    def start(self) -> "ShardServerThread":
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        self._started.wait(10.0)
        if self._error is not None:
            raise self._error
        if self.endpoint is None:
            raise RuntimeError("shard server failed to start")
        return self

    def _main(self) -> None:
        async def run() -> None:
            server = ShardServer(**self._kwargs)
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                await server.start()
            except BaseException as exc:
                self._error = exc
                self._started.set()
                return
            self.server = server
            uds = self._kwargs.get("uds")
            self.endpoint = (
                f"unix:{uds}" if uds is not None
                else f"{self._kwargs['host']}:{server.port}"
            )
            self._started.set()
            try:
                await self._stop.wait()
            finally:
                await server.close()

        asyncio.run(run())

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already exited: nothing to wake
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    def __enter__(self) -> "ShardServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------

@dataclass
class RemoteVerdict:
    """One key's remote resolution: its labels, or an explicit
    degradation.  ``degraded`` verdicts carry empty labels plus the
    ``reason`` the key-space was unreachable — unknown-with-reason,
    never silently wrong."""

    labels: List[str]
    degraded: bool = False
    reason: str = ""
    counts: Optional[Dict[str, int]] = None


class _CallFailed(Exception):
    """Internal: one physical call failed (already counted/broken)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class RemoteShardBackend:
    """A :class:`~repro.engine.backend.DictionaryBackend` whose shards
    live on remote :class:`ShardServer` hosts.

    Reads bucket by ``stable_hash % n_shards`` and scatter/gather in
    parallel over the owning hosts; every physical call rides the
    resilience layer (deadlines, retries + full-jitter backoff, hedges,
    per-host circuit breakers).  Healthy-path answers are element-wise
    equal to the single-process stores.  When a shard's hosts are all
    unreachable, :meth:`probe_many` marks exactly those keys
    ``degraded`` (and :meth:`lookup_many` resolves them as unknown,
    recording the degradation in ``last_degraded`` and the
    ``remote_degraded`` counter); strict single-key ops raise
    :class:`RemoteDegradedError` instead.

    The string tables (labels/apps/metrics/intervals) are kept
    client-side — synced from host ``status`` at construction, then
    maintained by writes through this client — because tie-break order
    must be stable even while hosts flap.  ``entries()`` streams keys
    shard-major (shard 0..N-1, per-shard insertion order), which is the
    one documented deviation from the flat store's global insertion
    order.  Writes propagate to every host serving the owning shard and
    are at-least-once under faults (a retry after a lost reply can
    re-apply); label registration broadcasts to all hosts.
    """

    def __init__(
        self,
        hosts: Sequence[Union[str, RemoteHost]],
        n_shards: int,
        deadline: float = 2.0,
        try_timeout: float = 0.5,
        retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        hedge_delay: float = 0.05,
        hedge_percentile: float = 0.95,
        breaker_failures: int = 3,
        breaker_reset: float = 1.0,
        stats: Optional[EngineStats] = None,
        rng: Optional[random.Random] = None,
        sync_tables: bool = True,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not hosts:
            raise ValueError("RemoteShardBackend needs at least one host")
        self.n_shards = int(n_shards)
        self.deadline = float(deadline)
        self.try_timeout = float(try_timeout)
        self.retries = int(retries)
        self.hedge_delay = float(hedge_delay)
        self.hedge_percentile = float(hedge_percentile)
        self.engine_stats = stats if stats is not None else EngineStats()
        self._backoff = BackoffPolicy(
            base=backoff_base, cap=backoff_cap, rng=rng
        )
        self.hosts: List[RemoteHost] = []
        for spec in hosts:
            host = spec if isinstance(spec, RemoteHost) else parse_remote_spec(
                spec
            )
            host.breaker = CircuitBreaker(
                failures=breaker_failures,
                reset_timeout=breaker_reset,
                on_open=self._on_breaker_open,
            )
            self.hosts.append(host)
        self._shard_hosts: List[List[RemoteHost]] = [
            [h for h in self.hosts if h.serves(s)]
            for s in range(self.n_shards)
        ]
        uncovered = [s for s, hs in enumerate(self._shard_hosts) if not hs]
        if uncovered:
            raise ValueError(
                f"no host serves shard(s) {uncovered} of {self.n_shards}"
            )
        self._label_order: Dict[str, None] = {}
        self._app_order: Dict[str, None] = {}
        self._metric_order: Dict[str, None] = {}
        self._interval_order: Dict[Tuple[float, float], None] = {}
        self._version = 0
        self._len_cache: Optional[Tuple[int, List[int]]] = None
        self._latencies: List[float] = []
        self._stats_lock = threading.Lock()
        self._io_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(8, 2 * len(self.hosts)),
            thread_name_prefix="efd-remote-io",
        )
        self._fan_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(4, min(self.n_shards, 16)),
            thread_name_prefix="efd-remote-fan",
        )
        #: fingerprint -> reason for every key the *last* batch degraded.
        self.last_degraded: Dict[Fingerprint, str] = {}
        #: shard ids the last :meth:`shard_sizes` poll could not reach
        #: (their reported size is an undercount, not a true zero).
        self.last_sizes_unreachable: List[int] = []
        if sync_tables:
            self.sync_tables()

    def close(self) -> None:
        self._io_pool.shutdown(wait=False)
        self._fan_pool.shutdown(wait=False)

    def __enter__(self) -> "RemoteShardBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- stats plumbing ------------------------------------------------------
    def _rec(self, recorder: Callable, *args) -> None:
        with self._stats_lock:
            recorder(*args)

    def _on_breaker_open(self) -> None:
        self._rec(self.engine_stats.record_breaker_open)

    # -- one physical call ---------------------------------------------------
    def _one_call(
        self, host: RemoteHost, msg: dict, deadline: float, n_keys: int
    ) -> dict:
        """One request/reply on a fresh connection, budget-bounded.

        Records the call, its outcome, and the host's breaker state;
        raises :class:`_CallFailed` on any retryable failure and
        :class:`RemoteOpError` (breaker untouched — the host is alive)
        on a refused op.
        """
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            # Never dialed: hand back a claimed half-open probe slot.
            host.breaker.release()
            raise _CallFailed("deadline exhausted")
        timeout = min(self.try_timeout, remaining)
        self._rec(self.engine_stats.record_remote_call, n_keys)
        start = time.monotonic()
        try:
            sock = host.connect(timeout)
            try:
                sock.settimeout(
                    max(0.001, min(self.try_timeout,
                                   deadline - time.monotonic()))
                )
                reply = framing.request_json_sock(sock, msg, error=RemoteError)
            finally:
                sock.close()
        except (socket.timeout, TimeoutError):
            self._rec(self.engine_stats.record_remote_timeout)
            host.breaker.record_failure()
            raise _CallFailed(f"timeout talking to {host.endpoint}")
        except (RemoteError, ConnectionError, OSError) as exc:
            self._rec(self.engine_stats.record_remote_error)
            host.breaker.record_failure()
            raise _CallFailed(f"{host.endpoint}: {exc}")
        if "error" in reply:
            # The host answered: it is healthy, the request is wrong.
            host.breaker.record_success()
            raise RemoteOpError(str(reply["error"]))
        host.breaker.record_success()
        with self._stats_lock:
            self._latencies.append(time.monotonic() - start)
            del self._latencies[:-64]
        return reply

    def _hedge_wait(self) -> float:
        """Seconds to wait on the primary before hedging: the configured
        floor, raised to the observed latency percentile once enough
        calls have been measured."""
        with self._stats_lock:
            window = list(self._latencies)
        if len(window) < 8:
            return self.hedge_delay
        window.sort()
        rank = min(
            len(window) - 1,
            max(0, int(self.hedge_percentile * len(window))),
        )
        return max(self.hedge_delay, window[rank])

    def _call_resilient(
        self,
        shard_hosts: Sequence[RemoteHost],
        msg: dict,
        deadline: float,
        n_keys: int,
        hedge: bool = True,
    ) -> Tuple[Optional[dict], str]:
        """The full resilience ladder for one logical request.

        Walks the shard's hosts behind their breakers — candidates are
        peeked non-claimingly (:meth:`CircuitBreaker.would_allow`) and
        each host claims its probe slot only when actually dialed; a
        fast-failing primary fails over to the next candidate *within
        the same attempt*, so a healthy replica is reached before the
        retry budget burns down.  Retries with full-jitter backoff
        within the deadline budget; hedges to the next replica when the
        primary dawdles.  Returns ``(reply, reason)`` — reply ``None``
        means the request degraded and ``reason`` says why.
        :class:`RemoteOpError` propagates immediately (retrying a
        refused op cannot help).
        """
        attempt = 0
        reason = "no reachable host"
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None, f"deadline exhausted ({reason})"
            candidates = [h for h in shard_hosts if h.breaker.would_allow()]
            if not candidates:
                reason = "circuit breakers open for all hosts"
            dialed = False
            for i, host in enumerate(candidates):
                if deadline - time.monotonic() <= 0:
                    return None, f"deadline exhausted ({reason})"
                if not host.breaker.allow():
                    continue  # slot claimed between the peek and the dial
                dialed = True
                try:
                    return self._race(
                        host, candidates[i + 1:] if hedge else [], msg,
                        deadline, n_keys,
                    ), ""
                except RemoteOpError:
                    raise
                except _CallFailed as exc:
                    reason = exc.reason
            if candidates and not dialed:
                reason = "circuit breakers open for all hosts"
            if attempt >= self.retries:
                return None, reason
            attempt += 1
            self._rec(self.engine_stats.record_remote_retry)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None, f"deadline exhausted ({reason})"
            time.sleep(min(self._backoff.delay(attempt - 1), remaining))

    def _race(
        self,
        primary: RemoteHost,
        backups: Sequence[RemoteHost],
        msg: dict,
        deadline: float,
        n_keys: int,
    ) -> dict:
        """Primary call with an optional hedge to the next replica.

        The hedge launches only after the primary has been quiet past
        the latency-percentile threshold; first success wins and the
        win/loss is counted.  Raises :class:`_CallFailed` when every
        launched copy failed."""
        futures: Dict[concurrent.futures.Future, bool] = {}
        primary_future = self._io_pool.submit(
            self._one_call, primary, msg, deadline, n_keys
        )
        futures[primary_future] = False  # not a hedge
        hedged = False
        if backups:
            wait = min(self._hedge_wait(), max(0.0, deadline - time.monotonic()))
            done, _ = concurrent.futures.wait(
                [primary_future], timeout=wait
            )
            if not done:
                backup = next(
                    (b for b in backups if b.breaker.allow()), None
                )
                if backup is not None:
                    hedged = True
                    self._rec(self.engine_stats.record_remote_hedge)
                    futures[self._io_pool.submit(
                        self._one_call, backup, msg, deadline, n_keys
                    )] = True
        pending = set(futures)
        failure: Optional[_CallFailed] = None
        while pending:
            remaining = deadline - time.monotonic()
            done, pending = concurrent.futures.wait(
                pending,
                timeout=max(0.001, remaining),
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            if not done:  # budget gone with calls still in flight
                break
            for future in done:
                try:
                    reply = future.result()
                except RemoteOpError:
                    raise
                except _CallFailed as exc:
                    failure = exc
                    continue
                if hedged:
                    self._rec(
                        self.engine_stats.record_remote_hedge, futures[future]
                    )
                return reply
        if failure is not None:
            raise failure
        raise _CallFailed("deadline exhausted mid-call")

    # -- scatter/gather reads ------------------------------------------------
    def probe_many(
        self, fingerprints: Sequence[Fingerprint], counts: bool = False
    ) -> List[RemoteVerdict]:
        """Resolve a batch of keys: the scatter/gather primitive.

        Buckets by shard, fans out in parallel, merges in input order.
        Never raises on host failure — unreachable key-space comes back
        as explicit ``degraded`` verdicts, and ``last_degraded`` maps
        exactly those keys to their reasons."""
        deadline = time.monotonic() + self.deadline
        unique: Dict[Fingerprint, int] = {}
        for fp in fingerprints:
            unique.setdefault(fp, len(unique))
        buckets: Dict[int, List[Fingerprint]] = {}
        for fp in unique:
            buckets.setdefault(shard_index(fp, self.n_shards), []).append(fp)

        def probe_bucket(
            shard: int, fps: List[Fingerprint]
        ) -> List[RemoteVerdict]:
            msg: dict = {
                "op": "probe",
                "keys": [fingerprint_to_record(fp) for fp in fps],
            }
            if counts:
                msg["counts"] = True
            reply, reason = self._call_resilient(
                self._shard_hosts[shard], msg, deadline, len(fps)
            )
            if reply is None:
                return [
                    RemoteVerdict([], degraded=True, reason=reason)
                    for _ in fps
                ]
            # A host that answers with the wrong shape is a protocol
            # bug, not a dead host: degrade the bucket (every key gets
            # a verdict, so the merge below cannot KeyError) instead of
            # crashing the whole batch on a truncated zip.
            labels = reply.get("labels")
            count_maps = reply.get("counts") if counts else None
            malformed = not isinstance(labels, list) or len(labels) != len(fps)
            if not malformed and counts:
                malformed = (
                    not isinstance(count_maps, list)
                    or len(count_maps) != len(fps)
                )
            if malformed:
                self._rec(self.engine_stats.record_remote_error)
                got = (
                    len(labels) if isinstance(labels, list)
                    else type(labels).__name__
                )
                reason = (
                    f"malformed probe reply for shard {shard}: "
                    f"{len(fps)} keys probed, labels={got}"
                )
                return [
                    RemoteVerdict([], degraded=True, reason=reason)
                    for _ in fps
                ]
            if count_maps is None:
                count_maps = [None] * len(fps)
            out = []
            for found, cmap in zip(labels, count_maps):
                verdict = RemoteVerdict([str(l) for l in found])
                if counts and cmap is not None:
                    verdict.counts = {
                        str(k): int(v) for k, v in cmap.items()
                    }
                out.append(verdict)
            return out

        items = sorted(buckets.items())
        if len(items) == 1:
            resolved = [probe_bucket(*items[0])]
        else:
            resolved = list(self._fan_pool.map(
                lambda item: probe_bucket(*item), items
            ))
        by_key: Dict[Fingerprint, RemoteVerdict] = {}
        degraded: Dict[Fingerprint, str] = {}
        for (shard, fps), verdicts in zip(items, resolved):
            for fp, verdict in zip(fps, verdicts):
                by_key[fp] = verdict
                if verdict.degraded:
                    degraded[fp] = verdict.reason
        self.last_degraded = degraded
        if degraded:
            self._rec(self.engine_stats.record_remote_degraded, len(degraded))
        return [by_key[fp] for fp in fingerprints]

    def lookup_many(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Optional[List[List[str]]]:
        """Batch lookup over the wire; degraded keys resolve as unknown
        (``[]``) with the explicit record kept in ``last_degraded`` and
        the ``remote_degraded`` counter."""
        return [v.labels for v in self.probe_many(fingerprints)]

    def _probe_one(self, fingerprint: Fingerprint, counts: bool = False):
        verdict = self.probe_many([fingerprint], counts=counts)[0]
        if verdict.degraded:
            raise RemoteDegradedError(
                f"shard {shard_index(fingerprint, self.n_shards)} "
                f"unreachable: {verdict.reason}",
                reasons={fingerprint: verdict.reason},
            )
        return verdict

    def lookup(self, fingerprint: Optional[Fingerprint]) -> List[str]:
        if fingerprint is None:
            return []
        return self._probe_one(fingerprint).labels

    def lookup_counts(
        self, fingerprint: Optional[Fingerprint]
    ) -> Dict[str, int]:
        if fingerprint is None:
            return {}
        verdict = self._probe_one(fingerprint, counts=True)
        return verdict.counts or {}

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return bool(self._probe_one(fingerprint).labels)

    def __len__(self) -> int:
        """Total keys across reachable shards; see :meth:`shard_sizes`
        for how unreachable shards are surfaced."""
        return sum(self.shard_sizes())

    def shard_sizes(self) -> List[int]:
        """Key count per shard as reported by the first live host of
        each (occupancy diagnostics, like the local sharded store).

        A shard none of whose hosts answered reports ``0`` — an
        *undercount*, surfaced rather than silent: those shard ids land
        in ``last_sizes_unreachable``, the ``remote_degraded`` counter
        moves, and the snapshot is not cached (the next call re-polls).
        Healthy snapshots are cached per client version — a batch's
        stats must not cost one status round trip per host per batch."""
        if self._len_cache is not None and self._len_cache[0] == self._version:
            return self._len_cache[1]
        counted: Dict[int, int] = {}
        reached: List[RemoteHost] = []
        for host, status in self._status_by_host():
            if status is None:
                continue
            reached.append(host)
            for key, n in status.get("keys_by_shard", {}).items():
                counted.setdefault(int(key), int(n))
        sizes = [counted.get(s, 0) for s in range(self.n_shards)]
        unreachable = [
            s for s in range(self.n_shards)
            if not any(h.serves(s) for h in reached)
        ]
        self.last_sizes_unreachable = unreachable
        if unreachable:
            self._rec(
                self.engine_stats.record_remote_degraded, len(unreachable)
            )
            return sizes  # degraded snapshot: do not cache the undercount
        self._len_cache = (self._version, sizes)
        return sizes

    def _status_by_host(self) -> Iterator[Tuple[RemoteHost, Optional[dict]]]:
        """One ``(host, status reply)`` pair per host; reply ``None``
        for unreachable hosts."""
        deadline = time.monotonic() + self.deadline
        for host in self.hosts:
            reply, _ = self._call_resilient(
                [host], {"op": "status"}, deadline, 0, hedge=False
            )
            yield host, reply

    def _statuses(self) -> Iterator[dict]:
        """One ``status`` reply per host, skipping unreachable ones."""
        for _, reply in self._status_by_host():
            if reply is not None:
                yield reply

    # -- writes --------------------------------------------------------------
    def _learn(
        self, hosts_by_record: Sequence[Tuple[RemoteHost, List[dict]]]
    ) -> None:
        """Ship learn records; every targeted host must accept (writes
        must never silently drop — unreachable hosts raise)."""
        deadline = time.monotonic() + self.deadline
        for host, records in hosts_by_record:
            reply, reason = self._call_resilient(
                [host], {"op": "learn", "records": records}, deadline,
                len(records), hedge=False,
            )
            if reply is None:
                raise RemoteDegradedError(
                    f"write not applied on {host.endpoint}: {reason}"
                )

    def register_label(self, label: str) -> None:
        if not isinstance(label, str) or not label:
            raise ValueError(f"label must be a non-empty string, got {label!r}")
        record = {"op": "label", "label": label}
        self._learn([(host, [record]) for host in self.hosts])
        self._label_order.setdefault(label, None)
        self._app_order.setdefault(app_of_label(label), None)
        self._bump()

    def add_repeated(
        self, fingerprint: Fingerprint, label: str, count: int
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        shard = shard_index(fingerprint, self.n_shards)
        record = dict(fingerprint_to_record(fingerprint))
        record.update(op="add", label=label, count=int(count))
        self._learn([
            (host, [record]) for host in self._shard_hosts[shard]
        ])
        self._label_order.setdefault(label, None)
        self._app_order.setdefault(app_of_label(label), None)
        self._metric_order.setdefault(fingerprint.metric, None)
        self._interval_order.setdefault(fingerprint.interval, None)
        self._bump()

    def add(self, fingerprint: Fingerprint, label: str) -> None:
        self.add_repeated(fingerprint, label, 1)

    def add_many(
        self, fingerprints: Sequence[Optional[Fingerprint]], label: str
    ) -> int:
        added = 0
        for fp in fingerprints:
            if fp is not None:
                self.add_repeated(fp, label, 1)
                added += 1
        return added

    def merge(self, other: DictionaryBackend) -> None:
        merge_into(self, other)

    def _bump(self) -> None:
        self._version += 1

    @property
    def version(self) -> int:
        return self._version

    # -- string tables (client-side, see class docstring) --------------------
    def sync_tables(self) -> None:
        """Refresh the client-side string tables from host ``status``
        replies (first live host's order wins, later hosts append what
        it had not seen).  Called at construction; call again after
        out-of-band server-side changes."""
        for status in self._statuses():
            for label in status.get("labels", []):
                self._label_order.setdefault(str(label), None)
                self._app_order.setdefault(app_of_label(str(label)), None)
            for metric in status.get("metrics", []):
                self._metric_order.setdefault(str(metric), None)
            for interval in status.get("intervals", []):
                self._interval_order.setdefault(
                    (float(interval[0]), float(interval[1])), None
                )
        self._bump()

    def labels(self) -> List[str]:
        return list(self._label_order)

    def app_names(self) -> List[str]:
        return list(self._app_order)

    def metrics(self) -> List[str]:
        return list(self._metric_order)

    def intervals(self) -> List[Tuple[float, float]]:
        return list(self._interval_order)

    # -- bulk reads / analysis ----------------------------------------------
    def entries(self) -> Iterator[Tuple[Fingerprint, List[str]]]:
        """All (key, labels) pairs, shard-major order.  Raises
        :class:`RemoteDegradedError` when a shard has no reachable
        host — a partial dump would silently look complete."""
        for _, fp, counts in self._entry_records():
            yield fp, list(counts)

    def _entry_records(
        self,
    ) -> Iterator[Tuple[int, Fingerprint, Dict[str, int]]]:
        for shard in range(self.n_shards):
            deadline = time.monotonic() + self.deadline
            reply, reason = self._call_resilient(
                self._shard_hosts[shard],
                {"op": "entries", "shard": shard},
                deadline, 0,
            )
            if reply is None:
                raise RemoteDegradedError(
                    f"shard {shard} unreachable: {reason}"
                )
            for record in reply.get("entries", []):
                fp = fingerprint_from_record(record)
                counts = {
                    str(k): int(v)
                    for k, v in record.get("labels", {}).items()
                }
                yield shard, fp, counts

    def stats(self) -> DictionaryStats:
        n_keys = 0
        n_insertions = 0
        n_colliding = 0
        max_labels = 0
        for _, _, counts in self._entry_records():
            n_keys += 1
            n_insertions += sum(counts.values())
            max_labels = max(max_labels, len(counts))
            if len({app_of_label(l) for l in counts}) > 1:
                n_colliding += 1
        return DictionaryStats(
            n_keys=n_keys,
            n_insertions=n_insertions,
            n_labels=len(self._label_order),
            n_colliding_keys=n_colliding,
            max_labels_per_key=max_labels,
        )

    def collisions(self) -> List[Tuple[Fingerprint, List[str]]]:
        out = []
        for _, fp, counts in self._entry_records():
            labels = list(counts)
            if len({app_of_label(l) for l in labels}) > 1:
                out.append((fp, labels))
        return out

    def fingerprints_for(self, label_prefix: str) -> List[Fingerprint]:
        out = []
        for _, fp, counts in self._entry_records():
            for label in counts:
                if label == label_prefix \
                        or label.startswith(label_prefix + "_") \
                        or app_of_label(label) == label_prefix:
                    out.append(fp)
                    break
        return out

    def __repr__(self) -> str:
        hosts = ", ".join(str(h) for h in self.hosts)
        return (
            f"RemoteShardBackend(n_shards={self.n_shards}, hosts=[{hosts}])"
        )
