"""Per-shard Bloom filters: resolve negative lookups without hydration.

The paper's unknown-detection evaluation makes *misses* the dominant
case on open traffic — most probed fingerprints belong to applications
that were never learned.  Yet the columnar store historically paid its
full cost on exactly that traffic: the first batch read (and, for npz,
decompressed) every shard's columns just to discover that nothing
matches.  This module is the negative-lookup fast path:

- :func:`key_hashes` maps full fingerprint keys — the ``(metric_id,
  interval_id, node, value_bits)`` component arrays the rank-packed
  indexes already use — to one ``uint64`` hash per key, fully
  vectorized (a splitmix64-style finalizer folded over the components).
- :class:`KeyFilter` is a classic Bloom filter over those hashes:
  ``bits_per_key`` bits per key (default 10 ≈ 1% false positives),
  ``k ≈ bits_per_key·ln 2`` probes per query via double hashing, all
  NumPy gathers — a 1k-probe batch tests in microseconds.
- One filter is persisted **per shard** beside the shard's column file
  (``shard-NN.filter``, generation-suffixed like the shards, checksummed
  in the manifest) and rebuilt whenever compaction or resharding
  rewrites the base, under the same atomic manifest replace.
- :func:`pack_hash_index` / :func:`unpack_hash_index` persist the same
  per-shard hashes **sorted**, with the row permutation, as a second
  sidecar (``shard-NN.hashidx``): the exact-membership table behind the
  Bloom filter.  A probe that survives the filter resolves by
  ``searchsorted`` into this table — the hot-metadata / cold-bulk-bytes
  split — so a cold unknown-heavy batch never hashes or sorts the base
  and touches column bytes only for genuine hits.

Soundness: a Bloom filter has **no false negatives** — every inserted
key passes ``might_contain`` forever — so a "definitely absent" answer
is exact and the store can return a miss without touching any column
file.  False positives merely fall through to the exact index.  Keys
added after the last compaction live in the delta-log overlay and are
checked *before* the filter, so learn-while-serving never yields a
false negative either (``tests/test_engine_properties.py`` pins both
properties).
"""

from __future__ import annotations

import struct

import numpy as np

#: Bits per key of a freshly built filter (~1% false-positive rate).
DEFAULT_BITS_PER_KEY = 10

FILTER_MAGIC = b"EFDBLOOM"
_FILTER_VERSION = 1
#: magic + u32 version + u32 n_hashes + u64 n_keys + u64 seed + u64 n_words
_HEADER = struct.Struct("<8sIIQQQ")

HASH_INDEX_MAGIC = b"EFDHIDX1"
_HASH_INDEX_VERSION = 1
#: magic + u32 version + u32 reserved + u64 n_keys
_HIDX_HEADER = struct.Struct("<8sIIQ")

_C1 = np.uint64(0x9E3779B97F4A7C15)
_C2 = np.uint64(0xBF58476D1CE4E5B9)
_C3 = np.uint64(0x94D049BB133111EB)
_ONE = np.uint64(1)


def filter_filename(index: int, generation: int = 0) -> str:
    """Sidecar filter name for shard ``index`` (generation-suffixed).

    Mirrors the shard-file naming contract: a compaction or reshard
    writes the rebuilt filters under *new* names and commits them with
    the same atomic manifest replace as the shards they front.
    """
    if generation:
        return f"shard-{index:02d}.g{generation}.filter"
    return f"shard-{index:02d}.filter"


def hash_index_filename(index: int, generation: int = 0) -> str:
    """Hash-index sidecar name for shard ``index`` (generation-suffixed)."""
    if generation:
        return f"shard-{index:02d}.g{generation}.hashidx"
    return f"shard-{index:02d}.hashidx"


def pack_hash_index(hashes: np.ndarray) -> bytes:
    """Serialize a shard's per-row key hashes as a sorted hash index.

    The exact-membership companion to the Bloom filter: the shard's
    full-key hashes sorted once *at save time*, followed by the u32 row
    permutation that maps each sorted slot back to its column row.  A
    cold probe that survives the Bloom filter then resolves by
    ``searchsorted`` into this table — no per-row hashing, no sort, and
    (for a genuine miss) no column bytes at all — instead of hashing
    and sorting the whole base on first scan.
    """
    hashes = np.asarray(hashes, dtype=np.uint64)
    n = len(hashes)
    if n >= 2 ** 32:
        raise ValueError(
            f"hash index supports at most 2**32-1 keys per shard, got {n}"
        )
    order = np.argsort(hashes, kind="stable")
    header = _HIDX_HEADER.pack(HASH_INDEX_MAGIC, _HASH_INDEX_VERSION, 0, n)
    return (
        header
        + hashes[order].astype("<u8", copy=False).tobytes()
        + order.astype("<u4").tobytes()
    )


def unpack_hash_index(data: bytes, name: str = "hash index"):
    """Decode ``(sorted hashes, row order)``; damage raises by name."""
    if len(data) < _HIDX_HEADER.size:
        raise ValueError(
            f"hash-index file {name!r} is corrupt: truncated header "
            f"({len(data)} bytes)"
        )
    magic, version, _reserved, n_keys = _HIDX_HEADER.unpack(
        data[:_HIDX_HEADER.size]
    )
    if magic != HASH_INDEX_MAGIC:
        raise ValueError(
            f"hash-index file {name!r} is corrupt: bad magic {magic!r}"
        )
    if version != _HASH_INDEX_VERSION:
        raise ValueError(
            f"hash-index file {name!r} has unsupported version {version} "
            f"(expected {_HASH_INDEX_VERSION})"
        )
    expected = _HIDX_HEADER.size + n_keys * 12
    if len(data) != expected:
        raise ValueError(
            f"hash-index file {name!r} is corrupt: {len(data)} bytes but "
            f"the header implies {expected} (truncated?)"
        )
    sorted_hashes = np.frombuffer(
        data, dtype="<u8", offset=_HIDX_HEADER.size, count=n_keys
    ).astype(np.uint64, copy=False)
    order = np.frombuffer(
        data, dtype="<u4", offset=_HIDX_HEADER.size + n_keys * 8,
        count=n_keys,
    ).astype(np.int64)
    return sorted_hashes, order


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over uint64 (wrapping arithmetic)."""
    x = (x + _C1).astype(np.uint64, copy=False)
    x = (x ^ (x >> np.uint64(30))) * _C2
    x = (x ^ (x >> np.uint64(27))) * _C3
    return x ^ (x >> np.uint64(31))


def key_hashes(
    metric_id: np.ndarray,
    interval_id: np.ndarray,
    node: np.ndarray,
    value_bits: np.ndarray,
    seed: int = 0,
) -> np.ndarray:
    """One uint64 hash per full fingerprint key, vectorized.

    Components are the same int64 arrays the rank-packed full-key index
    consumes (``value_bits`` from
    :func:`repro.engine.columnar._value_bits`, ids from the manifest's
    interned tables), so a probe hashes identically to the stored key
    it targets.  Components are folded sequentially through the
    splitmix64 finalizer — one mix per component, no Python per-key
    work.
    """
    h = np.full(len(np.asarray(node)), np.uint64(seed), dtype=np.uint64)
    for component in (metric_id, interval_id, node, value_bits):
        comp = np.asarray(component, dtype=np.int64).view(np.uint64)
        h = _mix64(h ^ comp)
    return h


class KeyFilter:
    """Bloom filter over uint64 key hashes, NumPy end to end.

    ``m = bits_per_key · n`` bits (rounded up to whole words, min 64)
    and ``k = round(bits_per_key · ln 2)`` probes per key, derived by
    double hashing: probe ``j`` tests bit ``(h + j·h2) mod m`` where
    ``h2 = mix(h) | 1``.  Empty filters answer "absent" for everything.
    """

    __slots__ = ("words", "n_bits", "n_hashes", "n_keys", "seed")

    def __init__(self, words: np.ndarray, n_hashes: int, n_keys: int,
                 seed: int = 0):
        self.words = np.ascontiguousarray(words, dtype=np.uint64)
        self.n_bits = len(self.words) * 64
        self.n_hashes = int(n_hashes)
        self.n_keys = int(n_keys)
        self.seed = int(seed)

    @classmethod
    def build(cls, hashes: np.ndarray,
              bits_per_key: int = DEFAULT_BITS_PER_KEY,
              seed: int = 0) -> "KeyFilter":
        """Build a filter sized for ``len(hashes)`` keys."""
        hashes = np.asarray(hashes, dtype=np.uint64)
        n = len(hashes)
        bits_per_key = max(1, int(bits_per_key))
        n_words = max(1, -(-(n * bits_per_key) // 64))
        n_hashes = min(16, max(1, round(bits_per_key * 0.6931)))
        words = np.zeros(n_words, dtype=np.uint64)
        if n:
            m = np.uint64(n_words * 64)
            h2 = _mix64(hashes) | _ONE
            for j in range(n_hashes):
                idx = (hashes + np.uint64(j) * h2) % m
                np.bitwise_or.at(
                    words,
                    (idx >> np.uint64(6)).astype(np.int64),
                    _ONE << (idx & np.uint64(63)),
                )
        return cls(words, n_hashes, n, seed=seed)

    def insert(self, hashes: np.ndarray) -> None:
        """Add keys to a live filter (the remote client's mirror keeps
        tracking writes made through it without a refetch).

        Inserting can only set bits, so the no-false-negative guarantee
        is preserved and existing "might contain" answers never flip to
        "absent".  The words array is copied on first insert when it is
        a read-only ``from_bytes`` view.
        """
        hashes = np.asarray(hashes, dtype=np.uint64)
        if not len(hashes):
            return
        if not self.words.flags.writeable:
            self.words = self.words.copy()
        m = np.uint64(self.n_bits)
        h2 = _mix64(hashes) | _ONE
        for j in range(self.n_hashes):
            idx = (hashes + np.uint64(j) * h2) % m
            np.bitwise_or.at(
                self.words,
                (idx >> np.uint64(6)).astype(np.int64),
                _ONE << (idx & np.uint64(63)),
            )
        self.n_keys += len(hashes)

    def might_contain(self, hashes: np.ndarray) -> np.ndarray:
        """Boolean per hash: False is exact (never a false negative)."""
        hashes = np.asarray(hashes, dtype=np.uint64)
        if self.n_keys == 0:
            return np.zeros(len(hashes), dtype=bool)
        out = np.ones(len(hashes), dtype=bool)
        m = np.uint64(self.n_bits)
        h2 = _mix64(hashes) | _ONE
        for j in range(self.n_hashes):
            idx = (hashes + np.uint64(j) * h2) % m
            bit = (
                self.words[(idx >> np.uint64(6)).astype(np.int64)]
                >> (idx & np.uint64(63))
            ) & _ONE
            out &= bit != 0
        return out

    @property
    def fp_bound(self) -> float:
        """Expected false-positive probability at the built occupancy."""
        if self.n_keys == 0 or self.n_bits == 0:
            return 0.0
        return float(
            (1.0 - np.exp(-self.n_hashes * self.n_keys / self.n_bits))
            ** self.n_hashes
        )

    # -- serialization -------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Header + raw little-endian filter words."""
        header = _HEADER.pack(
            FILTER_MAGIC, _FILTER_VERSION, self.n_hashes,
            self.n_keys, self.seed, len(self.words),
        )
        return header + self.words.astype("<u8", copy=False).tobytes()

    @classmethod
    def from_bytes(cls, data: bytes, name: str = "filter") -> "KeyFilter":
        """Decode a persisted filter; structural damage raises by name."""
        if len(data) < _HEADER.size:
            raise ValueError(
                f"filter file {name!r} is corrupt: truncated header "
                f"({len(data)} bytes)"
            )
        magic, version, n_hashes, n_keys, seed, n_words = _HEADER.unpack(
            data[:_HEADER.size]
        )
        if magic != FILTER_MAGIC:
            raise ValueError(
                f"filter file {name!r} is corrupt: bad magic {magic!r}"
            )
        if version != _FILTER_VERSION:
            raise ValueError(
                f"filter file {name!r} has unsupported version {version} "
                f"(expected {_FILTER_VERSION})"
            )
        expected = _HEADER.size + n_words * 8
        if len(data) != expected:
            raise ValueError(
                f"filter file {name!r} is corrupt: {len(data)} bytes but "
                f"the header implies {expected} (truncated?)"
            )
        words = np.frombuffer(
            data, dtype="<u8", offset=_HEADER.size
        ).astype(np.uint64, copy=False)
        return cls(words, n_hashes, n_keys, seed=seed)

    def __repr__(self) -> str:
        return (
            f"KeyFilter(n_keys={self.n_keys}, n_bits={self.n_bits}, "
            f"n_hashes={self.n_hashes}, fp_bound={self.fp_bound:.4f})"
        )
