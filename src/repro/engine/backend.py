"""The storage contract every EFD backend satisfies.

Three stores answer recognition traffic — the paper-faithful flat
:class:`~repro.core.dictionary.ExecutionFingerprintDictionary`, the
hash-partitioned :class:`~repro.engine.sharded.ShardedDictionary`, and
the lazily-hydrating :class:`~repro.engine.columnar.ColumnarDictionary`.
Historically each re-implemented the same read/write surface by
convention; :class:`DictionaryBackend` makes that surface a formal,
runtime-checkable :class:`typing.Protocol`, so

- the batch engine, the streaming sessions, the maintenance and anomaly
  tools, and the serving layer can be written (and type-checked)
  against one contract instead of three conventions;
- ``merge`` works across backend types — a flat store folds into a
  columnar one, a sharded store into a flat one — because every side
  speaks ``labels()`` / ``entries()`` / ``lookup_counts()`` /
  ``add_repeated()`` rather than reaching into a sibling's internals;
- conformance is enforced by ``tests/test_backend_protocol.py``, which
  isinstance-checks all three classes against the protocol and
  cross-merges every backend pair.

The contract, grouped:

========== =============================================================
writing    ``add``, ``add_repeated``, ``add_many``, ``register_label``,
           ``merge``
reading    ``lookup``, ``lookup_counts``, ``lookup_many``,
           ``__contains__``, ``__len__``, ``entries``
tables     ``labels``, ``app_names``, ``metrics``, ``intervals``
           (the string tables, all in global first-seen order — the
           orders that drive tie-breaking and Table-4 listings)
analysis   ``stats``, ``collisions``, ``fingerprints_for``
caching    ``version`` — a monotonic mutation counter; caches (the
           batch engine's lookup index) key on it to detect staleness
========== =============================================================

``lookup_many`` is the batch-session entry point: it returns one label
list per fingerprint, or ``None`` when this backend has no batch path
that currently reflects its live state (callers fall back to per-key
``lookup``).  The flat and sharded stores always answer; the columnar
store answers from its vectorized index unless its base columns were
mutated behind the delta-log's back (see :mod:`repro.engine.deltalog`).
A backend may resolve misses early — the columnar store consults
per-shard negative-lookup filters (:mod:`repro.engine.keyfilter`)
before hydrating any column file — as long as the answers stay
element-wise identical to per-key ``lookup``.

A fourth implementation lives out of process:
:class:`~repro.engine.remote.RemoteShardBackend` satisfies this same
protocol while its shards are served by remote hosts — ``lookup_many``
is a resilient scatter/gather, and the one documented contract
deviation is ``entries()`` yielding shard-major rather than global
insertion order (the global order lives client-side only for keys
written through that client).
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.dictionary import DictionaryStats
from repro.core.fingerprint import Fingerprint


@runtime_checkable
class DictionaryBackend(Protocol):
    """Read/write surface shared by every EFD storage backend.

    ``@runtime_checkable`` protocols verify method *presence*, not
    signatures — the semantic guarantees (first-seen orders, byte-equal
    observables across backends) are pinned by the property-test
    equivalence matrix, and conformance of the three shipped backends
    by ``tests/test_backend_protocol.py``.
    """

    # -- caching ------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic counter, advanced by every mutation."""
        ...

    # -- writing ------------------------------------------------------------
    def add(self, fingerprint: Fingerprint, label: str) -> None:
        """Insert one (fingerprint, label) observation."""
        ...

    def add_repeated(
        self, fingerprint: Fingerprint, label: str, count: int
    ) -> None:
        """Insert ``count`` repetitions of one observation in O(1)."""
        ...

    def add_many(
        self, fingerprints: Sequence[Optional[Fingerprint]], label: str
    ) -> int:
        """Insert all non-``None`` fingerprints; returns how many."""
        ...

    def register_label(self, label: str) -> None:
        """Record ``label`` in the first-seen orders without an insertion."""
        ...

    def merge(self, other: "DictionaryBackend") -> None:
        """Fold another backend's observations into this one.

        ``other`` may be any backend type; implementations must consume
        it through this protocol (``labels``/``entries``/
        ``lookup_counts``), never through another class's internals.
        """
        ...

    # -- reading ------------------------------------------------------------
    def __len__(self) -> int: ...

    def __contains__(self, fingerprint: Fingerprint) -> bool: ...

    def lookup(self, fingerprint: Optional[Fingerprint]) -> List[str]:
        """Labels linked to ``fingerprint``, first-seen order; [] if absent."""
        ...

    def lookup_counts(self, fingerprint: Optional[Fingerprint]) -> Dict[str, int]:
        """Labels with repetition counts; {} if absent."""
        ...

    def lookup_many(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Optional[List[List[str]]]:
        """One label list per fingerprint, resolved as a batch.

        ``None`` means this backend has no batch path reflecting its
        live state; callers fall back to per-key :meth:`lookup`.
        """
        ...

    def entries(self) -> Iterator[Tuple[Fingerprint, List[str]]]:
        """All (key, labels) pairs in global insertion order."""
        ...

    # -- string tables (global first-seen order) -----------------------------
    def labels(self) -> List[str]: ...

    def app_names(self) -> List[str]: ...

    def metrics(self) -> List[str]: ...

    def intervals(self) -> List[Tuple[float, float]]: ...

    # -- analysis ------------------------------------------------------------
    def stats(self) -> DictionaryStats: ...

    def collisions(self) -> List[Tuple[Fingerprint, List[str]]]: ...

    def fingerprints_for(self, label_prefix: str) -> List[Fingerprint]: ...


def merge_into(target: DictionaryBackend, source: DictionaryBackend) -> int:
    """Generic cross-backend merge: fold ``source`` into ``target``.

    The one canonical merge routine every backend's ``merge`` delegates
    to.  Registers ``source``'s label order first (string-table order is
    part of the contract — tie-breaking depends on it), then replays
    every (key, label, count) through ``target.add_repeated`` in
    ``source``'s global key order.  Returns the number of (key, label)
    entries folded.
    """
    for label in source.labels():
        target.register_label(label)
    n = 0
    for fp, _ in source.entries():
        for label, count in source.lookup_counts(fp).items():
            target.add_repeated(fp, label, count)
            n += 1
    return n
