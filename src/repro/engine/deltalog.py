"""Write-ahead mutation delta-log for columnar EFD directories.

The columnar backend's whole value is its vectorized lookup index built
from immutable column arrays — which historically made it read-mostly:
the first ``add`` demoted the store to the generic Python dict index
until someone re-saved the directory.  The delta-log makes writes
first-class instead:

- every mutation (``add`` / ``add_repeated`` / ``register_label``)
  **appends** one JSONL record to ``delta-log.jsonl`` inside the
  directory (the write-ahead half) and folds into a small in-memory
  **overlay** dictionary (the serving half);
- reads answer from ``base ∪ overlay``: the base column caches and the
  rank-packed ``searchsorted`` indexes stay hot forever, and the batch
  engine patches in the overlay's few keys per batch — a trickle of new
  learnings never costs the vectorized path.  Overlay keys are checked
  *before* the per-shard negative-lookup filters, so a key learned
  after the last compaction can never be filtered out as absent;
- **compaction** folds the log back into the base shard files —
  ``shard-NN.npz`` or ``shard-NN.mmap``, whichever storage the
  directory uses, with the filter sidecars rebuilt alongside — and
  truncates it.  It triggers on a pending-record threshold
  (:attr:`DeltaLog.max_pending`), explicitly via ``efd engine compact``,
  or at serve shutdown (``ServeConfig.compact_on_close``).

Crash safety is generation-based: the columnar manifest carries a
``delta_generation`` counter and every log segment opens with a header
record naming the generation it was written against.  Compaction writes
the folded base with the generation advanced *before* removing the log,
so a crash between the two leaves a segment whose generation no longer
matches — recognized as already-folded on the next load and discarded
instead of double-applied.  A torn final record (crash mid-append) is
dropped; any other malformed record is corruption and raises
:class:`ValueError` naming the file.

Layout of one record (one JSON object per line)::

    {"op": "open", "generation": 3}                   # segment header
    {"op": "label", "label": "sp_X"}                  # order-only registration
    {"op": "add", "metric": "nr_mapped_vmstat",
     "node": 2, "interval": [60.0, 120.0],
     "value": 5300.0, "label": "sp_X", "count": 1}    # one observation
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator, List, Optional, Tuple

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import (
    fingerprint_from_record,
    fingerprint_to_record,
)

#: File name of the delta-log segment inside a columnar directory.
SEGMENT_NAME = "delta-log.jsonl"

#: Pending-record count at which the owning store auto-compacts.
DEFAULT_MAX_PENDING = 100_000


class PendingDeltaError(ValueError):
    """An operation refused because unfolded delta-log records exist.

    Raised by :func:`repro.engine.columnar.expand_shards` (and the
    ``efd engine expand`` CLI) when a columnar directory still holds a
    pending ``delta-log.jsonl``: expanding only the base columns would
    silently drop every append since the last compaction.  Compact
    first (``efd engine compact --dir DIR``), then expand.
    """

    def __init__(self, directory: str, n_records: int):
        self.directory = directory
        self.n_records = n_records
        super().__init__(
            f"columnar EFD at {directory!r} has {n_records} unfolded "
            f"delta-log record(s) in {SEGMENT_NAME!r}; compact the "
            f"directory first (efd engine compact) or the pending "
            f"appends would be dropped"
        )


class SegmentReadError(OSError):
    """A delta-log segment *exists* but cannot be read.

    Distinct from the two states readers already handle: "no segment"
    (a clean directory — :func:`pending_records` returns 0) and "corrupt
    segment" (parseable bytes that are not valid records —
    :class:`ValueError` naming the file).  This one is an I/O failure on
    a present file — permissions stripped, the path occupied by a
    directory, media errors — where silently answering 0 would let a
    replica under-report its position or a compaction drop durable
    records.  Callers must surface it, not swallow it.
    """

    def __init__(self, path: str, cause: BaseException):
        self.path = path
        super().__init__(
            f"delta-log {os.path.basename(path)!r} exists but cannot be "
            f"read: {cause}"
        )


def segment_path(directory: str) -> str:
    """Path of the delta-log segment inside ``directory``."""
    return os.path.join(directory, SEGMENT_NAME)


def pending_records(directory: str, generation: int = 0) -> int:
    """Number of unfolded mutation records in ``directory``'s segment.

    0 when no segment exists, when it is empty, or when its header names
    a different generation (a stale segment already folded into the
    base — see the module docstring's crash-safety note).  A segment
    that is present but unreadable raises :class:`SegmentReadError`
    rather than masquerading as clean.
    """
    path = segment_path(directory)
    if not os.path.exists(path):
        return 0
    n = 0
    try:
        for record in _read_records(path):
            if record.get("op") == "open":
                if int(record.get("generation", 0)) != generation:
                    return 0
                continue
            n += 1
    except ValueError:
        # A corrupt segment still *pends* — the load path will raise
        # the detailed error; callers here only need "not clean".
        return max(n, 1)
    return n


def _read_records(path: str) -> Iterator[dict]:
    """Parsed records of one segment; a torn final line is dropped.

    A record that fails to parse mid-file — or a final one that was
    properly newline-terminated — is corruption, raised as
    :class:`ValueError` naming the file.  Only an unterminated final
    fragment (the artifact of a crash mid-append) is silently ignored.
    An I/O failure on a file that *exists* (permissions, a directory
    squatting on the path) is a :class:`SegmentReadError` — callers
    that tolerate a missing segment must not mistake unreadable for
    absent.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except FileNotFoundError:
        raise  # absent is a state callers handle; unreadable is not
    except OSError as exc:
        raise SegmentReadError(path, exc) from exc
    lines = text.split("\n")
    terminated = text.endswith("\n")
    if terminated:
        lines = lines[:-1]  # trailing empty piece after the final \n
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        last = i == len(lines) - 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if last and not terminated:
                return  # torn tail: crash mid-append, not corruption
            raise ValueError(
                f"delta-log {os.path.basename(path)!r} is corrupt at "
                f"line {i + 1}: {exc}"
            ) from exc
        if not isinstance(record, dict) or "op" not in record:
            raise ValueError(
                f"delta-log {os.path.basename(path)!r} is corrupt at "
                f"line {i + 1}: not a record object"
            )
        yield record


def _fingerprint_of(record: dict, path: str, line_hint: str) -> Fingerprint:
    try:
        return fingerprint_from_record(record)
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ValueError(
            f"delta-log {os.path.basename(path)!r} is corrupt "
            f"({line_hint}): bad add record: {exc}"
        ) from exc


class DeltaLog:
    """One columnar directory's mutation log: JSONL segment + overlay.

    The overlay is a plain flat
    :class:`~repro.core.dictionary.ExecutionFingerprintDictionary`
    holding exactly the observations appended since the last compaction
    — *incremental* counts, not merged state; readers combine it with
    the base columns.  The segment file is opened lazily on the first
    append (so a read-only deployment never needs write access) and
    every append is flushed, so the log is as durable as the filesystem
    allows without fsync.
    """

    __slots__ = ("directory", "path", "generation", "max_pending",
                 "overlay", "n_records", "_fh")

    def __init__(self, directory: str, generation: int = 0,
                 max_pending: int = DEFAULT_MAX_PENDING):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.directory = directory
        self.path = segment_path(directory)
        self.generation = int(generation)
        self.max_pending = int(max_pending)
        self.overlay = ExecutionFingerprintDictionary()
        self.n_records = 0
        self._fh: Optional[IO[str]] = None

    # -- replay ---------------------------------------------------------------
    def replay(self) -> List[Tuple[Fingerprint, str, int]]:
        """Load the on-disk segment into the overlay (called at open).

        Returns the (fingerprint, label, count) adds in append order so
        the owning store can refresh its own bookkeeping (new-key
        tracking, global orders).  A segment whose header names a
        different generation was already folded by a compaction that
        crashed before removing it: it is deleted and ignored.
        """
        if not os.path.exists(self.path):
            return []
        applied: List[Tuple[Fingerprint, str, int]] = []
        records = []
        stale = False
        for record in _read_records(self.path):
            if record.get("op") == "open":
                if int(record.get("generation", 0)) != self.generation:
                    stale = True
                    break
                continue
            records.append(record)
        if stale:
            os.remove(self.path)
            return []
        for i, record in enumerate(records):
            op = record["op"]
            if op == "label":
                self.overlay.register_label(str(record["label"]))
            elif op == "add":
                fp = _fingerprint_of(record, self.path, f"record {i + 1}")
                count = int(record.get("count", 1))
                label = str(record["label"])
                self.overlay.add_repeated(fp, label, count)
                applied.append((fp, label, count))
            else:
                raise ValueError(
                    f"delta-log {SEGMENT_NAME!r} is corrupt: unknown op "
                    f"{op!r}"
                )
            self.n_records += 1
        return applied

    # -- appending ------------------------------------------------------------
    def _writer(self) -> IO[str]:
        if self._fh is None:
            fresh = not os.path.isfile(self.path) or \
                os.path.getsize(self.path) == 0
            self._fh = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._fh.write(json.dumps(
                    {"op": "open", "generation": self.generation}
                ) + "\n")
                self._fh.flush()
        return self._fh

    def append_add(self, fingerprint: Fingerprint, label: str,
                   count: int) -> None:
        """Log + overlay one ``add_repeated(fingerprint, label, count)``."""
        # Validate before touching the segment: a rejected observation
        # must not leave a record behind (same checks the overlay's
        # add_repeated would raise, pulled ahead of the write).
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not label:
            raise ValueError("label must be non-empty")
        fh = self._writer()
        record = {"op": "add"}
        record.update(fingerprint_to_record(fingerprint))
        record["label"] = label
        record["count"] = int(count)
        fh.write(json.dumps(record) + "\n")
        fh.flush()
        self.overlay.add_repeated(fingerprint, label, count)
        self.n_records += 1

    def append_label(self, label: str) -> None:
        """Log + overlay one order-only ``register_label(label)``."""
        if not label:
            raise ValueError("label must be non-empty")
        fh = self._writer()
        fh.write(json.dumps({"op": "label", "label": label}) + "\n")
        fh.flush()
        self.overlay.register_label(label)
        self.n_records += 1

    # -- state ----------------------------------------------------------------
    @property
    def pending(self) -> bool:
        """True while unfolded records exist."""
        return self.n_records > 0

    @property
    def over_threshold(self) -> bool:
        """True when the pending count warrants an auto-compaction."""
        return self.n_records >= self.max_pending

    def clear(self) -> None:
        """Drop the segment and reset the overlay (post-compaction)."""
        self.close()
        if os.path.isfile(self.path):
            os.remove(self.path)
        self.overlay = ExecutionFingerprintDictionary()
        self.n_records = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return (
            f"DeltaLog(directory={self.directory!r}, "
            f"generation={self.generation}, pending={self.n_records})"
        )
