"""Delta-log shipping: leader/replica replication for columnar EFDs.

The ROADMAP north-star is serving verdicts to millions of concurrent
sessions — a fleet of read replicas behind cheap L4 load balancing, not
one writer process.  PR 5's generation-tagged ``delta-log.jsonl``
segments plus the atomic manifest replace are already a crash-safe
replication unit; this module puts them on the wire:

- :class:`ReplicationPublisher` — the leader endpoint.  Each follower
  connection gets its own asyncio task that *tails the on-disk state*:
  it re-reads the manifest generation every poll, streams newly
  appended delta-log records as ``records`` frames, and ships a full
  base snapshot (manifest + every referenced column/filter file,
  verbatim bytes) whenever the follower's generation no longer matches
  — i.e. after every compaction.  Backpressure rides TCP flow control
  exactly like :class:`~repro.serve.net.NetListener`: the handler
  awaits ``writer.drain()`` after every frame, so a slow follower
  stalls its own stream and nobody else's.
- :class:`ReplicationFollower` — dials the leader, reports its on-disk
  position ``(generation, applied records)``, and applies what arrives:
  record frames are replayed through the attached
  :class:`~repro.engine.columnar.ColumnarDictionary` (which appends
  them to the replica's *own* delta-log — making every replica a valid
  replication source in turn), snapshots are written to disk unreferenced
  and committed by one atomic manifest replace, then the store is
  reloaded in place.  Either way the replica's directory is always an
  exact old-or-new generation, never mixed state.
- :func:`elect_and_promote` — failover: query every candidate's
  ``status``, promote the one with the highest ``(generation,
  records)`` position (it folds its pending log, advancing the
  generation — a fence no stale leader can cross), and point the rest
  at the winner with ``follow`` control frames.

Wire protocol (spec in ``docs/serving.md``): every frame is a u32
big-endian length prefix followed by the payload.  Control and stream
frames are JSON objects; the only binary frames are the snapshot file
bodies, which arrive between a ``snapshot`` header (naming the files in
order) and the ``snapshot-commit`` trailer.

Frames from follower to leader (one per connection, then the leader
talks)::

    {"op": "subscribe", "generation": G, "applied": N}   # start stream
    {"op": "status"}                                     # position query
    {"op": "promote"}                                    # failover control
    {"op": "follow", "target": "HOST:PORT"}              # re-point replica

Frames from leader to follower::

    {"op": "snapshot", "generation": G, "manifest": {...},
     "files": ["shard-00.g3.npz", ...]}                  # then N binary
                                                         # frames, then:
    {"op": "snapshot-commit", "generation": G}
    {"op": "records", "generation": G, "start": S,
     "total": T, "records": [...]}                       # delta-log slice
    {"op": "sync", "generation": G, "total": T}          # idle heartbeat

Duplicate delivery is idempotent (records carry absolute segment
indexes; a replica skips what it already applied), reconnection resumes
from the follower's on-disk position, and a torn frame or a leader
killed mid-snapshot leaves the replica serving its previous generation
intact — the fault-injection sweep in ``tests/test_replicate.py`` holds
the line on all of it.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import struct
import threading
from typing import Awaitable, Callable, Dict, List, Optional, Set, Tuple

from repro._util import framing
from repro._util.backoff import BackoffPolicy
from repro._util.framing import MAX_FRAME_BYTES, FramingError, encode_frame
from repro.core.serialization import fingerprint_from_record
from repro.engine.columnar import (
    _MANIFEST_NAME,
    _manifest_files,
    _read_manifest,
    _remove_superseded_files,
)
from repro.engine.deltalog import DeltaLog, pending_records, segment_path
from repro.engine.stats import EngineStats

__all__ = [
    "MAX_FRAME_BYTES",
    "ReplicationError",
    "ReplicationFollower",
    "ReplicationPublisher",
    "elect_and_promote",
    "local_position",
    "parse_replica_endpoint",
    "replication_request",
]

#: u32 big-endian frame length prefix, kept for byte-count accounting
#: (the codec itself lives in :mod:`repro._util.framing`).
_LEN = struct.Struct(">I")

#: Pending threshold forced onto replica stores: a replica must never
#: self-compact (that would advance its generation past the leader's),
#: so its overlay threshold is effectively infinite.
_REPLICA_MAX_PENDING = 1 << 62


class ReplicationError(FramingError):
    """A replication peer sent something the protocol cannot accept
    (torn frame, oversized frame, mis-sequenced records, bad commit).
    Both ends treat it as a connection loss: drop the link and let the
    follower's reconnect-from-disk-position logic recover."""


# ---------------------------------------------------------------------------
# Frame codec — thin wrappers over repro._util.framing that raise the
# protocol-specific ReplicationError so existing except clauses hold.
# ---------------------------------------------------------------------------

async def _read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
    """One frame off the wire; ``None`` on clean EOF between frames."""
    return await framing.read_frame(reader, error=ReplicationError)


def _parse_json(payload: bytes, *, require_op: bool = True) -> dict:
    """Decode a JSON control frame (op object unless ``require_op=False``)."""
    return framing.parse_json(
        payload, require_op=require_op, error=ReplicationError
    )


async def _send_json(writer: asyncio.StreamWriter, obj: dict) -> int:
    """Write one JSON frame and drain (backpressure); returns wire bytes."""
    return await framing.send_json(writer, obj)


# ---------------------------------------------------------------------------
# Positions and endpoints
# ---------------------------------------------------------------------------

def local_position(directory: str) -> Tuple[int, int]:
    """A columnar directory's replication position on disk.

    ``(delta generation, records applied at that generation)`` — the
    pair a follower reports at subscribe time and ``status`` reports to
    an elector.  ``(-1, 0)`` for a directory with no manifest yet (a
    bootstrapping replica, which any generation mismatch resolves via a
    full snapshot).  An unreadable segment raises
    :class:`~repro.engine.deltalog.SegmentReadError` — a replica must
    not silently report a shorter position than it durably holds.
    """
    try:
        manifest = _read_manifest(directory)
    except FileNotFoundError:
        return -1, 0
    generation = int(manifest.get("delta_generation", 0))
    return generation, pending_records(directory, generation)


def parse_replica_endpoint(value: str) -> Dict[str, object]:
    """``HOST:PORT`` / ``:PORT`` / ``unix:PATH`` -> connect kwargs."""
    if value.startswith("unix:"):
        path = value[len("unix:"):]
        if not path:
            raise ValueError(f"invalid replication endpoint {value!r}")
        return {"uds": path}
    host, sep, port = value.rpartition(":")
    if not sep:
        host = ""
    try:
        return {"host": host or "127.0.0.1", "port": int(port)}
    except ValueError:
        raise ValueError(f"invalid replication endpoint {value!r}")


# ---------------------------------------------------------------------------
# Leader side
# ---------------------------------------------------------------------------

class _SegmentCursor:
    """Incremental reader over a live ``delta-log.jsonl`` (leader side).

    Tracks a byte offset into the segment so each poll parses only what
    was appended since the last one, carrying an unterminated final
    line until its newline arrives (appends are line-atomic but reads
    are not).  Detects the segment being replaced under it (compaction:
    inode change) and a header naming a different generation; both mean
    the caller must re-read the manifest — signalled by ``poll()``
    returning ``None``.
    """

    def __init__(self, directory: str, generation: int):
        self.path = segment_path(directory)
        self.generation = int(generation)
        self.count = 0            # mutation records parsed so far
        self._offset = 0
        self._buffer = b""
        self._ident: Optional[Tuple[int, int]] = None

    def poll(self) -> Optional[List[dict]]:
        """Mutation records appended since the last poll (maybe empty);
        ``None`` when the segment no longer belongs to this generation."""
        try:
            st = os.stat(self.path)
        except OSError:
            # No segment: nothing pending (or compaction mid-swap; the
            # manifest re-read next loop sorts it out).
            return []
        ident = (st.st_ino, st.st_dev)
        if self._ident is not None and ident != self._ident:
            return None  # replaced under us — re-resolve the generation
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
        self._ident = ident
        self._offset += len(chunk)
        data = self._buffer + chunk
        lines = data.split(b"\n")
        self._buffer = lines.pop()  # unterminated tail: not yet committed
        fresh: List[dict] = []
        for line in lines:
            if not line.strip():
                continue
            record = json.loads(line)  # leader's own log: corrupt -> raise
            if record.get("op") == "open":
                if int(record.get("generation", 0)) != self.generation:
                    return None
                continue
            fresh.append(record)
        self.count += len(fresh)
        return fresh


class ReplicationPublisher:
    """Leader endpoint: stream delta-log records and base swaps.

    Publishes the state of one *columnar* directory; the process that
    owns it keeps writing through its normal
    :class:`~repro.engine.columnar.ColumnarDictionary` (appends land in
    the segment, compactions swap the manifest) and the publisher picks
    everything up from disk — no in-process coupling, so a replica that
    also publishes (for promotion) reuses this class unchanged.

    Parameters
    ----------
    directory:
        Columnar EFD directory to publish.
    host, port, uds:
        Endpoints, NetListener-style: ``port=0`` binds ephemeral (read
        :attr:`tcp_address` after :meth:`start`); TCP and UDS may both
        be served.
    stats:
        :class:`~repro.engine.stats.EngineStats` receiving the
        ``repl_*_shipped`` counters and the follower gauge.
    poll_interval, heartbeat:
        Seconds between idle segment polls, and between ``sync``
        heartbeat frames to an idle follower.
    role:
        ``"leader"`` or ``"replica"`` — reported in ``status`` replies
        (a publishing replica flips to ``"leader"`` on promotion).
    on_promote, on_follow:
        Async callbacks backing the ``promote`` / ``follow`` control
        ops; ``None`` (a plain leader) answers them with an error.
    """

    def __init__(
        self,
        directory: str,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        uds: Optional[str] = None,
        stats: Optional[EngineStats] = None,
        poll_interval: float = 0.02,
        heartbeat: float = 0.5,
        role: str = "leader",
        on_promote: Optional[Callable[[], Awaitable[dict]]] = None,
        on_follow: Optional[Callable[[dict], Awaitable[dict]]] = None,
    ):
        if port is None and uds is None:
            raise ValueError(
                "ReplicationPublisher needs a TCP port and/or a UDS path"
            )
        manifest = _read_manifest(directory)
        if manifest.get("layout") != "columnar":
            raise ValueError(
                f"replication requires a columnar directory, got "
                f"layout={manifest.get('layout')!r} at {directory!r}"
            )
        self.directory = directory
        self.host = host
        self.port = port
        self.uds_path = uds
        self.stats = stats if stats is not None else EngineStats()
        self.poll_interval = poll_interval
        self.heartbeat = heartbeat
        self.role = role
        self.on_promote = on_promote
        self.on_follow = on_follow
        self.tcp_address: Optional[Tuple[str, int]] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._closing = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "ReplicationPublisher":
        """Bind every configured endpoint and begin accepting followers."""
        if self._servers:
            raise RuntimeError("publisher already started")
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port
            )
            self.tcp_address = server.sockets[0].getsockname()[:2]
            self._servers.append(server)
        if self.uds_path is not None:
            server = await asyncio.start_unix_server(
                self._handle, path=self.uds_path
            )
            self._servers.append(server)
        return self

    async def __aenter__(self) -> "ReplicationPublisher":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def endpoints(self) -> List[str]:
        """Human-readable bound endpoints (``tcp://h:p``, ``unix://path``)."""
        out = []
        if self.tcp_address is not None:
            out.append(f"tcp://{self.tcp_address[0]}:{self.tcp_address[1]}")
        if self.uds_path is not None:
            out.append(f"unix://{self.uds_path}")
        return out

    @property
    def n_followers(self) -> int:
        """Follower connections currently streaming."""
        return len(self._conn_tasks)

    async def close(self) -> None:
        """Stop accepting and cut every follower stream."""
        self._closing = True
        for server in self._servers:
            server.close()
        tasks = list(self._conn_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        self._servers = []
        if self.uds_path is not None and os.path.exists(self.uds_path):
            try:
                os.unlink(self.uds_path)
            except OSError:
                pass

    # -- connection handling -------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        follower = False
        try:
            if self._closing:
                return
            payload = await _read_frame(reader)
            if payload is None:
                return
            msg = _parse_json(payload)
            op = msg.get("op")
            if op == "subscribe":
                follower = True
                self.stats.record_follower_open()
                await self._stream(
                    writer,
                    int(msg.get("generation", -1)),
                    int(msg.get("applied", 0)),
                )
            elif op == "status":
                await _send_json(writer, self.status())
            elif op == "promote":
                if self.on_promote is None:
                    reply = {"error": f"{self.role} cannot be promoted"}
                else:
                    reply = await self.on_promote()
                await _send_json(writer, reply)
            elif op == "follow":
                if self.on_follow is None:
                    reply = {"error": f"{self.role} cannot re-follow"}
                else:
                    reply = await self.on_follow(msg)
                await _send_json(writer, reply)
            else:
                await _send_json(writer, {"error": f"unknown op {op!r}"})
        except asyncio.CancelledError:
            pass  # close(): just stop; the socket closes below
        except (ReplicationError, ConnectionError, OSError):
            pass  # follower vanished / compaction race — it will redial
        finally:
            self._conn_tasks.discard(task)
            if follower:
                self.stats.record_follower_close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def status(self) -> dict:
        """The ``status`` control reply: role + on-disk position."""
        generation, applied = local_position(self.directory)
        return {
            "op": "status",
            "role": self.role,
            "generation": generation,
            "records": applied,
            "directory": os.path.abspath(self.directory),
        }

    async def _stream(
        self,
        writer: asyncio.StreamWriter,
        follower_gen: int,
        applied: int,
    ) -> None:
        """One follower's tail loop: snapshots on generation mismatch,
        record slices as the segment grows, heartbeats when idle."""
        loop = asyncio.get_running_loop()
        cursor: Optional[_SegmentCursor] = None
        last_sent = loop.time()
        need_sync = True  # tell the follower where the leader is, now
        while not self._closing:
            manifest = _read_manifest(self.directory)
            generation = int(manifest.get("delta_generation", 0))
            if follower_gen != generation:
                await self._send_snapshot(writer, manifest, generation)
                follower_gen = generation
                applied = 0
                cursor = None
                last_sent = loop.time()
                need_sync = True
                continue
            if cursor is None:
                cursor = _SegmentCursor(self.directory, generation)
            fresh = cursor.poll()
            if fresh is None:
                cursor = None  # segment swapped: re-resolve the generation
                continue
            if fresh:
                start = cursor.count - len(fresh)
                if start < applied:
                    # The follower already holds a prefix (catch-up after
                    # reconnect): ship only what it is missing.
                    fresh = fresh[applied - start:]
                    start = applied
            if fresh:
                n_bytes = await _send_json(writer, {
                    "op": "records",
                    "generation": generation,
                    "start": start,
                    "total": cursor.count,
                    "records": fresh,
                })
                applied = start + len(fresh)
                self.stats.record_segment_shipped(len(fresh), n_bytes)
                last_sent = loop.time()
                need_sync = False
                continue  # the segment may still be growing: poll again
            now = loop.time()
            if need_sync or now - last_sent >= self.heartbeat:
                await _send_json(writer, {
                    "op": "sync",
                    "generation": generation,
                    "total": cursor.count,
                })
                last_sent = now
                need_sync = False
            await asyncio.sleep(self.poll_interval)

    async def _send_snapshot(
        self, writer: asyncio.StreamWriter, manifest: dict, generation: int
    ) -> None:
        """Ship the whole base: manifest + every referenced file, verbatim.

        The files are immutable once a manifest references them, but a
        concurrent compaction may *remove* them after the next swap —
        the resulting :class:`OSError` intentionally kills this
        connection, and the follower's reconnect gets a fresh, current
        snapshot instead of a torn one.
        """
        loop = asyncio.get_running_loop()
        names = _manifest_files(manifest)
        total = await _send_json(writer, {
            "op": "snapshot",
            "generation": generation,
            "manifest": manifest,
            "files": names,
        })
        for name in names:
            path = os.path.join(self.directory, name)
            with open(path, "rb") as fh:
                data = await loop.run_in_executor(None, fh.read)
            frame = encode_frame(data)
            writer.write(frame)
            await writer.drain()
            total += len(frame)
        total += await _send_json(writer, {
            "op": "snapshot-commit", "generation": generation,
        })
        self.stats.record_snapshot_shipped(total)


# ---------------------------------------------------------------------------
# Follower side
# ---------------------------------------------------------------------------

class ReplicationFollower:
    """Replica: dial a leader, apply its stream to a local directory.

    The reconnect loop derives its subscribe position from *disk*
    (:func:`local_position`), so duplicate delivery after any crash or
    cut is skipped by absolute record index and the protocol is
    idempotent end to end.  Record frames apply through the attached
    store (:meth:`attach`) under the owning service's engine lock —
    which appends them to the replica's own delta-log, keeping the
    directory a valid replication source for chained followers and
    promotion.  Snapshot frames are written to disk *unreferenced*
    (generation-suffixed names) and committed by one atomic manifest
    replace; only then is the store reloaded in place, so readers flip
    from exact-old to exact-new state in one step.
    """

    def __init__(
        self,
        directory: str,
        host: Optional[str] = None,
        port: Optional[int] = None,
        uds: Optional[str] = None,
        stats: Optional[EngineStats] = None,
        reconnect_delay: float = 0.2,
        reconnect_cap: Optional[float] = None,
        reconnect_rng: Optional[random.Random] = None,
    ):
        if (port is None) == (uds is None):
            raise ValueError(
                "ReplicationFollower needs exactly one of port / uds"
            )
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._upstream: Dict[str, object] = (
            {"uds": uds} if uds is not None
            else {"host": host or "127.0.0.1", "port": port}
        )
        self.stats = stats if stats is not None else EngineStats()
        # ``reconnect_delay`` is the backoff *base*: redial delays grow
        # exponentially from it (full jitter, capped) so a replica fleet
        # doesn't hammer a restarting leader in lockstep, and reset to it
        # after any successful subscribe.
        self.reconnect_delay = reconnect_delay
        self._backoff = BackoffPolicy(
            base=reconnect_delay,
            cap=reconnect_cap if reconnect_cap is not None
            else max(reconnect_delay * 32.0, reconnect_delay),
            rng=reconnect_rng,
        )
        self._redial_attempt = 0
        self.store = None  # attached ColumnarDictionary, if any
        self.on_swap: Optional[Callable[[int], None]] = None
        self.generation = -1
        self.applied = 0
        self.leader_position: Optional[Tuple[int, int]] = None
        self._lock = threading.Lock()
        self._raw_log: Optional[DeltaLog] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._task: Optional["asyncio.Task[None]"] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "ReplicationFollower":
        """Begin (re)connecting and applying in a background task."""
        if self._task is not None and not self._task.done():
            raise RuntimeError("follower already started")
        self._loop = asyncio.get_running_loop()
        self._closed = False
        self.generation, self.applied = local_position(self.directory)
        self._task = self._loop.create_task(self._run())
        return self

    async def __aenter__(self) -> "ReplicationFollower":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def close(self) -> None:
        """Stop following; the directory stays serveable as-is."""
        self._closed = True
        if self._writer is not None:
            self._writer.close()
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None
        if self._raw_log is not None:
            self._raw_log.close()
            self._raw_log = None

    def attach(self, store, lock: Optional[threading.Lock] = None) -> None:
        """Serve reads from ``store``, an open
        :class:`~repro.engine.columnar.ColumnarDictionary` on this
        follower's directory.

        Incoming records apply *through* the store (overlay stays hot,
        the replica's own delta-log mirrors the leader's byte for byte)
        and base swaps reload it in place.  ``lock`` is the owning
        service's engine lock so applies serialize with recognition.
        The store's auto-compaction threshold is disabled — a replica
        must never advance its generation on its own.
        """
        if self._raw_log is not None:
            self._raw_log.close()
            self._raw_log = None
        store._delta.max_pending = _REPLICA_MAX_PENDING
        self.store = store
        if lock is not None:
            self._lock = lock
        # Records may have landed in the raw log between the store being
        # opened and this attach; fold them in by re-reading disk.
        if store.delta_pending != self.applied:
            store._reload(store.version + 1)
            store._delta.max_pending = _REPLICA_MAX_PENDING

    # -- position helpers ----------------------------------------------------
    @property
    def lag(self) -> Tuple[int, int]:
        """``(generations, records)`` behind the leader's last report."""
        if self.leader_position is None:
            return 0, 0
        lead_gen, lead_total = self.leader_position
        lag_gen = max(0, lead_gen - self.generation)
        if lag_gen:
            return lag_gen, lead_total
        return 0, max(0, lead_total - self.applied)

    @property
    def synced(self) -> bool:
        """True when the replica matches the leader's last reported
        position exactly (same generation, all records applied)."""
        return self.leader_position is not None and self.lag == (0, 0)

    async def wait_ready(self, timeout: float = 30.0) -> bool:
        """Await the replica holding the leader's *generation* (its base
        is current; records may still be streaming)."""
        return await self._wait(
            lambda: self.leader_position is not None
            and self.generation == self.leader_position[0],
            timeout,
        )

    async def wait_synced(self, timeout: float = 30.0) -> bool:
        """Await full convergence with the leader's last report."""
        return await self._wait(lambda: self.synced, timeout)

    async def wait_position(
        self, generation: int, applied: int, timeout: float = 30.0
    ) -> bool:
        """Await the replica reaching at least ``(generation, applied)``."""
        return await self._wait(
            lambda: (self.generation, self.applied) >= (generation, applied),
            timeout,
        )

    async def _wait(self, done: Callable[[], bool], timeout: float) -> bool:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while not done():
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(0.005)
        return True

    # -- failover ------------------------------------------------------------
    async def promote(self) -> dict:
        """Become the leader: stop following and fold the pending log.

        The fold advances the generation — a fence: any replica that
        re-follows this node sees a generation mismatch and swaps to
        the promoted base, and a stale leader's frames can never apply
        here again.  (With nothing pending the generation stays put,
        which is equally safe: the replicas are already converged.)
        Returns the post-promotion status position.
        """
        await self.close()
        folded = 0
        store = self.store
        if store is not None and store.delta_pending:
            loop = asyncio.get_running_loop()

            def _fold() -> int:
                with self._lock:
                    return store.compact_delta()

            folded = await loop.run_in_executor(None, _fold)
        generation, applied = local_position(self.directory)
        self.generation, self.applied = generation, applied
        return {
            "op": "status",
            "role": "leader",
            "generation": generation,
            "records": applied,
            "folded": folded,
        }

    async def refollow(
        self, host: Optional[str] = None, port: Optional[int] = None,
        uds: Optional[str] = None,
    ) -> None:
        """Point this follower at a new upstream (post-election)."""
        if (port is None) == (uds is None):
            raise ValueError("refollow needs exactly one of port / uds")
        self._upstream = (
            {"uds": uds} if uds is not None
            else {"host": host or "127.0.0.1", "port": port}
        )
        self.leader_position = None
        if self._closed or self._task is None or self._task.done():
            await self.start()
        elif self._writer is not None:
            self._writer.close()  # kick the loop into redialing

    # -- the follow loop -----------------------------------------------------
    async def _run(self) -> None:
        while not self._closed:
            try:
                await self._follow_once()
            except asyncio.CancelledError:
                return
            except (ReplicationError, ConnectionError, OSError):
                pass  # leader gone or stream torn: redial from disk state
            if self._closed:
                return
            await asyncio.sleep(self._next_redial_delay())

    def _next_redial_delay(self) -> float:
        """One full-jitter redial delay; the envelope doubles per
        consecutive failed dial (capped) and :meth:`_follow_once` resets
        it on a successful subscribe."""
        delay = self._backoff.delay(self._redial_attempt)
        self._redial_attempt += 1
        return delay

    async def _follow_once(self) -> None:
        if "uds" in self._upstream:
            reader, writer = await asyncio.open_unix_connection(
                self._upstream["uds"]
            )
        else:
            reader, writer = await asyncio.open_connection(
                self._upstream["host"], self._upstream["port"]
            )
        self._writer = writer
        try:
            self.generation, self.applied = local_position(self.directory)
            await _send_json(writer, {
                "op": "subscribe",
                "generation": self.generation,
                "applied": self.applied,
            })
            self._redial_attempt = 0  # dialed and subscribed: reset backoff
            while not self._closed:
                payload = await _read_frame(reader)
                if payload is None:
                    return
                msg = _parse_json(payload)
                op = msg.get("op")
                if op == "records":
                    await self._apply_records(msg, len(payload))
                elif op == "snapshot":
                    await self._receive_snapshot(reader, msg)
                elif op == "sync":
                    self.leader_position = (
                        int(msg.get("generation", -1)),
                        int(msg.get("total", 0)),
                    )
                    self._record_lag()
                # anything else (e.g. a duplicated commit frame relayed
                # by a flaky link) is ignorable: state is disk-anchored
        finally:
            self._writer = None
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _record_lag(self) -> None:
        lag_gen, lag_records = self.lag
        self.stats.record_replica_lag(lag_gen, lag_records)

    # -- applying records ----------------------------------------------------
    async def _apply_records(self, msg: dict, n_bytes: int) -> None:
        generation = int(msg.get("generation", -1))
        if generation != self.generation:
            # A frame from before a swap (duplicate delivery straddling
            # a snapshot): disk-anchored state makes it safely droppable.
            return
        records = msg.get("records", [])
        start = int(msg.get("start", 0))

        def _apply() -> int:
            with self._lock:
                return self._apply_slice(records, start)

        applied = await self._loop.run_in_executor(None, _apply)
        if applied:
            self.stats.record_segment_applied(applied, n_bytes)
        self.leader_position = (
            generation, int(msg.get("total", start + len(records)))
        )
        self._record_lag()

    def _apply_slice(self, records: List[dict], start: int) -> int:
        """Apply one records frame under the engine lock; returns how
        many were new (duplicates skip by absolute index)."""
        n_new = 0
        for index, record in enumerate(records, start=start):
            if index < self.applied:
                continue  # duplicate delivery: already durable here
            if index > self.applied:
                raise ReplicationError(
                    f"record gap: expected index {self.applied}, got {index}"
                )
            op = record.get("op")
            if op == "label":
                label = str(record["label"])
                if self.store is not None:
                    self.store.register_label(label)
                else:
                    self._log().append_label(label)
            elif op == "add":
                fp = fingerprint_from_record(record)
                label = str(record["label"])
                count = int(record.get("count", 1))
                if self.store is not None:
                    self.store.add_repeated(fp, label, count)
                else:
                    self._log().append_add(fp, label, count)
            else:
                raise ReplicationError(f"unknown record op {op!r}")
            self.applied += 1
            n_new += 1
        return n_new

    def _log(self) -> DeltaLog:
        """Unattached bootstrap path: append straight to the delta-log
        (the store opened later replays it)."""
        if self._raw_log is None:
            self._raw_log = DeltaLog(
                self.directory, generation=self.generation,
                max_pending=_REPLICA_MAX_PENDING,
            )
        return self._raw_log

    # -- applying snapshots --------------------------------------------------
    async def _receive_snapshot(
        self, reader: asyncio.StreamReader, msg: dict
    ) -> None:
        """Receive a full base and swap to it atomically.

        File bodies stream straight to their final (generation-suffixed)
        names — *unreferenced* until the manifest replace, so a leader
        killed mid-snapshot leaves harmless orphans and the previous
        generation fully intact.  The swap happens only after the
        ``snapshot-commit`` trailer confirms the leader finished.
        """
        generation = int(msg.get("generation", -1))
        manifest = msg.get("manifest")
        names = list(msg.get("files", []))
        if not isinstance(manifest, dict):
            raise ReplicationError("snapshot frame carries no manifest")
        loop = asyncio.get_running_loop()
        total = 0
        for name in names:
            payload = await _read_frame(reader)
            if payload is None:
                raise ReplicationError("leader closed mid-snapshot")
            path = os.path.join(self.directory, os.path.basename(name))

            def _write(p=path, data=payload) -> None:
                with open(p, "wb") as fh:
                    fh.write(data)

            await loop.run_in_executor(None, _write)
            total += len(payload) + _LEN.size
        payload = await _read_frame(reader)
        if payload is None:
            raise ReplicationError("leader closed before snapshot commit")
        commit = _parse_json(payload)
        if commit.get("op") != "snapshot-commit" or \
                int(commit.get("generation", -2)) != generation:
            raise ReplicationError("snapshot commit missing or mismatched")

        def _install() -> None:
            with self._lock:
                self._install_snapshot(manifest, generation)

        await loop.run_in_executor(None, _install)
        self.stats.record_snapshot_applied(total + len(payload) + _LEN.size)
        self.leader_position = (generation, 0)
        self._record_lag()
        if self.on_swap is not None:
            self.on_swap(generation)

    def _install_snapshot(self, manifest: dict, generation: int) -> None:
        """Commit a received base: one atomic manifest replace, then
        cleanup + in-place store reload (under the engine lock)."""
        old_manifest = None
        try:
            old_manifest = _read_manifest(self.directory)
        except (FileNotFoundError, ValueError):
            pass  # bootstrapping (or a half-written dir): nothing to keep
        # The local segment (if any) belongs to the pre-swap generation;
        # close our writer so the stale-generation replay can remove it.
        if self._raw_log is not None:
            self._raw_log.close()
            self._raw_log = None
        if self.store is not None:
            self.store._delta.close()
        tmp = os.path.join(
            self.directory, f"{_MANIFEST_NAME}.repl-{os.getpid()}"
        )
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)
        os.replace(tmp, os.path.join(self.directory, _MANIFEST_NAME))
        if old_manifest is not None:
            _remove_superseded_files(self.directory, old_manifest, manifest)
        if self.store is not None:
            self.store._reload(self.store.version + 1)
            self.store._delta.max_pending = _REPLICA_MAX_PENDING
        self.generation = generation
        self.applied = 0


# ---------------------------------------------------------------------------
# Control client + election
# ---------------------------------------------------------------------------

async def replication_request(
    msg: dict,
    host: Optional[str] = None,
    port: Optional[int] = None,
    uds: Optional[str] = None,
    timeout: float = 10.0,
) -> dict:
    """One control round-trip: connect, send ``msg``, return the reply."""

    async def _roundtrip() -> dict:
        if uds is not None:
            reader, writer = await asyncio.open_unix_connection(uds)
        else:
            reader, writer = await asyncio.open_connection(
                host or "127.0.0.1", port
            )
        try:
            await _send_json(writer, msg)
            payload = await _read_frame(reader)
            if payload is None:
                raise ReplicationError("peer closed without a reply")
            return _parse_json(payload, require_op=False)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(_roundtrip(), timeout)


async def elect_and_promote(
    candidates: List[str], timeout: float = 10.0
) -> dict:
    """Failover: promote the most-advanced reachable replica.

    Queries every candidate's ``status``, elects the maximum
    ``(generation, records)`` position, sends it ``promote``, and points
    every other reachable candidate at the winner with ``follow``.
    Returns ``{"winner", "promoted", "statuses", "unreachable",
    "refollowed"}``.  Raises :class:`ReplicationError` when no
    candidate answers.
    """
    statuses: Dict[str, dict] = {}
    unreachable: Dict[str, str] = {}
    for cand in candidates:
        try:
            statuses[cand] = await replication_request(
                {"op": "status"}, timeout=timeout,
                **parse_replica_endpoint(cand),
            )
        except (ReplicationError, ConnectionError, OSError,
                asyncio.TimeoutError) as exc:
            unreachable[cand] = f"{type(exc).__name__}: {exc}"
    if not statuses:
        raise ReplicationError(
            f"no promotion candidate reachable out of {candidates}"
        )
    winner = max(
        statuses,
        key=lambda c: (
            int(statuses[c].get("generation", -1)),
            int(statuses[c].get("records", 0)),
        ),
    )
    promoted = await replication_request(
        {"op": "promote"}, timeout=timeout,
        **parse_replica_endpoint(winner),
    )
    if "error" in promoted:
        raise ReplicationError(
            f"candidate {winner} refused promotion: {promoted['error']}"
        )
    refollowed: Dict[str, dict] = {}
    for cand in statuses:
        if cand == winner:
            continue
        try:
            refollowed[cand] = await replication_request(
                {"op": "follow", "target": winner}, timeout=timeout,
                **parse_replica_endpoint(cand),
            )
        except (ReplicationError, ConnectionError, OSError,
                asyncio.TimeoutError) as exc:
            refollowed[cand] = {"error": f"{type(exc).__name__}: {exc}"}
    return {
        "winner": winner,
        "promoted": promoted,
        "statuses": statuses,
        "unreachable": unreachable,
        "refollowed": refollowed,
    }
