"""Columnar (npz) EFD backend: shard codec + vectorized lookup index.

JSON shards are diffable but expensive: loading a million-key dictionary
means parsing a million JSON objects and building a million ``dict``
entries before the first lookup can run.  This module is the fast path
for that regime, while the flat
:class:`~repro.core.dictionary.ExecutionFingerprintDictionary` stays the
paper-faithful reference:

- **Shard codec** — :func:`save_columnar` writes a directory of
  shard files (the parallel arrays of
  :func:`repro.core.serialization.dictionary_to_columns`) plus a small
  ``manifest.json`` header holding the interned label/app/metric/interval
  string tables in global first-seen order, the global key order, a
  format version, and per-shard checksums.  Two storages share the
  manifest format: compressed ``shard-NN.npz`` archives (``storage=
  "npz"``, the default) and raw aligned little-endian ``shard-NN.mmap``
  files (``storage="mmap"``, :mod:`repro.engine.mmapstore`) that open
  zero-copy through :func:`numpy.memmap` — query-ready in O(manifest),
  one OS page-cache copy shared across serving processes.  Conversion
  between the JSON shard layout and either storage is lossless
  (:func:`compact_shards` / :func:`expand_shards`, surfaced as ``efd
  engine compact --layout npz|mmap`` / ``efd engine expand``).
- **Negative-lookup filters** — every shard (both storages) is fronted
  by a small per-shard Bloom filter over its full-key hashes
  (:mod:`repro.engine.keyfilter`, ``shard-NN.filter`` sidecars,
  checksummed in the manifest) and by a ``shard-NN.hashidx`` sidecar
  holding the same hashes sorted with their row permutation.
  :meth:`ColumnarDictionary.lookup_many` and
  :meth:`ColumnarDictionary.batch_index` consult the filters *before*
  any hydration or index build, so unknown-heavy traffic — the
  dominant case of the paper's unknown-detection evaluation — resolves
  at filter speed without touching a column file; the few survivors
  (hits plus the ~1% Bloom false positives) resolve by ``searchsorted``
  into their routed shard's hash index and are verified against only
  that shard's columns.  Overlay
  keys from the delta-log are checked first (never a false negative
  under learn-while-serving), and compaction/reshard rebuild the
  filters generation-tagged under the same atomic manifest replace.
- **Lazy shards** — :func:`load_columnar` (also reached through
  :func:`repro.engine.sharded.load_sharded`, which dispatches on the
  manifest) opens a directory by reading only the manifest.  Each
  shard's ``.npz`` is read, checksummed, and decoded the first time that
  shard is actually probed; until then a shard costs one small proxy
  object.  Point lookups hydrate exactly the owning shard.
- **Vectorized lookup index** — :meth:`ColumnarDictionary.batch_index`
  builds the batch engine's ``(node, value)`` table directly from the
  columns: keys are rank-packed into one sorted ``uint64`` array, and a
  whole batch's unique probes resolve with a handful of
  :func:`numpy.searchsorted` calls instead of a million-entry Python
  dict build.  ``(label list, distinct apps)`` entries materialize as
  Python objects only for rows actually probed.
  :meth:`ColumnarDictionary.lookup_many` does the same for full
  fingerprint keys (the streaming-session batch path).
- **First-class writes** — mutations route through the write-ahead
  delta-log (:mod:`repro.engine.deltalog`): every ``add`` appends one
  JSONL record to ``delta-log.jsonl`` and lands in a small in-memory
  overlay, and the batch paths answer from ``base ∪ overlay`` — the
  rank-packed base indexes stay hot under a trickle of new learnings
  instead of demoting to the generic dict index.
  :meth:`ColumnarDictionary.compact_delta` folds the log back into the
  ``shard-NN.npz`` base (auto-triggered past a pending threshold, or
  via ``efd engine compact`` / serve shutdown).

Results are element-wise identical to the flat path — enforced together
with the JSON-sharded backend by ``tests/test_engine_properties.py``;
the backend satisfies :class:`repro.engine.backend.DictionaryBackend`.

Directory layout::

    efd-columnar/
      manifest.json     # layout="columnar", storage="npz"|"mmap",
                        # string tables, checksums, delta_generation
      key-order.npz     # global key insertion order as (shard, pos) columns
      shard-00.npz      # node/value/metric_id/interval_id + CSR label cols
      shard-01.npz      # (compressed, integer columns narrowed to int32
      ...               #  where values allow — the reader upcasts;
                        #  storage="mmap" writes shard-NN.mmap instead:
                        #  raw aligned LE columns opened with np.memmap)
      shard-00.filter   # per-shard Bloom filter over full-key hashes
      shard-00.hashidx  # the same hashes sorted + row permutation —
      ...               # filter survivors resolve by searchsorted
                        # (negative lookups answer without hydration)
      delta-log.jsonl   # pending mutations since the last compaction
                        # (absent on a clean directory)
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dictionary import (
    DictionaryStats,
    ExecutionFingerprintDictionary,
    app_of_label,
)
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import (
    COLUMN_NAMES,
    dictionary_from_columns,
    dictionary_to_columns,
)
from repro.engine.deltalog import (
    DEFAULT_MAX_PENDING,
    DeltaLog,
    PendingDeltaError,
    pending_records,
)
from repro.engine.keyfilter import (
    DEFAULT_BITS_PER_KEY,
    KeyFilter,
    filter_filename,
    hash_index_filename,
    key_hashes,
    pack_hash_index,
    unpack_hash_index,
)
from repro.engine.mmapstore import (
    MmapShardFile,
    mmap_filename,
    write_mmap_shard,
)
from repro.engine.sharded import (
    ShardedDictionary,
    merged_if_pending,
    shard_index,
)

_MANIFEST_NAME = "manifest.json"
_KEY_ORDER_NAME = "key-order.npz"
_COLUMNAR_LAYOUT = "columnar"
_COLUMNAR_FORMAT_VERSION = 1
#: Manifest ``storage`` values: compressed archives vs. raw mmap files.
COLUMNAR_STORAGES = ("npz", "mmap")
#: Filter-passing probe count up to which a cold ``lookup_many`` batch
#: resolves by hash-scanning the columns instead of building the full
#: rank-packed index (the scan is one pass; the index build sorts).
_SCAN_MAX = 256

#: A resolved index entry: (label list, distinct apps) — what ``vote()``
#: needs per matched key, precomputed once per probed row.
Entry = Tuple[List[str], Tuple[str, ...]]


def _checksum_bytes(data: bytes) -> str:
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _npz_filename(index: int, generation: int = 0) -> str:
    """Shard file name; generations > 0 get a distinguishing suffix.

    Compaction rewrites the base under *new* names and commits the
    switch with one atomic manifest replace — a crash mid-rewrite can
    therefore never mix new shard bytes with a manifest that expects
    the old checksums.  Generation 0 keeps the plain historical name.
    """
    if generation:
        return f"shard-{index:02d}.g{generation}.npz"
    return f"shard-{index:02d}.npz"


def _shard_filename(index: int, generation: int, storage: str) -> str:
    """Shard file name for either storage, generation-suffixed alike."""
    if storage == "mmap":
        return mmap_filename(index, generation)
    return _npz_filename(index, generation)


def _key_order_filename(generation: int = 0) -> str:
    if generation:
        return f"key-order.g{generation}.npz"
    return _KEY_ORDER_NAME


def _value_bits(values: np.ndarray) -> np.ndarray:
    """float64 keys as order-stable int64 bit patterns.

    ``+ 0.0`` first collapses ``-0.0`` onto ``+0.0`` so the two equal
    fingerprint values share one bit pattern (dictionary keys are
    equality-deduped, but a ``0.0`` probe must still hit a ``-0.0`` key).
    """
    return (np.asarray(values, dtype=np.float64) + 0.0).view(np.int64)


def _narrowed(columns: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Shrink integer columns to int32 where the values allow it.

    Ids, nodes, offsets, and typical repetition counts all fit in 32
    bits; columns that do not (e.g. counts beyond 2**31) stay int64.
    The reader upcasts everything back, so narrowing is invisible to
    consumers — it halves the dominant on-disk cost before compression.
    """
    out: Dict[str, np.ndarray] = {}
    lo, hi = np.iinfo(np.int32).min, np.iinfo(np.int32).max
    for name, array in columns.items():
        if array.dtype.kind != "i" or (
            array.size and (array.min() < lo or array.max() > hi)
        ):
            out[name] = array
        else:
            out[name] = array.astype(np.int32)
    return out


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------

def save_columnar(sharded, directory: str, generation: int = 0,
                  storage: Optional[str] = None,
                  filters: bool = True,
                  filter_bits_per_key: int = DEFAULT_BITS_PER_KEY) -> None:
    """Write a sharded dictionary as a columnar directory.

    Accepts any :class:`~repro.engine.sharded.ShardedDictionary`
    (including a :class:`ColumnarDictionary`, whose shards hydrate on
    demand).  String tables are interned globally: the label table is
    seeded with the store's global first-seen label order before any
    shard is encoded, so label ids are consistent across shards and the
    manifest preserves the order that drives tie-breaking.

    ``storage`` picks the shard codec: ``"npz"`` (compressed archival
    files, the default) or ``"mmap"`` (raw aligned little-endian files
    opened zero-copy, :mod:`repro.engine.mmapstore`); ``None`` keeps
    the source store's storage when it is itself columnar.  Unless
    ``filters=False``, each shard is fronted by a Bloom filter over its
    full-key hashes (``filter_bits_per_key`` bits per key) written as a
    ``shard-NN.filter`` sidecar, plus a ``shard-NN.hashidx`` sidecar
    holding the same hashes pre-sorted with their row permutation; both
    are checksummed in the manifest — the negative-lookup fast path of
    :meth:`ColumnarDictionary.lookup_many` and
    :meth:`ColumnarDictionary.batch_index`.

    A :class:`ColumnarDictionary` carrying pending delta-log records is
    saved as its *merged* live state (base ∪ overlay) — a save can never
    silently drop appends.  Saving such a store onto its *own* directory
    is a compaction and is routed through
    :meth:`ColumnarDictionary.compact_delta` (generation advanced,
    segment removed, live object reloaded) — otherwise the leftover log
    would replay on top of the already-folded base at the next load and
    double-count every pending record.  ``generation`` is the delta-log
    generation stamped into the manifest; compaction advances it so a
    log segment orphaned by a crash is recognized as already folded.
    """
    if storage is None:
        storage = getattr(sharded, "storage", None) or "npz"
    if storage not in COLUMNAR_STORAGES:
        raise ValueError(
            f"unknown columnar storage {storage!r} "
            f"(expected one of {COLUMNAR_STORAGES})"
        )
    delta = getattr(sharded, "_delta", None)
    if delta is not None and delta.pending:
        own = getattr(sharded, "_directory", None)
        if own is not None and os.path.abspath(own) == os.path.abspath(directory):
            sharded.compact_delta()
            return
    sharded = merged_if_pending(sharded)
    os.makedirs(directory, exist_ok=True)
    label_index: Dict[str, int] = {}
    metric_index: Dict[str, int] = {}
    interval_index: Dict[Tuple[float, float], int] = {}
    for label in sharded.labels():
        label_index.setdefault(label, len(label_index))
    shard_meta = []
    filter_meta = []
    shard_positions: List[Dict[Fingerprint, int]] = []
    for i, shard in enumerate(sharded.shards):
        columns = dictionary_to_columns(
            shard, label_index, metric_index, interval_index
        )
        name = _shard_filename(i, generation, storage)
        if storage == "mmap":
            checksum = write_mmap_shard(
                os.path.join(directory, name), columns
            )
        else:
            buffer = io.BytesIO()
            np.savez_compressed(buffer, **_narrowed(columns))
            data = buffer.getvalue()
            with open(os.path.join(directory, name), "wb") as fh:
                fh.write(data)
            checksum = _checksum_bytes(data)
        shard_meta.append(
            {"file": name, "n_keys": len(shard), "checksum": checksum}
        )
        if filters:
            hashes = key_hashes(
                columns["metric_id"],
                columns["interval_id"],
                columns["node"],
                _value_bits(columns["value"]),
            )
            built = KeyFilter.build(
                hashes, bits_per_key=filter_bits_per_key
            )
            filter_name = filter_filename(i, generation)
            filter_data = built.to_bytes()
            with open(os.path.join(directory, filter_name), "wb") as fh:
                fh.write(filter_data)
            # The exact-membership companion: the same hashes, sorted
            # here so a cold scan is a searchsorted, not a sort.
            hash_name = hash_index_filename(i, generation)
            hash_data = pack_hash_index(hashes)
            with open(os.path.join(directory, hash_name), "wb") as fh:
                fh.write(hash_data)
            filter_meta.append(
                {
                    "file": filter_name,
                    "n_keys": len(shard),
                    "checksum": _checksum_bytes(filter_data),
                    "hash_file": hash_name,
                    "hash_checksum": _checksum_bytes(hash_data),
                }
            )
        shard_positions.append(
            {fp: pos for pos, (fp, _) in enumerate(shard.entries())}
        )
    # Global key insertion order, as columns of its own: at millions of
    # keys a JSON list here would dominate the manifest and its parse
    # would dominate load time.
    n_keys_total = len(sharded)
    key_shard = np.empty(n_keys_total, dtype=np.int64)
    key_pos = np.empty(n_keys_total, dtype=np.int64)
    for row, fp in enumerate(sharded._key_order):
        i = shard_index(fp, sharded.n_shards)
        key_shard[row] = i
        key_pos[row] = shard_positions[i][fp]
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer, **_narrowed({"shard": key_shard, "pos": key_pos})
    )
    key_order_data = buffer.getvalue()
    key_order_name = _key_order_filename(generation)
    with open(os.path.join(directory, key_order_name), "wb") as fh:
        fh.write(key_order_data)
    manifest = {
        "format_version": _COLUMNAR_FORMAT_VERSION,
        "layout": _COLUMNAR_LAYOUT,
        "storage": storage,
        "delta_generation": int(generation),
        "n_shards": sharded.n_shards,
        "label_order": list(label_index),
        "app_order": sharded.app_names(),
        "metric_table": list(metric_index),
        "interval_table": [list(iv) for iv in interval_index],
        "key_order_file": {
            "file": key_order_name,
            "checksum": _checksum_bytes(key_order_data),
        },
        "shards": shard_meta,
    }
    if filters:
        manifest["filters"] = {
            "bits_per_key": int(filter_bits_per_key),
            "shards": filter_meta,
        }
    # Atomic commit: every data file above is fully written before the
    # manifest switches to it, so a reader (or a crash) always sees a
    # manifest whose checksums match the files it names.
    manifest_path = os.path.join(directory, _MANIFEST_NAME)
    tmp_path = f"{manifest_path}.tmp-{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)
    os.replace(tmp_path, manifest_path)


# ---------------------------------------------------------------------------
# Lazy shard loading
# ---------------------------------------------------------------------------

class _ShardFile:
    """One ``shard-NN.npz``: read, checksummed, and decoded on demand."""

    __slots__ = ("path", "name", "checksum", "n_keys", "_columns")

    def __init__(self, path: str, name: str, checksum: Optional[str],
                 n_keys: int):
        self.path = path
        self.name = name
        self.checksum = checksum
        self.n_keys = int(n_keys)
        self._columns: Optional[Dict[str, np.ndarray]] = None

    def columns(self) -> Dict[str, np.ndarray]:
        """The shard's parallel arrays (first access reads the file)."""
        if self._columns is not None:
            return self._columns
        if not os.path.isfile(self.path):
            raise FileNotFoundError(
                f"columnar EFD is incomplete: missing shard file "
                f"{self.name!r}"
            )
        with open(self.path, "rb") as fh:
            data = fh.read()
        if self.checksum is not None and _checksum_bytes(data) != self.checksum:
            raise ValueError(
                f"shard file {self.name!r} is corrupt: checksum mismatch "
                f"(expected {self.checksum})"
            )
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as payload:
                columns = {name: payload[name] for name in COLUMN_NAMES}
        except KeyError as exc:
            raise ValueError(
                f"shard file {self.name!r} is corrupt: missing member {exc}"
            ) from exc
        except Exception as exc:  # zipfile/np.load parse failures
            raise ValueError(
                f"shard file {self.name!r} is corrupt: {exc}"
            ) from exc
        # Undo on-disk narrowing: every consumer sees int64/float64.
        for name, array in columns.items():
            columns[name] = array.astype(
                np.float64 if name == "value" else np.int64, copy=False
            )
        if len(columns["node"]) != self.n_keys:
            raise ValueError(
                f"shard file {self.name!r} holds {len(columns['node'])} keys "
                f"but the manifest expects {self.n_keys}"
            )
        self._columns = columns
        return columns

    def peek_columns(self) -> Dict[str, np.ndarray]:
        """Same as :meth:`columns` — decompression is a full (and
        checksummed) read anyway; only the mmap codec has a cheaper
        few-row path."""
        return self.columns()


class _LazyShard:
    """Duck-types a flat EFD, hydrating from its columns on first probe.

    ``len()`` answers from the manifest without touching the file (shard
    occupancy is read every batch); ``version`` counts only *post-load*
    mutations, so hydrating a pristine shard does not invalidate the
    batch engine's cached index.  Everything else forwards to the
    hydrated :class:`ExecutionFingerprintDictionary`.
    """

    __slots__ = ("_owner", "_index", "_efd", "_baseline")

    def __init__(self, owner: "ColumnarDictionary", index: int):
        self._owner = owner
        self._index = index
        self._efd: Optional[ExecutionFingerprintDictionary] = None
        self._baseline = 0

    def _hydrate(self) -> ExecutionFingerprintDictionary:
        if self._efd is None:
            self._efd = self._owner._hydrate_shard(self._index)
            self._baseline = self._efd.version
        return self._efd

    @property
    def hydrated(self) -> bool:
        return self._efd is not None

    @property
    def version(self) -> int:
        if self._efd is None:
            return 0
        return self._efd.version - self._baseline

    def __len__(self) -> int:
        if self._efd is None:
            return self._owner._files[self._index].n_keys
        return len(self._efd)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self._hydrate()

    def __getattr__(self, name: str):
        return getattr(self._hydrate(), name)

    def __reduce__(self):
        # Pool workers (process backend) cannot share this proxy's file
        # handles or owner: ship the hydrated flat shard instead, which
        # satisfies the same read contract on the other side.
        return _as_is, (self._hydrate(),)

    def __repr__(self) -> str:
        state = "hydrated" if self.hydrated else "lazy"
        return f"_LazyShard(index={self._index}, n_keys={len(self)}, {state})"


def _as_is(efd: ExecutionFingerprintDictionary) -> ExecutionFingerprintDictionary:
    """Pickle helper for :meth:`_LazyShard.__reduce__`."""
    return efd

# ---------------------------------------------------------------------------
# Vectorized lookup
# ---------------------------------------------------------------------------

class _RankPackedIndex:
    """Exact-match lookup over composite int64 keys, all NumPy.

    Each key component is rank-compressed against its sorted distinct
    values, the ranks are packed into a single ``uint64`` per key, and
    the packed keys are sorted once.  A batch of probes then resolves
    with one :func:`numpy.searchsorted` per component plus one over the
    packed table — no Python per-key work at all.

    Raises :class:`OverflowError` if the rank-space product cannot fit
    in 64 bits (astronomically large stores); callers fall back to the
    Python dict index.
    """

    __slots__ = ("_uniques", "_packed", "_rows", "_n")

    def __init__(self, components: Sequence[np.ndarray], rows: np.ndarray):
        self._n = len(rows)
        self._uniques: List[np.ndarray] = []
        capacity = 1
        packed = np.zeros(self._n, dtype=np.uint64)
        for component in components:
            component = np.asarray(component, dtype=np.int64)
            values = np.unique(component)
            capacity *= max(len(values), 1)
            if capacity >= 1 << 64:
                raise OverflowError("rank space exceeds 64 bits")
            self._uniques.append(values)
            ranks = np.searchsorted(values, component).astype(np.uint64)
            packed = packed * np.uint64(max(len(values), 1)) + ranks
        order = np.argsort(packed, kind="stable")
        self._packed = packed[order]
        self._rows = np.asarray(rows, dtype=np.int64)[order]

    def resolve(self, probes: Sequence[np.ndarray]) -> np.ndarray:
        """Row id per probe tuple; ``-1`` where no key matches."""
        n_probes = len(probes[0]) if probes else 0
        if self._n == 0 or n_probes == 0:
            return np.full(n_probes, -1, dtype=np.int64)
        valid = np.ones(n_probes, dtype=bool)
        packed = np.zeros(n_probes, dtype=np.uint64)
        for component, values in zip(probes, self._uniques):
            component = np.asarray(component, dtype=np.int64)
            if len(values) == 0:
                return np.full(n_probes, -1, dtype=np.int64)
            idx = np.searchsorted(values, component)
            idx_c = np.minimum(idx, len(values) - 1)
            valid &= (idx < len(values)) & (values[idx_c] == component)
            packed = packed * np.uint64(len(values)) + idx_c.astype(np.uint64)
        pos = np.searchsorted(self._packed, packed)
        pos_c = np.minimum(pos, self._n - 1)
        found = valid & (pos < self._n) & (self._packed[pos_c] == packed)
        return np.where(found, self._rows[pos_c], np.int64(-1))


class ColumnarBatchIndex:
    """The batch engine's ``(node, value)`` table, backed by columns.

    Replaces the per-key Python dict the generic path builds
    (:func:`repro.engine.batch._shard_tuple_index`): construction is a
    rank-pack + sort over the store's columns for one
    ``(metric, interval)``, and :meth:`resolve_probes` answers a whole
    batch's probes in a handful of NumPy calls.  ``(labels, apps)``
    entries materialize lazily, only for rows actually hit, and are
    cached across batches.
    """

    __slots__ = ("_owner", "_index")

    def __init__(self, owner: "ColumnarDictionary", node: np.ndarray,
                 bits: np.ndarray, rows: np.ndarray):
        self._owner = owner
        self._index = _RankPackedIndex([node, bits], rows)

    def resolve_probes(
        self, nodes: np.ndarray, values: np.ndarray
    ) -> Dict[Tuple[int, float], Entry]:
        """Map every hitting ``(node, value)`` probe to its entry.

        ``values`` may contain NaN (nodes without a fingerprint) — those
        probes are skipped.  Misses are simply absent, so the result's
        ``.get`` is a drop-in for the dict index.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        usable = np.nonzero(values == values)[0]
        if len(usable) == 0:
            return {}
        rows = self._index.resolve(
            [nodes[usable], _value_bits(values[usable])]
        )
        out: Dict[Tuple[int, float], Entry] = {}
        hit = np.nonzero(rows >= 0)[0]
        if len(hit) == 0:
            return out
        # One key maps to one row, so uniquing by row is uniquing by
        # probe — the Python loop below runs once per *distinct* hit.
        unique_rows, first = np.unique(rows[hit], return_index=True)
        probe_at = usable[hit[first]]
        for row, probe in zip(unique_rows.tolist(), probe_at.tolist()):
            key = (int(nodes[probe]), float(values[probe]))
            out[key] = self._owner._entry(row)
        return out


class _FilterGuardedBatchIndex(ColumnarBatchIndex):
    """A batch index that consults the shard filters before existing.

    Returned by :meth:`ColumnarDictionary.batch_index` on a filtered
    store whose real ``(metric, interval)`` index has not been built
    yet: a batch whose probes all fail the per-shard Bloom filters is
    answered ``{}`` without reading a single column file, so a cold
    store serving unknown-heavy record traffic never pays the column
    read + rank-pack sort at all.  The first batch with a surviving
    probe builds (and caches) the real index and delegates to it; under
    rank-space overflow it delegates to the owner's exact dict fallback
    instead of demoting the engine.
    """

    __slots__ = ("_key", "_metric_id", "_interval_id")

    def __init__(self, owner: "ColumnarDictionary",
                 key: Tuple[str, Tuple[float, float]]):
        self._owner = owner
        self._key = key
        self._metric_id = owner._metric_map.get(key[0])
        self._interval_id = owner._interval_map.get(key[1])

    def resolve_probes(
        self, nodes: np.ndarray, values: np.ndarray
    ) -> Dict[Tuple[int, float], Entry]:
        if self._metric_id is None or self._interval_id is None:
            return {}
        owner = self._owner
        nodes = np.asarray(nodes, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if self._key in owner._batch_indices:
            base = owner._batch_indices[self._key]
        else:
            usable = np.nonzero(values == values)[0]
            if len(usable) == 0:
                return {}
            n = len(usable)
            hashes = key_hashes(
                np.full(n, self._metric_id, dtype=np.int64),
                np.full(n, self._interval_id, dtype=np.int64),
                nodes[usable],
                _value_bits(values[usable]),
            )
            if not owner._filter_might(hashes).any():
                return {}
            base = owner._built_batch_index(self._key)
        if base is None:
            return owner._overflow_resolve(self._key, nodes, values)
        return base.resolve_probes(nodes, values)


class _PatchedBatchIndex(ColumnarBatchIndex):
    """A pristine base index plus the delta overlay's few keys.

    The expensive half — the rank-packed, sorted base table — is shared
    and never rebuilt; only the patch dict (one entry per overlay key of
    this (metric, interval), with fully merged ``base ∪ overlay``
    labels) is recomputed when the overlay changes.  Patch entries
    simply override base hits, so a probe that matches an updated key
    sees the merged labels and a probe of a brand-new key hits at all.
    """

    __slots__ = ("_base", "_patch")

    def __init__(self, base: ColumnarBatchIndex, patch: Dict[Tuple[int, float], Entry]):
        self._base = base
        self._patch = patch

    def resolve_probes(
        self, nodes: np.ndarray, values: np.ndarray
    ) -> Dict[Tuple[int, float], Entry]:
        out = self._base.resolve_probes(nodes, values)
        out.update(self._patch)
        return out


def _merge_labels(base: List[str], extra: Sequence[str]) -> List[str]:
    """``base`` plus the labels of ``extra`` it lacks, first-seen order."""
    if not base:
        return list(extra)
    merged = list(base)
    for label in extra:
        if label not in merged:
            merged.append(label)
    return merged


# ---------------------------------------------------------------------------
# The columnar store
# ---------------------------------------------------------------------------

class ColumnarDictionary(ShardedDictionary):
    """Sharded EFD backed by a columnar directory, hydrated lazily.

    Mirrors the full :class:`~repro.engine.sharded.ShardedDictionary`
    contract (and thereby
    :class:`repro.engine.backend.DictionaryBackend`) — every read and
    write works — but holds no per-key Python objects at load time.
    Point operations hydrate exactly the shard they touch; the batch
    engine bypasses hydration entirely through :meth:`batch_index` /
    :meth:`lookup_many`.

    Mutations route through the write-ahead delta-log
    (:mod:`repro.engine.deltalog`): an ``add`` appends one JSONL record
    to the directory's ``delta-log.jsonl`` and folds into a small
    in-memory overlay; the base ``shard-NN.npz`` columns — and the
    vectorized indexes built on them — are never touched.  Every read
    answers from ``base ∪ overlay``, so a store under a sustained write
    trickle keeps the rank-packed ``searchsorted`` fast path, and a
    restart replays the pending log.  :meth:`compact_delta` folds the
    log back into the base files (automatic past
    ``DeltaLog.max_pending`` records; also ``efd engine compact`` and
    serve shutdown).

    The one remaining fallback: mutating a shard object *directly*
    (``store.shards[i].add(...)``) bypasses the log, so the base column
    caches no longer reflect live state — ``batch_index`` /
    ``lookup_many`` then return ``None``, the engine counts an
    ``index_demotion`` and answers through the generic dict-index path,
    which merges the overlay explicitly.
    """

    def __init__(self, directory: str, manifest: dict,
                 key_shard: np.ndarray, key_pos: np.ndarray,
                 validate: bool = True,
                 delta_max_pending: int = DEFAULT_MAX_PENDING):
        self.n_shards = int(manifest["n_shards"])
        self._directory = directory
        self._validate = bool(validate)
        self.storage = str(manifest.get("storage", "npz"))
        self._label_table: List[str] = list(manifest["label_order"])
        self._metric_table: List[str] = [
            str(m) for m in manifest["metric_table"]
        ]
        self._interval_table: List[Tuple[float, float]] = [
            (float(iv[0]) + 0.0, float(iv[1]) + 0.0)
            for iv in manifest["interval_table"]
        ]
        shard_file = MmapShardFile if self.storage == "mmap" else _ShardFile
        self._files = [
            shard_file(
                path=os.path.join(directory, meta["file"]),
                name=meta["file"],
                checksum=meta.get("checksum"),
                n_keys=meta["n_keys"],
            )
            for meta in manifest["shards"]
        ]
        self.shards = [_LazyShard(self, i) for i in range(self.n_shards)]
        # Per-shard Bloom filters (absent on pre-filter directories):
        # tiny, so they load — and checksum — eagerly; a store is only
        # "query-ready" once its negative-lookup path is armed, and a
        # missing or damaged sidecar must surface at open, by name.
        self._filters: Optional[List[KeyFilter]] = None
        self._filter_bits_per_key = DEFAULT_BITS_PER_KEY
        filter_manifest = manifest.get("filters")
        if filter_manifest is not None:
            entries = filter_manifest.get("shards", [])
            if len(entries) != self.n_shards:
                raise ValueError(
                    f"manifest lists {len(entries)} filter files for "
                    f"n_shards={self.n_shards} — manifest is corrupt"
                )
            self._filter_bits_per_key = int(
                filter_manifest.get("bits_per_key", DEFAULT_BITS_PER_KEY)
            )
            loaded = []
            for meta in entries:
                name = meta["file"]
                path = os.path.join(directory, name)
                if not os.path.isfile(path):
                    raise FileNotFoundError(
                        f"columnar EFD is incomplete: missing filter "
                        f"file {name!r}"
                    )
                with open(path, "rb") as fh:
                    data = fh.read()
                expected = meta.get("checksum")
                if expected is not None and _checksum_bytes(data) != expected:
                    raise ValueError(
                        f"filter file {name!r} is corrupt: checksum "
                        f"mismatch (expected {expected})"
                    )
                loaded.append(KeyFilter.from_bytes(data, name))
                # The sorted hash-index sidecar reads lazily (first
                # scan), but a missing file must still surface at open,
                # by name, like every other manifest-listed sidecar.
                hash_name = meta.get("hash_file")
                if hash_name is not None and not os.path.isfile(
                    os.path.join(directory, hash_name)
                ):
                    raise FileNotFoundError(
                        f"columnar EFD is incomplete: missing hash-index "
                        f"file {hash_name!r}"
                    )
            self._filters = loaded
            self._filter_hash_meta = list(entries)
        else:
            self._filter_hash_meta = None
        self._hash_index_cache: Dict[
            int, Tuple[np.ndarray, np.ndarray]
        ] = {}
        self._shard_starts: Optional[np.ndarray] = None
        self._overflow_dicts: Dict[object, Dict] = {}
        self._guard_indices: Dict[object, "_FilterGuardedBatchIndex"] = {}
        self._label_order = {label: None for label in self._label_table}
        self._app_order: Dict[str, None] = {}
        for label in self._label_table:
            self._app_order.setdefault(app_of_label(label), None)
        self._key_shard = key_shard
        self._key_pos = key_pos
        self._key_order_cache: Optional[Dict[Fingerprint, None]] = None
        self._metric_map = {m: i for i, m in enumerate(self._metric_table)}
        self._interval_map = {
            iv: i for i, iv in enumerate(self._interval_table)
        }
        self._concat_cache: Optional[Dict[str, np.ndarray]] = None
        self._batch_indices: Dict[object, Optional[ColumnarBatchIndex]] = {}
        self._full_index: object = None
        self._row_labels: Dict[int, List[str]] = {}
        self._row_entries: Dict[int, Entry] = {}
        # -- delta-log state -------------------------------------------------
        # Preserves version monotonicity across in-place compactions so
        # engine-side caches keyed on `version` can never alias a stale
        # index onto a post-compaction state.
        self._version_base = 0
        self._delta = DeltaLog(
            directory,
            generation=int(manifest.get("delta_generation", 0)),
            max_pending=delta_max_pending,
        )
        # Overlay keys absent from the base columns, insertion-ordered
        # (the tail of the global key order), plus their per-shard tally
        # (shard_sizes / occupancy gauges must include them).
        self._delta_new_keys: Dict[Fingerprint, None] = {}
        self._new_per_shard: List[int] = [0] * self.n_shards
        self._patch_cache: Dict[object, Dict[Tuple[int, float], Entry]] = {}
        replayed = self._delta.replay()
        if replayed:
            # One vectorized membership pass over the distinct replayed
            # keys — per-record resolves would make reopening a store
            # with a large pending segment O(records) numpy round-trips.
            distinct = list(dict.fromkeys(fp for fp, _, _ in replayed))
            rows = self._base_resolve(distinct)
            if rows is None:  # rank-space overflow: per-shard membership
                in_base = [
                    ShardedDictionary.__contains__(self, fp)
                    for fp in distinct
                ]
            else:
                in_base = (rows >= 0).tolist()
            for fp, present in zip(distinct, in_base):
                if not present:
                    self._delta_new_keys[fp] = None
                    self._new_per_shard[
                        shard_index(fp, self.n_shards)
                    ] += 1
        for label in self._delta.overlay.labels():
            self._label_order.setdefault(label, None)
            self._app_order.setdefault(app_of_label(label), None)

    # -- lazy key order ------------------------------------------------------
    @property
    def _key_order(self) -> Dict[Fingerprint, None]:
        if self._key_order_cache is None:
            per_shard = [
                self._shard_fingerprints(i) for i in range(self.n_shards)
            ]
            order: Dict[Fingerprint, None] = {}
            for i, pos in zip(
                self._key_shard.tolist(), self._key_pos.tolist()
            ):
                order.setdefault(per_shard[i][pos], None)
            for fp in self._delta_new_keys:
                order.setdefault(fp, None)
            self._key_order_cache = order
        return self._key_order_cache

    def _shard_fingerprints(self, index: int) -> List[Fingerprint]:
        """The shard's keys in stored order, decoded from its columns."""
        columns = self._files[index].columns()
        metrics = self._metric_table
        intervals = self._interval_table
        return [
            Fingerprint(
                metric=metrics[m], node=n, interval=intervals[iv], value=v
            )
            for m, n, iv, v in zip(
                columns["metric_id"].tolist(),
                columns["node"].tolist(),
                columns["interval_id"].tolist(),
                columns["value"].tolist(),
            )
        ]

    # -- hydration -----------------------------------------------------------
    def _hydrate_shard(self, index: int) -> ExecutionFingerprintDictionary:
        name = self._files[index].name
        columns = self._files[index].columns()
        try:
            efd = dictionary_from_columns(
                columns,
                self._label_table,
                self._metric_table,
                self._interval_table,
            )
        except ValueError as exc:
            raise ValueError(
                f"shard file {name!r} is corrupt: {exc}"
            ) from exc
        if self._validate:
            for fp in efd._store:
                owner = shard_index(fp, self.n_shards)
                if owner != index:
                    raise ValueError(
                        f"shard file {name!r} holds key {fp} that belongs "
                        f"to shard {owner} — files renamed or swapped?"
                    )
        return efd

    # -- the delta-log write path --------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter: base epoch + overlay + shards."""
        return (
            self._version_base
            + self._delta.overlay.version
            + sum(s.version for s in self.shards)
        )

    @property
    def delta_pending(self) -> int:
        """Unfolded delta-log records (0 on a clean store)."""
        return self._delta.n_records

    def _base_mutated(self) -> bool:
        """True when a shard was mutated *behind* the delta-log.

        Routed writes never touch the shards, so any post-load shard
        version means the base column caches no longer reflect live
        state — the vectorized paths must stand down.
        """
        return any(s.version for s in self.shards)

    def _note_delta_key(self, fingerprint: Fingerprint) -> None:
        """Track an overlay key's first sighting (new-key bookkeeping)."""
        if fingerprint in self._delta_new_keys or self._base_has(fingerprint):
            return
        self._delta_new_keys[fingerprint] = None
        self._new_per_shard[shard_index(fingerprint, self.n_shards)] += 1
        if self._key_order_cache is not None:
            self._key_order_cache.setdefault(fingerprint, None)

    def _delta_apply(self, fingerprint: Fingerprint, label: str,
                     count: int) -> None:
        first_sight = fingerprint not in self._delta.overlay
        self._delta.append_add(fingerprint, label, count)
        if first_sight:
            self._note_delta_key(fingerprint)
        self._label_order.setdefault(label, None)
        self._app_order.setdefault(app_of_label(label), None)
        self._patch_cache.clear()
        if self._delta.over_threshold:
            self.compact_delta()

    def add(self, fingerprint: Fingerprint, label: str) -> None:
        """Insert one observation through the delta-log."""
        self._delta_apply(fingerprint, label, 1)

    def add_repeated(self, fingerprint: Fingerprint, label: str,
                     count: int) -> None:
        """Insert ``count`` repetitions through the delta-log, O(1)."""
        self._delta_apply(fingerprint, label, count)

    def register_label(self, label: str) -> None:
        """Record ``label`` in the first-seen orders (delta-logged)."""
        if not label:
            raise ValueError("label must be non-empty")
        if label not in self._label_order:
            self._delta.append_label(label)
        self._label_order.setdefault(label, None)
        self._app_order.setdefault(app_of_label(label), None)

    def bulk_add(self, pairs, backend: str = "serial",
                 n_workers: Optional[int] = None) -> int:
        """Insert many pairs through the delta-log.

        The sharded bucketing fan-out would bypass the log (it merges
        into the shard objects directly), so the columnar store takes
        the sequential routed path — the JSONL append dominates either
        way.  ``None`` fingerprints still register their label.
        """
        n = 0
        for fp, label in pairs:
            if fp is None:
                self.register_label(label)
                continue
            self.add(fp, label)
            n += 1
        return n

    def compact_delta(self) -> int:
        """Fold pending delta-log records into the base columns, in place.

        Rewrites the directory from the merged live state with the
        delta generation advanced, removes the log segment and the
        superseded base files, and re-opens the store on the fresh base
        (version stays monotonic, so engine caches rebuild rather than
        alias).  Crash-safe at every step: the new base is written
        under generation-suffixed names and committed by one atomic
        manifest replace, so before the commit the old base + replaying
        log are intact, and after it an orphaned segment's stale
        generation marks it already-folded (old base files linger as
        harmless orphans at worst).  Returns the records folded.
        """
        if not self._delta.pending:
            return 0
        folded = self._delta.n_records
        merged = ShardedDictionary(self.n_shards)
        merged.merge(self)
        generation = self._delta.generation + 1
        version_base = self.version + 1  # strictly advance: caches rebuild
        old_manifest = _read_manifest(self._directory)
        save_columnar(
            merged, self._directory, generation=generation,
            storage=self.storage,
            filters=self._filters is not None,
            filter_bits_per_key=self._filter_bits_per_key,
        )
        self._delta.clear()
        _remove_superseded_files(
            self._directory, old_manifest, _read_manifest(self._directory)
        )
        self._reload(version_base)
        return folded

    def _reload(self, version_base: int) -> None:
        """Re-open the on-disk state in place (post-compaction)."""
        fresh = load_columnar(
            self._directory,
            validate=self._validate,
            delta_max_pending=self._delta.max_pending,
        )
        self.__dict__.clear()
        self.__dict__.update(fresh.__dict__)
        for shard in self.shards:
            shard._owner = self
        self._version_base = version_base

    # -- overlay-merged point reads ------------------------------------------
    def __len__(self) -> int:
        return super().__len__() + len(self._delta_new_keys)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        if fingerprint in self._delta.overlay:
            return True
        if self._filter_definitely_absent(fingerprint):
            return False
        return super().__contains__(fingerprint)

    def shard_sizes(self) -> List[int]:
        """Key count per shard, overlay keys included."""
        return [
            len(s) + extra
            for s, extra in zip(self.shards, self._new_per_shard)
        ]

    def lookup(self, fingerprint: Optional[Fingerprint]) -> List[str]:
        """Labels for one key, ``base ∪ overlay``, first-seen order."""
        if fingerprint is None:
            return []
        overlay = self._delta.overlay
        if fingerprint in self._delta_new_keys and not self._base_mutated():
            # Known absent from the pristine base: skip the shard probe
            # (a direct shard mutation voids that knowledge — the key
            # may have been added behind the log, so fall through).
            return overlay.lookup(fingerprint)
        if self._filter_definitely_absent(fingerprint):
            # Overlay first — a key learned since the last compaction
            # must answer even though the base filters reject it.
            if fingerprint in overlay:
                return overlay.lookup(fingerprint)
            return []
        base = super().lookup(fingerprint)
        if len(overlay) == 0 or fingerprint not in overlay:
            return base
        return _merge_labels(base, overlay.lookup(fingerprint))

    def lookup_counts(self, fingerprint: Optional[Fingerprint]) -> Dict[str, int]:
        """Repetition counts for one key, ``base ∪ overlay`` (summed)."""
        if fingerprint is None:
            return {}
        overlay = self._delta.overlay
        if fingerprint in self._delta_new_keys and not self._base_mutated():
            return overlay.lookup_counts(fingerprint)
        if self._filter_definitely_absent(fingerprint):
            if fingerprint in overlay:
                return overlay.lookup_counts(fingerprint)
            return {}
        base = super().lookup_counts(fingerprint)
        if len(overlay) == 0 or fingerprint not in overlay:
            return base
        merged = dict(base)
        for label, count in overlay.lookup_counts(fingerprint).items():
            merged[label] = merged.get(label, 0) + count
        return merged

    def overlay_keys(self) -> List[Fingerprint]:
        """Keys with pending overlay observations (append order)."""
        return [fp for fp, _ in self._delta.overlay.entries()]

    def overlay_tuple_entries(
        self, metric: str, interval: Tuple[float, float]
    ) -> Dict[Tuple[int, float], Entry]:
        """Merged ``(node, value)`` entries for the overlay's keys of one
        (metric, interval), computed from *live* state via :meth:`lookup`
        — the patch the generic fallback dict index needs, valid even
        when a shard was mutated behind the delta-log.
        """
        overlay = self._delta.overlay
        out: Dict[Tuple[int, float], Entry] = {}
        if len(overlay) == 0:
            return out
        key_interval = (float(interval[0]) + 0.0, float(interval[1]) + 0.0)
        for fp, _ in overlay.entries():
            if str(fp.metric) != str(metric):
                continue
            if (float(fp.interval[0]) + 0.0,
                    float(fp.interval[1]) + 0.0) != key_interval:
                continue
            labels = self.lookup(fp)
            apps = tuple(dict.fromkeys(app_of_label(l) for l in labels))
            out[(fp.node, fp.value)] = (labels, apps)
        return out

    def stats(self) -> DictionaryStats:
        if not self._delta.pending:
            return super().stats()
        # Merged scan: base per-shard stats cannot be adjusted without
        # per-key overlay merging anyway, so walk the merged view once.
        n_keys = 0
        n_insertions = 0
        colliding = 0
        max_labels = 0
        all_labels: Dict[str, None] = {}
        for fp, labels in self.entries():
            n_keys += 1
            n_insertions += sum(self.lookup_counts(fp).values())
            apps = {app_of_label(l) for l in labels}
            if len(apps) > 1:
                colliding += 1
            max_labels = max(max_labels, len(labels))
            for label in labels:
                all_labels.setdefault(label, None)
        return DictionaryStats(
            n_keys=n_keys,
            n_insertions=n_insertions,
            n_labels=len(all_labels),
            n_colliding_keys=colliding,
            max_labels_per_key=max_labels,
        )

    # -- vectorized lookup ---------------------------------------------------
    @property
    def pristine(self) -> bool:
        """True while the base columns reflect every shard's live state.

        Delta-routed writes keep the store pristine (they never touch
        the shards); only a direct shard mutation clears it.
        """
        return not self._base_mutated()

    def _concat(self) -> Dict[str, np.ndarray]:
        """All shards' columns concatenated (global row = shard-major)."""
        if self._concat_cache is None:
            parts = [self._files[i].columns() for i in range(self.n_shards)]
            if len(parts) == 1:
                # Zero-copy: with one shard the global rows *are* the
                # shard's rows, so the vectorized indexes build directly
                # over the (for mmap storage, memory-mapped) arrays.
                self._concat_cache = parts[0]
                return self._concat_cache
            offsets = [np.zeros(1, dtype=np.int64)]
            shift = 0
            for part in parts:
                offsets.append(part["label_offsets"][1:] + shift)
                shift += part["label_offsets"][-1]
            self._concat_cache = {
                "node": np.concatenate([p["node"] for p in parts]),
                "value": np.concatenate([p["value"] for p in parts]),
                "metric_id": np.concatenate([p["metric_id"] for p in parts]),
                "interval_id": np.concatenate(
                    [p["interval_id"] for p in parts]
                ),
                "label_offsets": np.concatenate(offsets),
                "label_ids": np.concatenate([p["label_ids"] for p in parts]),
            }
        return self._concat_cache

    def _labels_of_row(self, row: int) -> List[str]:
        found = self._row_labels.get(row)
        if found is None:
            columns = self._concat()
            lo = columns["label_offsets"][row]
            hi = columns["label_offsets"][row + 1]
            table = self._label_table
            found = [table[j] for j in columns["label_ids"][lo:hi].tolist()]
            self._row_labels[row] = found
        return found

    def _entry(self, row: int) -> Entry:
        found = self._row_entries.get(row)
        if found is None:
            labels = self._labels_of_row(row)
            apps = tuple(dict.fromkeys(app_of_label(l) for l in labels))
            found = (labels, apps)
            self._row_entries[row] = found
        return found

    def batch_index(
        self, metric: str, interval: Tuple[float, float]
    ) -> Optional[ColumnarBatchIndex]:
        """Vectorized ``(node, value)`` index for one (metric, interval).

        With pending overlay keys the sorted base table is reused as-is
        and wrapped with a per-key patch (:class:`_PatchedBatchIndex`)
        — a write trickle never rebuilds the expensive half.  On a
        filtered store the returned index is additionally guarded
        (:class:`_FilterGuardedBatchIndex`): the real index is not
        built — no column file is even read — until a batch carries a
        probe that survives the per-shard Bloom filters, so unknown-
        heavy record traffic resolves at filter speed.  ``None`` when a
        shard was mutated behind the delta-log (the base columns are
        stale) or the rank space cannot pack into 64 bits on an
        unfiltered store — callers fall back to the generic dict index
        and count a demotion.
        """
        if self._base_mutated():
            return None
        key = (
            str(metric),
            (float(interval[0]) + 0.0, float(interval[1]) + 0.0),
        )
        if self._filters is not None:
            built = self._batch_indices.get(key)
            if built is not None:
                base: Optional[ColumnarBatchIndex] = built
            else:
                base = self._guard_indices.get(key)
                if base is None:
                    base = _FilterGuardedBatchIndex(self, key)
                    self._guard_indices[key] = base
        else:
            base = self._built_batch_index(key)
        if base is None:
            return None
        patch = self._overlay_patch(key)
        if not patch:
            return base
        return _PatchedBatchIndex(base, patch)

    def _built_batch_index(
        self, key: Tuple[str, Tuple[float, float]]
    ) -> Optional[ColumnarBatchIndex]:
        """The real (eagerly built) index for ``key``; ``None`` on
        rank-space overflow.  Cached — the sort runs once per key."""
        if key in self._batch_indices:
            return self._batch_indices[key]
        columns = self._concat()
        metric_id = self._metric_map.get(key[0])
        interval_id = self._interval_map.get(key[1])
        if metric_id is None or interval_id is None:
            rows = np.empty(0, dtype=np.int64)
        else:
            rows = np.nonzero(
                (columns["metric_id"] == metric_id)
                & (columns["interval_id"] == interval_id)
            )[0].astype(np.int64)
        try:
            base: Optional[ColumnarBatchIndex] = ColumnarBatchIndex(
                self,
                columns["node"][rows],
                _value_bits(columns["value"][rows]),
                rows,
            )
        except OverflowError:
            base = None
        self._batch_indices[key] = base
        return base

    def _overflow_resolve(
        self, key: Tuple[str, Tuple[float, float]],
        nodes: np.ndarray, values: np.ndarray,
    ) -> Dict[Tuple[int, float], Entry]:
        """Exact ``(node, value)`` resolution without rank-packing.

        The guard's fallback when the real index cannot be built
        (rank-space overflow — astronomically large stores): a plain
        dict over the key's rows, built once from the columns.
        """
        table = self._overflow_dicts.get(key)
        if table is None:
            table = {}
            columns = self._concat()
            metric_id = self._metric_map.get(key[0])
            interval_id = self._interval_map.get(key[1])
            if metric_id is not None and interval_id is not None:
                rows = np.nonzero(
                    (columns["metric_id"] == metric_id)
                    & (columns["interval_id"] == interval_id)
                )[0]
                row_nodes = columns["node"][rows]
                row_values = columns["value"][rows] + 0.0
                for n_, v_, r_ in zip(
                    row_nodes.tolist(), row_values.tolist(), rows.tolist()
                ):
                    table[(int(n_), float(v_))] = int(r_)
            self._overflow_dicts[key] = table
        out: Dict[Tuple[int, float], Entry] = {}
        usable = np.nonzero(values == values)[0]
        for i in usable.tolist():
            probe = (int(nodes[i]), float(values[i]))
            row = table.get(probe)
            if row is not None:
                out[probe] = self._entry(row)
        return out

    def _overlay_patch(
        self, key: Tuple[str, Tuple[float, float]]
    ) -> Dict[Tuple[int, float], Entry]:
        """Merged entries for the overlay's keys of one (metric, interval).

        Invalidated wholesale on every write (the overlay is small, so
        a rebuild is O(pending) against the vectorized base resolve).
        """
        overlay = self._delta.overlay
        if len(overlay) == 0:
            return {}
        cached = self._patch_cache.get(key)
        if cached is not None:
            return cached
        metric, interval = key
        fps = [
            fp for fp, _ in overlay.entries()
            if str(fp.metric) == metric
            and (float(fp.interval[0]) + 0.0,
                 float(fp.interval[1]) + 0.0) == interval
        ]
        patch: Dict[Tuple[int, float], Entry] = {}
        for fp, base_labels in zip(fps, self._base_labels_many(fps)):
            labels = _merge_labels(base_labels, overlay.lookup(fp))
            apps = tuple(dict.fromkeys(app_of_label(l) for l in labels))
            patch[(int(fp.node), float(fp.value))] = (labels, apps)
        self._patch_cache[key] = patch
        return patch

    def _ensure_full_index(self) -> object:
        """The base columns' full-key index (``"overflow"`` sentinel when
        the rank space cannot pack into 64 bits)."""
        if self._full_index is None:
            columns = self._concat()
            try:
                self._full_index = _RankPackedIndex(
                    [
                        columns["metric_id"],
                        columns["interval_id"],
                        columns["node"],
                        _value_bits(columns["value"]),
                    ],
                    np.arange(len(columns["node"]), dtype=np.int64),
                )
            except OverflowError:
                self._full_index = "overflow"
        return self._full_index

    def _probe_arrays(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fingerprints as the (metric_id, interval_id, node, value_bits)
        component arrays every vectorized path consumes; unknown metric/
        interval strings map to id ``-1`` (a guaranteed miss)."""
        n = len(fingerprints)
        metric_id = np.empty(n, dtype=np.int64)
        interval_id = np.empty(n, dtype=np.int64)
        node = np.empty(n, dtype=np.int64)
        value = np.empty(n, dtype=np.float64)
        for i, fp in enumerate(fingerprints):
            metric_id[i] = self._metric_map.get(str(fp.metric), -1)
            interval_id[i] = self._interval_map.get(
                (float(fp.interval[0]) + 0.0, float(fp.interval[1]) + 0.0),
                -1,
            )
            node[i] = int(fp.node)
            value[i] = float(fp.value)
        return metric_id, interval_id, node, _value_bits(value)

    def _base_resolve(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Optional[np.ndarray]:
        """Base-column row per fingerprint (-1 on miss); ``None`` on
        rank-space overflow."""
        index = self._ensure_full_index()
        if index == "overflow":
            return None
        metric_id, interval_id, node, bits = self._probe_arrays(fingerprints)
        return index.resolve([metric_id, interval_id, node, bits])

    def _base_has(self, fingerprint: Fingerprint) -> bool:
        """Base-column membership without hydrating a shard.

        The write path calls this once per first-seen overlay key; a
        "definitely absent" filter answer settles it without touching a
        column file, otherwise the full-key index answers from the
        column arrays (built on first use).  Under rank-space overflow
        it falls back to hydrating the owning shard.
        """
        if self._filter_definitely_absent(fingerprint):
            return False
        rows = self._base_resolve([fingerprint])
        if rows is None:
            return ShardedDictionary.__contains__(self, fingerprint)
        return bool(rows[0] >= 0)

    # -- negative-lookup filters ---------------------------------------------
    def _filter_might(self, hashes: np.ndarray) -> np.ndarray:
        """Boolean per probe hash: could *any* shard's base hold it?

        The union over the per-shard filters — sound because a key
        absent from every shard filter is absent from the base (Bloom
        filters have no false negatives).  Probing all shards instead
        of stable-hash-routing each probe keeps the check one NumPy
        gather per (shard, hash function) with no Python per-key work.
        """
        out = np.zeros(len(hashes), dtype=bool)
        for built in self._filters:
            out |= built.might_contain(hashes)
        return out

    def _filter_definitely_absent(self, fingerprint: Fingerprint) -> bool:
        """True when the filters prove the base lacks this key (exact).

        False when filters are absent, a shard was mutated behind the
        delta-log (the filters describe stale columns), or the key
        *might* be present — callers then take the exact path.
        """
        if self._filters is None or self._base_mutated():
            return False
        metric_id = self._metric_map.get(str(fingerprint.metric))
        if metric_id is None:
            return True
        interval_id = self._interval_map.get(
            (float(fingerprint.interval[0]) + 0.0,
             float(fingerprint.interval[1]) + 0.0)
        )
        if interval_id is None:
            return True
        hashes = key_hashes(
            np.asarray([metric_id], dtype=np.int64),
            np.asarray([interval_id], dtype=np.int64),
            np.asarray([int(fingerprint.node)], dtype=np.int64),
            _value_bits(np.asarray([float(fingerprint.value)])),
        )
        return not bool(self._filter_might(hashes)[0])

    def _shard_start_rows(self) -> np.ndarray:
        """Global row of each shard's first key (shard-major concat)."""
        if self._shard_starts is None:
            counts = np.asarray(
                [f.n_keys for f in self._files], dtype=np.int64
            )
            starts = np.zeros(self.n_shards, dtype=np.int64)
            np.cumsum(counts[:-1], out=starts[1:])
            self._shard_starts = starts
        return self._shard_starts

    def _shard_hash_index(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Shard ``i``'s ``(sorted hashes, row order)`` table (cached).

        Read from the ``shard-NN.hashidx`` sidecar written at save time
        — no per-row hashing, no sort, no column bytes.  Directories
        written before the sidecar existed fall back to computing the
        table from the shard's (checksummed) columns; either way the
        base is immutable, so the cache never invalidates.
        """
        found = self._hash_index_cache.get(i)
        if found is not None:
            return found
        meta = (
            self._filter_hash_meta[i]
            if self._filter_hash_meta is not None else {}
        )
        name = meta.get("hash_file")
        if name is None:
            columns = self._files[i].columns()
            hashes = key_hashes(
                columns["metric_id"],
                columns["interval_id"],
                columns["node"],
                _value_bits(columns["value"]),
            )
            order = np.argsort(hashes, kind="stable")
            found = (hashes[order], order)
        else:
            path = os.path.join(self._directory, name)
            if not os.path.isfile(path):
                raise FileNotFoundError(
                    f"columnar EFD is incomplete: missing hash-index "
                    f"file {name!r}"
                )
            with open(path, "rb") as fh:
                data = fh.read()
            expected = meta.get("hash_checksum")
            if expected is not None and _checksum_bytes(data) != expected:
                raise ValueError(
                    f"hash-index file {name!r} is corrupt: checksum "
                    f"mismatch (expected {expected})"
                )
            found = unpack_hash_index(data, name)
            if len(found[0]) != self._files[i].n_keys:
                raise ValueError(
                    f"hash-index file {name!r} lists {len(found[0])} keys "
                    f"but the manifest expects {self._files[i].n_keys}"
                )
        self._hash_index_cache[i] = found
        return found

    def _labels_of_base_row(self, shard: int, local: int) -> List[str]:
        """Labels of one base row, reading only its own shard.

        Shares the global-row cache with :meth:`_labels_of_row` but
        hydrates nothing beyond the touched shard — for the mmap
        storage only the faulted pages, via ``peek_columns`` (the
        whole-file checksum still runs on the first bulk access).
        """
        row = int(self._shard_start_rows()[shard]) + local
        found = self._row_labels.get(row)
        if found is None:
            columns = self._files[shard].peek_columns()
            lo = columns["label_offsets"][local]
            hi = columns["label_offsets"][local + 1]
            table = self._label_table
            found = [table[j] for j in columns["label_ids"][lo:hi].tolist()]
            self._row_labels[row] = found
        return found

    def _hash_scan(self, shards, metric_id, interval_id, node, bits):
        """``(shard, row-in-shard)`` per probe (``-1`` on miss), exact.

        For a handful of filter-passing probes, a ``searchsorted`` into
        each routed shard's persisted sorted-hash table beats building
        the full rank-packed index (which must read and sort every
        column).  Hash matches are verified against the real columns —
        of that shard only — so the result is exact even across hash
        collisions.
        """
        probe_hashes = key_hashes(metric_id, interval_id, node, bits)
        out_shard = np.full(len(probe_hashes), -1, dtype=np.int64)
        out_row = np.full(len(probe_hashes), -1, dtype=np.int64)
        for s in np.unique(shards).tolist():
            mine = np.flatnonzero(shards == s)
            table, order = self._shard_hash_index(s)
            left = np.searchsorted(table, probe_hashes[mine], side="left")
            right = np.searchsorted(table, probe_hashes[mine], side="right")
            matched = np.flatnonzero(right > left)
            if len(matched) == 0:
                continue
            columns = self._files[s].peek_columns()
            for j in matched.tolist():
                i = int(mine[j])
                want = (int(metric_id[i]), int(interval_id[i]),
                        int(node[i]), int(bits[i]))
                for local in order[left[j]:right[j]].tolist():
                    got = (
                        int(columns["metric_id"][local]),
                        int(columns["interval_id"][local]),
                        int(columns["node"][local]),
                        int(_value_bits(columns["value"][local:local + 1])[0]),
                    )
                    if got == want:
                        out_shard[i] = s
                        out_row[i] = local
                        break
        return out_shard, out_row

    def _filtered_resolve(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Optional[List[List[str]]]:
        """Base label lists via the filters, or ``None`` to defer.

        The cold-path resolver behind :meth:`lookup_many`: probes that
        fail every shard filter are exact misses and cost no column
        access; a small surviving set (``<= _SCAN_MAX`` — real hits
        plus the filters' ~1% false positives) resolves by hash-scan.
        A larger surviving set means the batch is hit-heavy and the
        full rank-packed index is worth building — ``None`` sends the
        caller there.
        """
        metric_id, interval_id, node, bits = self._probe_arrays(fingerprints)
        might = (metric_id >= 0) & (interval_id >= 0)
        if might.any():
            hashes = key_hashes(metric_id, interval_id, node, bits)
            might &= self._filter_might(hashes)
        survivors = np.flatnonzero(might)
        results: List[List[str]] = [[] for _ in range(len(fingerprints))]
        if len(survivors) == 0:
            return results
        if len(survivors) > _SCAN_MAX:
            return None
        # Keys live only in their stable-hash shard, so each survivor
        # probes exactly one shard's hash table — untouched shards stay
        # unread (for npz, undecompressed).
        routes = np.asarray(
            [shard_index(fingerprints[i], self.n_shards)
             for i in survivors.tolist()],
            dtype=np.int64,
        )
        found_shard, found_row = self._hash_scan(
            routes, metric_id[survivors], interval_id[survivors],
            node[survivors], bits[survivors],
        )
        for probe, s, local in zip(
            survivors.tolist(), found_shard.tolist(), found_row.tolist()
        ):
            if local >= 0:
                results[probe] = list(self._labels_of_base_row(s, local))
        return results

    def warm_index(self) -> None:
        """Prebuild the session batch path to steady-state shape.

        What serve warm-start calls: builds the full-key rank-packed
        index (and thereby reads — for mmap, prefaults — every column),
        so the first live micro-batch resolves at steady-state latency
        whether it is hit- or miss-heavy.  The filters are already
        resident from load.
        """
        self._ensure_full_index()

    def filter_info(self) -> Optional[dict]:
        """Summary of the negative-lookup filters; None if this store
        predates them (``efd engine info`` renders this)."""
        if self._filters is None:
            return None
        return {
            "bits_per_key": self._filter_bits_per_key,
            "n_shards": len(self._filters),
            "n_keys": sum(f.n_keys for f in self._filters),
            "fp_bound": max((f.fp_bound for f in self._filters),
                            default=0.0),
        }

    def _base_labels_many(
        self, fingerprints: Sequence[Fingerprint]
    ) -> List[List[str]]:
        """Base-column label list per fingerprint ([] on miss)."""
        rows = self._base_resolve(fingerprints)
        if rows is None:
            return [
                ShardedDictionary.lookup(self, fp) for fp in fingerprints
            ]
        return [
            list(self._labels_of_row(int(row))) if row >= 0 else []
            for row in rows.tolist()
        ]

    def lookup_many(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Optional[List[List[str]]]:
        """Label lists for many full keys, ``base ∪ overlay``, vectorized.

        Equivalent to ``[self.lookup(fp) for fp in fingerprints]`` but
        without hydrating any shard: base keys resolve through the
        rank-packed full-key index, then the overlay's few keys patch
        their slots.  On a filtered store that has not yet built that
        index, the per-shard Bloom filters are consulted *first*: an
        unknown-heavy batch resolves at filter speed (plus a hash-scan
        for the few filter-passing probes) without paying the index's
        column read and sort — the cold negative-lookup fast path.
        ``None`` when a shard was mutated behind the delta-log or the
        rank space overflows — callers fall back to per-shard Python
        lookups.
        """
        if self._base_mutated():
            return None
        results: Optional[List[List[str]]] = None
        if self._filters is not None and self._full_index is None:
            results = self._filtered_resolve(fingerprints)
        if results is None:
            rows = self._base_resolve(fingerprints)
            if rows is None:
                return None
            # Fresh list per result, like lookup() — callers may mutate
            # theirs; the row cache must never alias out.
            results = [
                list(self._labels_of_row(int(row))) if row >= 0 else []
                for row in rows.tolist()
            ]
        overlay = self._delta.overlay
        if len(overlay):
            for i, fp in enumerate(fingerprints):
                if fp in overlay:
                    results[i] = _merge_labels(results[i], overlay.lookup(fp))
        return results

    def __repr__(self) -> str:
        hydrated = sum(1 for s in self.shards if s.hydrated)
        return (
            f"ColumnarDictionary(n_shards={self.n_shards}, keys={len(self)}, "
            f"hydrated={hydrated}/{self.n_shards}, at={self._directory!r})"
        )


# ---------------------------------------------------------------------------
# Loading and conversion
# ---------------------------------------------------------------------------

def _read_manifest(directory: str) -> dict:
    manifest_path = os.path.join(directory, _MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise FileNotFoundError(
            f"no sharded EFD at {directory!r}: missing {_MANIFEST_NAME}"
        )
    with open(manifest_path, "r", encoding="utf-8") as fh:
        try:
            return json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"corrupt manifest {manifest_path!r}: {exc}"
            ) from exc


def is_columnar(directory: str) -> bool:
    """True when ``directory`` holds a columnar-layout sharded EFD."""
    return _read_manifest(directory).get("layout") == _COLUMNAR_LAYOUT


def load_columnar(
    directory: str,
    validate: bool = True,
    delta_max_pending: int = DEFAULT_MAX_PENDING,
) -> ColumnarDictionary:
    """Open a columnar directory written by :func:`save_columnar`.

    Only the manifest is read here — O(shards) work, no per-key Python
    objects — unless a pending ``delta-log.jsonl`` exists, in which case
    its records replay into the in-memory overlay (column files are
    consulted for membership, still no per-key hydration).  Shard files
    are read, checksummed, and decoded on first probe; with ``validate``
    (default) hydration additionally checks that every decoded key
    hashes to its host shard, catching renamed or swapped ``.npz`` files
    exactly like the JSON loader does.  Structural manifest damage
    (wrong counts, out-of-range or duplicate key-order entries,
    inconsistent app order) is rejected eagerly.  ``delta_max_pending``
    is the pending-record count at which a write auto-compacts.
    """
    manifest = _read_manifest(directory)
    if manifest.get("layout") != _COLUMNAR_LAYOUT:
        raise ValueError(
            f"sharded EFD at {directory!r} is not columnar "
            f"(layout={manifest.get('layout')!r}); use load_sharded"
        )
    version = manifest.get("format_version")
    if version != _COLUMNAR_FORMAT_VERSION:
        raise ValueError(
            f"unsupported columnar EFD format version {version!r} "
            f"(expected {_COLUMNAR_FORMAT_VERSION})"
        )
    storage = manifest.get("storage", "npz")
    if storage not in COLUMNAR_STORAGES:
        raise ValueError(
            f"unsupported columnar storage {storage!r} "
            f"(expected one of {COLUMNAR_STORAGES})"
        )
    n_shards = int(manifest["n_shards"])
    if n_shards < 1:
        raise ValueError(f"manifest n_shards must be >= 1, got {n_shards}")
    shard_meta = manifest.get("shards", [])
    if len(shard_meta) != n_shards:
        raise ValueError(
            f"manifest lists {len(shard_meta)} shard files for "
            f"n_shards={n_shards}"
        )
    label_order = manifest.get("label_order", [])
    derived_apps: Dict[str, None] = {}
    for label in label_order:
        derived_apps.setdefault(app_of_label(label), None)
    declared_apps = manifest.get("app_order")
    if declared_apps is not None and list(declared_apps) != list(derived_apps):
        raise ValueError(
            "manifest app_order disagrees with label_order — manifest is "
            "corrupt"
        )
    n_keys_per_shard = [int(meta["n_keys"]) for meta in shard_meta]
    key_shard, key_pos = _read_key_order(
        directory, manifest, sum(n_keys_per_shard), n_keys_per_shard, n_shards
    )
    return ColumnarDictionary(
        directory, manifest, key_shard, key_pos, validate=validate,
        delta_max_pending=delta_max_pending,
    )


def _read_key_order(directory, manifest, n_total, n_keys_per_shard, n_shards):
    """Read and structurally validate ``key-order.npz``, vectorized."""
    meta = manifest.get("key_order_file")
    if meta is None:
        raise ValueError(
            "manifest has no key_order_file entry — manifest is corrupt"
        )
    name = meta["file"]
    path = os.path.join(directory, name)
    if not os.path.isfile(path):
        raise FileNotFoundError(
            f"columnar EFD at {directory!r} is incomplete: missing "
            f"key-order file {name!r}"
        )
    with open(path, "rb") as fh:
        data = fh.read()
    expected = meta.get("checksum")
    if expected is not None and _checksum_bytes(data) != expected:
        raise ValueError(
            f"key-order file {name!r} is corrupt: checksum mismatch "
            f"(expected {expected})"
        )
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as payload:
            key_shard = payload["shard"].astype(np.int64, copy=False)
            key_pos = payload["pos"].astype(np.int64, copy=False)
    except KeyError as exc:
        raise ValueError(
            f"key-order file {name!r} is corrupt: missing member {exc}"
        ) from exc
    except Exception as exc:
        raise ValueError(
            f"key-order file {name!r} is corrupt: {exc}"
        ) from exc
    if len(key_shard) != n_total or len(key_pos) != n_total:
        raise ValueError(
            f"key_order lists {len(key_shard)} keys but shard files hold "
            f"{n_total}"
        )
    if n_total:
        if key_shard.min() < 0 or key_shard.max() >= n_shards:
            raise ValueError(
                "key_order entry is out of range — manifest and shard "
                "files disagree"
            )
        counts = np.asarray(n_keys_per_shard, dtype=np.int64)
        limits = counts[key_shard]
        if np.any((key_pos < 0) | (key_pos >= limits)):
            raise ValueError(
                "key_order entry is out of range — manifest and shard "
                "files disagree"
            )
        # Duplicate check without sorting: the range checks above bound
        # every (shard, pos) pair into a dense [0, n_total) slot, so a
        # boolean scatter covering fewer than n_total slots proves a
        # repeat.  (np.unique here cost ~0.4 s on a 1M-key open.)
        starts = np.zeros(n_shards, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        seen = np.zeros(n_total, dtype=bool)
        seen[starts[key_shard] + key_pos] = True
        if int(np.count_nonzero(seen)) != n_total:
            raise ValueError(
                "key_order lists an entry twice — manifest is corrupt"
            )
    return key_shard, key_pos


def _manifest_files(manifest: dict) -> List[str]:
    """Every data file a columnar manifest references (filters included)."""
    names = [meta["file"] for meta in manifest.get("shards", [])]
    key_order = manifest.get("key_order_file")
    if key_order is not None:
        names.append(key_order["file"])
    filters = manifest.get("filters")
    if filters is not None:
        for meta in filters.get("shards", []):
            names.append(meta["file"])
            if meta.get("hash_file") is not None:
                names.append(meta["hash_file"])
    return names


def _remove_superseded_files(directory: str, old_manifest: dict,
                             new_manifest: dict) -> None:
    """Delete data files the old manifest named but the new one does not
    (post-commit cleanup of a compaction or reshard rewrite)."""
    keep = set(_manifest_files(new_manifest))
    for name in _manifest_files(old_manifest):
        if name in keep:
            continue
        path = os.path.join(directory, name)
        if os.path.isfile(path):
            os.remove(path)


def _in_place(directory: str, out: Optional[str]) -> bool:
    return out is None or os.path.abspath(out) == os.path.abspath(directory)


def _dir_bytes(directory: str, names: Sequence[str]) -> int:
    total = 0
    for name in names:
        path = os.path.join(directory, name)
        if os.path.isfile(path):
            total += os.path.getsize(path)
    return total


def compact_shards(directory: str, out: Optional[str] = None,
                   layout: Optional[str] = None) -> dict:
    """Convert a JSON shard directory to the columnar layout — or fold
    a columnar directory's pending delta-log into its base, or switch a
    columnar directory between the npz and mmap storages.

    ``layout`` picks the columnar storage (``"npz"`` compressed
    archives, ``"mmap"`` raw memory-mapped files); ``None`` means npz
    for a JSON source and "keep the current storage" for a columnar
    one.  In place by default (the superseded files are removed after
    the new ones are committed); pass ``out`` to write elsewhere and
    leave the source untouched.  Returns a summary dict with key
    counts, the resulting storage, and on-disk byte sizes.

    On a directory that is *already* columnar: a pending
    ``delta-log.jsonl`` is folded into the base (the summary carries
    ``folded_records``), and a ``layout`` differing from the current
    storage rewrites the base files in the requested storage — with
    filters, generation advanced, committed by one atomic manifest
    replace exactly like a compaction.  A clean columnar directory with
    no storage change requested is an error, as before.
    """
    from repro.engine.deltalog import segment_path
    from repro.engine.sharded import load_sharded

    if layout is not None and layout not in COLUMNAR_STORAGES:
        raise ValueError(
            f"unknown columnar storage {layout!r} "
            f"(expected one of {COLUMNAR_STORAGES})"
        )
    manifest = _read_manifest(directory)
    if manifest.get("layout") == _COLUMNAR_LAYOUT:
        current = manifest.get("storage", "npz")
        target_storage = layout or current
        generation = int(manifest.get("delta_generation", 0))
        n_pending = pending_records(directory, generation)
        if not n_pending and target_storage == current:
            raise ValueError(
                f"sharded EFD at {directory!r} is already columnar "
                f"({current} storage, no pending delta-log to fold)"
            )
        store = load_columnar(directory)
        in_place = _in_place(directory, out)
        target = directory if in_place else out
        if not in_place:
            folded = store.delta_pending
            save_columnar(store, out, storage=target_storage)
        elif target_storage == current:
            folded = store.compact_delta()
        else:
            # Storage switch (folding any pending records with it):
            # the new base lands under generation-suffixed names and
            # one atomic manifest replace commits it, exactly like a
            # compaction — a crash mid-switch leaves the old storage
            # loading cleanly.
            folded = store.delta_pending
            merged = ShardedDictionary(store.n_shards)
            merged.merge(store)
            save_columnar(
                merged, directory, generation=generation + 1,
                storage=target_storage,
            )
            _remove_superseded_files(
                directory, manifest, _read_manifest(directory)
            )
            segment = segment_path(directory)
            if os.path.isfile(segment):
                os.remove(segment)
        new_manifest = _read_manifest(target)
        return {
            "n_keys": len(store),
            "n_shards": store.n_shards,
            "folded_records": folded,
            "storage": new_manifest.get("storage", "npz"),
            "columnar_bytes": _dir_bytes(
                target, _manifest_files(new_manifest) + [_MANIFEST_NAME]
            ),
            "directory": target,
        }
    sharded = load_sharded(directory)
    json_files = [meta["file"] for meta in manifest.get("shards", [])]
    json_bytes = _dir_bytes(directory, json_files + [_MANIFEST_NAME])
    target = directory if _in_place(directory, out) else out
    save_columnar(sharded, target, storage=layout or "npz")
    new_manifest = _read_manifest(target)
    columnar_bytes = _dir_bytes(
        target, _manifest_files(new_manifest) + [_MANIFEST_NAME]
    )
    if _in_place(directory, out):
        for name in json_files:
            path = os.path.join(directory, name)
            if os.path.isfile(path):
                os.remove(path)
    return {
        "n_keys": len(sharded),
        "n_shards": sharded.n_shards,
        "json_bytes": json_bytes,
        "storage": new_manifest.get("storage", "npz"),
        "columnar_bytes": columnar_bytes,
        "directory": target,
    }


def expand_shards(directory: str, out: Optional[str] = None) -> dict:
    """Convert a columnar directory back to the JSON shard layout.

    The exact inverse of :func:`compact_shards`: the rebuilt JSON
    directory loads to a dictionary equal to the original (keys, label
    orders, repetition counts).  In place by default; returns the same
    summary shape as :func:`compact_shards`.

    A directory with an unfolded delta-log segment is refused with
    :class:`~repro.engine.deltalog.PendingDeltaError` — the JSON layout
    has no delta-log, so expanding only the base columns would silently
    drop every append since the last compaction.  Compact first.
    """
    from repro.engine.sharded import save_sharded

    manifest = _read_manifest(directory)
    if manifest.get("layout") == _COLUMNAR_LAYOUT:
        generation = int(manifest.get("delta_generation", 0))
        n_pending = pending_records(directory, generation)
        if n_pending:
            raise PendingDeltaError(directory, n_pending)
    columnar = load_columnar(directory)
    columnar_files = _manifest_files(manifest)
    columnar_bytes = _dir_bytes(directory, columnar_files + [_MANIFEST_NAME])
    target = directory if _in_place(directory, out) else out
    save_sharded(columnar, target)
    new_manifest = _read_manifest(target)
    json_files = [meta["file"] for meta in new_manifest["shards"]]
    json_bytes = _dir_bytes(target, json_files + [_MANIFEST_NAME])
    if _in_place(directory, out):
        for name in columnar_files:
            path = os.path.join(directory, name)
            if os.path.isfile(path):
                os.remove(path)
    return {
        "n_keys": len(columnar),
        "n_shards": columnar.n_shards,
        "json_bytes": json_bytes,
        "columnar_bytes": columnar_bytes,
        "directory": target,
    }
