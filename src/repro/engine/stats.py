"""Engine counters: what the recognition service is actually doing.

A production recognizer needs operational visibility — how many
fingerprints were looked up, how often the dictionary answered, how
often it tied or came up empty, whether the shard layout is balanced,
and (once the async front-end is in front of it) how deep the ingest
queue runs, how big the micro-batches get, and how long a ready session
waits for its verdict.  :class:`EngineStats` is a plain counter object
fed by :class:`~repro.engine.batch.BatchRecognizer` and
:class:`~repro.serve.service.IngestService`, rendered by the ``efd
engine`` / ``efd serve`` CLI commands, and round-trippable through JSON
(:meth:`as_dict` / :meth:`from_dict`) so a service can export a snapshot
for later inspection with ``efd engine info --stats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.matcher import MatchResult


@dataclass
class EngineStats:
    """Cumulative recognition + serving counters (one instance per engine).

    The recognition block (batches/lookups/hits/ties/unknowns) is fed by
    every :class:`~repro.engine.batch.BatchRecognizer` call; the serving
    block (queue depth, sheds, late drops, evictions, latency) only
    moves when an :class:`~repro.serve.service.IngestService` drives the
    engine, and stays all-zero otherwise.
    """

    n_batches: int = 0
    n_executions: int = 0
    n_lookups: int = 0          # fingerprints looked up (missing nodes excluded)
    n_missing: int = 0          # nodes that produced no usable fingerprint
    n_hits: int = 0             # lookups that matched at least one label
    n_recognized: int = 0       # executions with a non-empty verdict
    n_ties: int = 0             # executions whose verdict was a tie array
    n_unknowns: int = 0         # executions with zero matches
    max_batch: int = 0          # largest batch resolved in one call
    index_demotions: int = 0    # batches answered by the generic dict index
                                # because a store's vectorized index no
                                # longer reflected its live state
    shard_occupancy: List[int] = field(default_factory=list)
    # -- serving counters (fed by repro.serve.IngestService) ------------------
    queue_depth: int = 0        # ingest-queue depth at the last submit
    queue_peak: int = 0         # deepest the ingest queue has been
    n_shed: int = 0             # samples dropped by backpressure/capacity
    n_late: int = 0             # samples arriving after the verdict was queued
    n_evicted: int = 0          # sessions evicted on timeout
    n_latencies: int = 0        # verdicts with a measured ready->verdict time
    total_latency: float = 0.0  # summed ready->verdict seconds
    max_latency: float = 0.0    # worst ready->verdict seconds
    # -- session gauges + retention (fed by IngestService) --------------------
    sessions_active: int = 0    # sessions open right now (no verdict yet)
    sessions_retained: int = 0  # completed sessions kept for verdict retrieval
    n_pruned: int = 0           # retained sessions auto-forgotten by retention
    # -- network listener counters (fed by repro.serve.net.NetListener) ------
    conns_accepted: int = 0     # producer connections ever accepted
    conns_active: int = 0       # producer connections open right now
    conns_dropped: int = 0      # connections closed on a protocol error
    n_protocol_errors: int = 0  # malformed / oversized / undecodable lines
    # -- replication counters (fed by repro.engine.replicate) -----------------
    repl_followers: int = 0           # follower streams open right now (leader)
    repl_segments_shipped: int = 0    # records frames sent to followers
    repl_records_shipped: int = 0     # delta-log records sent to followers
    repl_bytes_shipped: int = 0       # wire bytes sent (records + snapshots)
    repl_snapshots_shipped: int = 0   # full base snapshots sent
    repl_segments_applied: int = 0    # records frames applied (replica)
    repl_records_applied: int = 0     # delta-log records applied (replica)
    repl_bytes_applied: int = 0       # wire bytes applied (records + snapshots)
    repl_snapshots_applied: int = 0   # base swaps committed (replica)
    repl_lag_generations: int = 0     # generations behind the leader (gauge)
    repl_lag_records: int = 0         # records behind the leader (gauge)
    # -- remote fan-out counters (fed by repro.engine.remote) -----------------
    remote_calls: int = 0             # remote requests attempted (incl. retries)
    remote_keys: int = 0              # fingerprint keys probed remotely
    remote_timeouts: int = 0          # calls that hit a deadline/socket timeout
    remote_errors: int = 0            # calls refused / torn / protocol-failed
    remote_retries: int = 0           # re-dials after a failed call
    remote_hedges: int = 0            # duplicate probes launched to a replica
    remote_hedges_won: int = 0        # hedges that answered before the primary
    remote_hedges_lost: int = 0       # hedges beaten by the primary after all
    remote_breaker_opens: int = 0     # circuit breakers tripped open
    remote_degraded: int = 0          # keys resolved with a degraded verdict
    remote_bytes_sent: int = 0        # wire bytes shipped to shard hosts
    remote_bytes_received: int = 0    # wire bytes received from shard hosts
    remote_encode_s: float = 0.0      # wall seconds spent encoding requests
    remote_decode_s: float = 0.0      # wall seconds spent decoding replies
    remote_pool_checkouts: int = 0    # pooled-connection checkouts
    remote_pool_reuses: int = 0       # checkouts served by a live socket
    remote_pool_redials: int = 0      # checkouts that had to dial fresh
    filter_mirror_hits: int = 0       # probes resolved by a local filter
                                      # mirror (no wire round trip)
    # -- family-cascade counters (fed by repro.family.FamilyCascade) ----------
    family_coarse_hits: int = 0       # probes the coarse tier answered
    family_shortcircuits: int = 0     # probes rejected without touching the
                                      # fine tier (coarse projection missed)
    family_refinements: int = 0       # unique keys sent on to full depth
    family_near: int = 0              # near-family verdicts (same app, new
                                      # version) — would be unknowns flatly

    def record_batch(
        self,
        results: Sequence[MatchResult],
        n_hits: int,
        shard_occupancy: Optional[Sequence[int]] = None,
    ) -> None:
        """Fold one batch's outcomes into the counters."""
        self.n_batches += 1
        self.n_executions += len(results)
        self.max_batch = max(self.max_batch, len(results))
        self.n_hits += n_hits
        for result in results:
            self.n_lookups += result.n_fingerprints
            self.n_missing += result.n_missing
            if result.is_unknown:
                self.n_unknowns += 1
            else:
                self.n_recognized += 1
                if result.is_tie:
                    self.n_ties += 1
        if shard_occupancy is not None:
            self.shard_occupancy = list(shard_occupancy)

    def record_index_demotion(self) -> None:
        """One batch fell back from a store's vectorized lookup index to
        the generic dict index (e.g. a columnar shard mutated behind the
        delta-log, or a rank-space overflow).  A persistently non-zero
        counter on a columnar deployment means the fast path is lost —
        re-save or compact the store."""
        self.index_demotions += 1

    # -- serving-side recorders ----------------------------------------------
    def record_queue_depth(self, depth: int) -> None:
        """Note the ingest-queue depth observed after a submit."""
        self.queue_depth = depth
        if depth > self.queue_peak:
            self.queue_peak = depth

    def record_shed(self) -> None:
        """One sample refused: queue full or session cap, policy ``shed``."""
        self.n_shed += 1

    def record_late(self) -> None:
        """One sample dropped because its session's verdict was already
        queued or decided (cannot affect the fingerprint)."""
        self.n_late += 1

    def record_eviction(self) -> None:
        """One session evicted on inactivity timeout."""
        self.n_evicted += 1

    def record_latency(self, seconds: float) -> None:
        """One verdict's ready-to-resolved wall time."""
        self.n_latencies += 1
        self.total_latency += seconds
        if seconds > self.max_latency:
            self.max_latency = seconds

    def record_session_open(self) -> None:
        """One session opened (first sample of a new job id routed)."""
        self.sessions_active += 1

    def record_session_done(self) -> None:
        """One session resolved (verdict or error): active -> retained."""
        self.sessions_active -= 1
        self.sessions_retained += 1

    def record_session_forgotten(self, pruned: bool = False) -> None:
        """One retained session's state reclaimed (``pruned`` when the
        retention loop did it rather than an explicit ``forget``)."""
        self.sessions_retained -= 1
        if pruned:
            self.n_pruned += 1

    # -- network-listener recorders ------------------------------------------
    def record_conn_open(self) -> None:
        """One producer connection accepted by the network listener."""
        self.conns_accepted += 1
        self.conns_active += 1

    def record_conn_close(self, dropped: bool = False) -> None:
        """One producer connection closed (``dropped`` when the close
        was the listener's doing — a protocol error, not producer EOF)."""
        self.conns_active -= 1
        if dropped:
            self.conns_dropped += 1

    def record_protocol_error(self) -> None:
        """One line a producer sent that the listener refused."""
        self.n_protocol_errors += 1

    # -- replication recorders (fed by repro.engine.replicate) ----------------
    def record_follower_open(self) -> None:
        """One follower subscribed to this leader's stream."""
        self.repl_followers += 1

    def record_follower_close(self) -> None:
        """One follower stream ended (EOF, fault, or shutdown)."""
        self.repl_followers -= 1

    def record_segment_shipped(self, n_records: int, n_bytes: int) -> None:
        """One records frame sent to a follower."""
        self.repl_segments_shipped += 1
        self.repl_records_shipped += n_records
        self.repl_bytes_shipped += n_bytes

    def record_snapshot_shipped(self, n_bytes: int) -> None:
        """One full base snapshot sent to a follower."""
        self.repl_snapshots_shipped += 1
        self.repl_bytes_shipped += n_bytes

    def record_segment_applied(self, n_records: int, n_bytes: int) -> None:
        """One records frame applied to this replica's overlay."""
        self.repl_segments_applied += 1
        self.repl_records_applied += n_records
        self.repl_bytes_applied += n_bytes

    def record_snapshot_applied(self, n_bytes: int) -> None:
        """One base swap committed on this replica."""
        self.repl_snapshots_applied += 1
        self.repl_bytes_applied += n_bytes

    def record_replica_lag(self, generations: int, records: int) -> None:
        """This replica's distance behind the leader's last report."""
        self.repl_lag_generations = generations
        self.repl_lag_records = records

    # -- remote fan-out recorders (fed by repro.engine.remote) ----------------
    def record_remote_call(self, n_keys: int = 0) -> None:
        """One remote request attempted (retries and hedges count too)."""
        self.remote_calls += 1
        self.remote_keys += n_keys

    def record_remote_timeout(self) -> None:
        """One remote call gave up on a socket/deadline timeout."""
        self.remote_timeouts += 1

    def record_remote_error(self) -> None:
        """One remote call failed outright (refused, torn, protocol)."""
        self.remote_errors += 1

    def record_remote_retry(self) -> None:
        """One failed remote call re-dialed (after backoff)."""
        self.remote_retries += 1

    def record_remote_hedge(self, won: Optional[bool] = None) -> None:
        """One hedged probe launched; ``won`` records which copy
        answered first once the race resolves (None = launch only)."""
        if won is None:
            self.remote_hedges += 1
        elif won:
            self.remote_hedges_won += 1
        else:
            self.remote_hedges_lost += 1

    def record_breaker_open(self) -> None:
        """One per-host circuit breaker tripped open."""
        self.remote_breaker_opens += 1

    def record_remote_degraded(self, n_keys: int = 1) -> None:
        """``n_keys`` fingerprints resolved with a degraded verdict
        because every host of their shard was unreachable."""
        self.remote_degraded += n_keys

    def record_remote_wire(self, sent: int = 0, received: int = 0) -> None:
        """Wire bytes moved by one remote exchange (both directions)."""
        self.remote_bytes_sent += sent
        self.remote_bytes_received += received

    def record_remote_codec(
        self, encode_s: float = 0.0, decode_s: float = 0.0
    ) -> None:
        """Wall time one exchange spent in the probe codec."""
        self.remote_encode_s += encode_s
        self.remote_decode_s += decode_s

    def record_pool_checkout(self, reused: bool) -> None:
        """One pooled-connection checkout (``reused`` = a live socket
        answered; otherwise the pool had to dial)."""
        self.remote_pool_checkouts += 1
        if reused:
            self.remote_pool_reuses += 1
        else:
            self.remote_pool_redials += 1

    def record_filter_mirror_hits(self, n_keys: int = 1) -> None:
        """``n_keys`` probes resolved locally by a shard's Bloom-filter
        mirror — definite misses that never crossed the wire."""
        self.filter_mirror_hits += n_keys

    # -- family-cascade recorder (fed by repro.family.FamilyCascade) ----------
    def record_cascade(
        self,
        coarse_hits: int,
        short_circuits: int,
        refinements: int,
        near_family: int,
    ) -> None:
        """Fold one cascade batch's tier traffic into the counters.

        ``coarse_hits + short_circuits`` is the per-node probe count;
        ``refinements`` counts *unique* keys that actually reached the
        fine backend, so ``1 - refinements / probes`` is the fraction of
        traffic the coarse tier absorbed (the ``family-smoke`` gate)."""
        self.family_coarse_hits += coarse_hits
        self.family_shortcircuits += short_circuits
        self.family_refinements += refinements
        self.family_near += near_family

    # -- derived -------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched at least one label."""
        if self.n_lookups == 0:
            return 0.0
        return self.n_hits / self.n_lookups

    @property
    def unknown_rate(self) -> float:
        """Fraction of executions with an empty verdict."""
        if self.n_executions == 0:
            return 0.0
        return self.n_unknowns / self.n_executions

    @property
    def mean_batch(self) -> float:
        """Mean executions per resolved batch."""
        if self.n_batches == 0:
            return 0.0
        return self.n_executions / self.n_batches

    @property
    def mean_latency(self) -> float:
        """Mean ready-to-verdict seconds (0 when nothing was measured)."""
        if self.n_latencies == 0:
            return 0.0
        return self.total_latency / self.n_latencies

    @property
    def served(self) -> bool:
        """True when any serving counter has moved (an async front-end
        has driven this engine)."""
        return bool(
            self.queue_peak or self.n_shed or self.n_late
            or self.n_evicted or self.n_latencies
        )

    @property
    def replicating(self) -> bool:
        """True when any replication counter has moved (this engine is a
        publishing leader and/or a following replica)."""
        return bool(
            self.repl_followers or self.repl_segments_shipped
            or self.repl_snapshots_shipped or self.repl_segments_applied
            or self.repl_snapshots_applied or self.repl_lag_generations
            or self.repl_lag_records
        )

    @property
    def remote(self) -> bool:
        """True when any remote fan-out counter has moved (this engine
        probes shard servers over the wire)."""
        return bool(
            self.remote_calls or self.remote_keys or self.remote_timeouts
            or self.remote_errors or self.remote_retries
            or self.remote_hedges or self.remote_breaker_opens
            or self.remote_degraded or self.remote_bytes_sent
            or self.remote_bytes_received or self.remote_pool_checkouts
            or self.filter_mirror_hits
        )

    @property
    def cascading(self) -> bool:
        """True when any family-cascade counter has moved (a
        :class:`~repro.family.FamilyCascade` fronts this engine)."""
        return bool(
            self.family_coarse_hits or self.family_shortcircuits
            or self.family_refinements or self.family_near
        )

    @property
    def coarse_absorption(self) -> float:
        """Fraction of cascade probes the coarse tier resolved or
        rejected without a full-depth refinement (0 when idle)."""
        probes = self.family_coarse_hits + self.family_shortcircuits
        if probes == 0:
            return 0.0
        return 1.0 - self.family_refinements / probes

    # -- (de)serialization -----------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (counters + derived rates)."""
        return {
            "batches": self.n_batches,
            "executions": self.n_executions,
            "lookups": self.n_lookups,
            "missing": self.n_missing,
            "hits": self.n_hits,
            "hit_rate": round(self.hit_rate, 4),
            "recognized": self.n_recognized,
            "ties": self.n_ties,
            "unknowns": self.n_unknowns,
            "unknown_rate": round(self.unknown_rate, 4),
            "max_batch": self.max_batch,
            "index_demotions": self.index_demotions,
            "shard_occupancy": list(self.shard_occupancy),
            "queue_depth": self.queue_depth,
            "queue_peak": self.queue_peak,
            "shed": self.n_shed,
            "late": self.n_late,
            "evicted": self.n_evicted,
            "latencies": self.n_latencies,
            "total_latency_s": self.total_latency,
            "max_latency_s": self.max_latency,
            "sessions_active": self.sessions_active,
            "sessions_retained": self.sessions_retained,
            "pruned": self.n_pruned,
            "conns_accepted": self.conns_accepted,
            "conns_active": self.conns_active,
            "conns_dropped": self.conns_dropped,
            "protocol_errors": self.n_protocol_errors,
            "repl_followers": self.repl_followers,
            "repl_segments_shipped": self.repl_segments_shipped,
            "repl_records_shipped": self.repl_records_shipped,
            "repl_bytes_shipped": self.repl_bytes_shipped,
            "repl_snapshots_shipped": self.repl_snapshots_shipped,
            "repl_segments_applied": self.repl_segments_applied,
            "repl_records_applied": self.repl_records_applied,
            "repl_bytes_applied": self.repl_bytes_applied,
            "repl_snapshots_applied": self.repl_snapshots_applied,
            "repl_lag_generations": self.repl_lag_generations,
            "repl_lag_records": self.repl_lag_records,
            "remote_calls": self.remote_calls,
            "remote_keys": self.remote_keys,
            "remote_timeouts": self.remote_timeouts,
            "remote_errors": self.remote_errors,
            "remote_retries": self.remote_retries,
            "remote_hedges": self.remote_hedges,
            "remote_hedges_won": self.remote_hedges_won,
            "remote_hedges_lost": self.remote_hedges_lost,
            "remote_breaker_opens": self.remote_breaker_opens,
            "remote_degraded": self.remote_degraded,
            "remote_bytes_sent": self.remote_bytes_sent,
            "remote_bytes_received": self.remote_bytes_received,
            "remote_encode_s": self.remote_encode_s,
            "remote_decode_s": self.remote_decode_s,
            "remote_pool_checkouts": self.remote_pool_checkouts,
            "remote_pool_reuses": self.remote_pool_reuses,
            "remote_pool_redials": self.remote_pool_redials,
            "filter_mirror_hits": self.filter_mirror_hits,
            "family_coarse_hits": self.family_coarse_hits,
            "family_shortcircuits": self.family_shortcircuits,
            "family_refinements": self.family_refinements,
            "family_near": self.family_near,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineStats":
        """Rebuild from an :meth:`as_dict` snapshot (derived rates are
        recomputed, unknown keys ignored — snapshots stay loadable
        across counter additions)."""
        def _i(key: str) -> int:
            return int(payload.get(key, 0))

        return cls(
            n_batches=_i("batches"),
            n_executions=_i("executions"),
            n_lookups=_i("lookups"),
            n_missing=_i("missing"),
            n_hits=_i("hits"),
            n_recognized=_i("recognized"),
            n_ties=_i("ties"),
            n_unknowns=_i("unknowns"),
            max_batch=_i("max_batch"),
            index_demotions=_i("index_demotions"),
            shard_occupancy=[int(n) for n in payload.get("shard_occupancy", [])],
            queue_depth=_i("queue_depth"),
            queue_peak=_i("queue_peak"),
            n_shed=_i("shed"),
            n_late=_i("late"),
            n_evicted=_i("evicted"),
            n_latencies=_i("latencies"),
            total_latency=float(payload.get("total_latency_s", 0.0)),
            max_latency=float(payload.get("max_latency_s", 0.0)),
            sessions_active=_i("sessions_active"),
            sessions_retained=_i("sessions_retained"),
            n_pruned=_i("pruned"),
            conns_accepted=_i("conns_accepted"),
            conns_active=_i("conns_active"),
            conns_dropped=_i("conns_dropped"),
            n_protocol_errors=_i("protocol_errors"),
            repl_followers=_i("repl_followers"),
            repl_segments_shipped=_i("repl_segments_shipped"),
            repl_records_shipped=_i("repl_records_shipped"),
            repl_bytes_shipped=_i("repl_bytes_shipped"),
            repl_snapshots_shipped=_i("repl_snapshots_shipped"),
            repl_segments_applied=_i("repl_segments_applied"),
            repl_records_applied=_i("repl_records_applied"),
            repl_bytes_applied=_i("repl_bytes_applied"),
            repl_snapshots_applied=_i("repl_snapshots_applied"),
            repl_lag_generations=_i("repl_lag_generations"),
            repl_lag_records=_i("repl_lag_records"),
            remote_calls=_i("remote_calls"),
            remote_keys=_i("remote_keys"),
            remote_timeouts=_i("remote_timeouts"),
            remote_errors=_i("remote_errors"),
            remote_retries=_i("remote_retries"),
            remote_hedges=_i("remote_hedges"),
            remote_hedges_won=_i("remote_hedges_won"),
            remote_hedges_lost=_i("remote_hedges_lost"),
            remote_breaker_opens=_i("remote_breaker_opens"),
            remote_degraded=_i("remote_degraded"),
            remote_bytes_sent=_i("remote_bytes_sent"),
            remote_bytes_received=_i("remote_bytes_received"),
            remote_encode_s=float(payload.get("remote_encode_s", 0.0)),
            remote_decode_s=float(payload.get("remote_decode_s", 0.0)),
            remote_pool_checkouts=_i("remote_pool_checkouts"),
            remote_pool_reuses=_i("remote_pool_reuses"),
            remote_pool_redials=_i("remote_pool_redials"),
            filter_mirror_hits=_i("filter_mirror_hits"),
            family_coarse_hits=_i("family_coarse_hits"),
            family_shortcircuits=_i("family_shortcircuits"),
            family_refinements=_i("family_refinements"),
            family_near=_i("family_near"),
        )

    def render(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        lines = [
            f"batches     : {self.n_batches} "
            f"(max_size={self.max_batch}, mean_size={self.mean_batch:.1f})",
            f"executions  : {self.n_executions} "
            f"(recognized={self.n_recognized}, ties={self.n_ties}, "
            f"unknown={self.n_unknowns})",
            f"lookups     : {self.n_lookups} "
            f"(hits={self.n_hits}, hit_rate={self.hit_rate:.3f}, "
            f"missing_nodes={self.n_missing})",
        ]
        if self.index_demotions:
            lines.append(
                f"demotions   : {self.index_demotions} batch(es) answered by "
                f"the generic dict index (vectorized index stale — re-save "
                f"or compact the store)"
            )
        if self.shard_occupancy:
            total = sum(self.shard_occupancy) or 1
            occ = ", ".join(
                f"{i}:{n} ({n / total:.0%})"
                for i, n in enumerate(self.shard_occupancy)
            )
            lines.append(f"shard keys  : {occ}")
        if self.served:
            lines.append(
                f"ingest      : queue_depth={self.queue_depth} "
                f"(peak={self.queue_peak}), shed={self.n_shed}, "
                f"late={self.n_late}, evicted={self.n_evicted}"
            )
            lines.append(
                f"sessions    : active={self.sessions_active}, "
                f"retained={self.sessions_retained}, pruned={self.n_pruned}"
            )
            lines.append(
                f"latency     : mean={self.mean_latency * 1e3:.1f}ms "
                f"max={self.max_latency * 1e3:.1f}ms "
                f"over {self.n_latencies} verdict(s)"
            )
        if self.conns_accepted:
            lines.append(
                f"connections : accepted={self.conns_accepted}, "
                f"active={self.conns_active}, dropped={self.conns_dropped}, "
                f"protocol_errors={self.n_protocol_errors}"
            )
        if self.replicating:
            lines.append(
                f"replication : followers={self.repl_followers}, "
                f"shipped={self.repl_records_shipped} record(s)/"
                f"{self.repl_snapshots_shipped} snapshot(s)/"
                f"{self.repl_bytes_shipped} B, "
                f"applied={self.repl_records_applied} record(s)/"
                f"{self.repl_snapshots_applied} snapshot(s)/"
                f"{self.repl_bytes_applied} B"
            )
            lines.append(
                f"replica lag : {self.repl_lag_generations} generation(s), "
                f"{self.repl_lag_records} record(s)"
            )
        if self.remote:
            lines.append(
                f"remote      : calls={self.remote_calls} "
                f"({self.remote_keys} key(s)), "
                f"timeouts={self.remote_timeouts}, "
                f"errors={self.remote_errors}, retries={self.remote_retries}"
            )
            lines.append(
                f"resilience  : hedges={self.remote_hedges} "
                f"(won={self.remote_hedges_won}, "
                f"lost={self.remote_hedges_lost}), "
                f"breaker_opens={self.remote_breaker_opens}, "
                f"degraded={self.remote_degraded}"
            )
            lines.append(
                f"remote wire : sent={self.remote_bytes_sent} B, "
                f"received={self.remote_bytes_received} B, "
                f"encode={self.remote_encode_s * 1e3:.1f}ms, "
                f"decode={self.remote_decode_s * 1e3:.1f}ms"
            )
            lines.append(
                f"remote pool : checkouts={self.remote_pool_checkouts} "
                f"(reused={self.remote_pool_reuses}, "
                f"redialed={self.remote_pool_redials}), "
                f"mirror_hits={self.filter_mirror_hits}"
            )
        if self.cascading:
            lines.append(
                f"cascade     : coarse_hits={self.family_coarse_hits}, "
                f"short_circuits={self.family_shortcircuits}, "
                f"refinements={self.family_refinements} "
                f"(absorption={self.coarse_absorption:.0%}), "
                f"near_family={self.family_near}"
            )
        return "\n".join(lines)
