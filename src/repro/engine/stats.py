"""Engine counters: what the recognition service is actually doing.

A production recognizer needs operational visibility — how many
fingerprints were looked up, how often the dictionary answered, how
often it tied or came up empty, and whether the shard layout is
balanced.  :class:`EngineStats` is a plain counter object fed by
:class:`~repro.engine.batch.BatchRecognizer` and rendered by the
``efd engine`` CLI subcommands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.matcher import MatchResult


@dataclass
class EngineStats:
    """Cumulative recognition counters (one instance per engine)."""

    n_batches: int = 0
    n_executions: int = 0
    n_lookups: int = 0          # fingerprints looked up (missing nodes excluded)
    n_missing: int = 0          # nodes that produced no usable fingerprint
    n_hits: int = 0             # lookups that matched at least one label
    n_recognized: int = 0       # executions with a non-empty verdict
    n_ties: int = 0             # executions whose verdict was a tie array
    n_unknowns: int = 0         # executions with zero matches
    shard_occupancy: List[int] = field(default_factory=list)

    def record_batch(
        self,
        results: Sequence[MatchResult],
        n_hits: int,
        shard_occupancy: Optional[Sequence[int]] = None,
    ) -> None:
        """Fold one batch's outcomes into the counters."""
        self.n_batches += 1
        self.n_executions += len(results)
        self.n_hits += n_hits
        for result in results:
            self.n_lookups += result.n_fingerprints
            self.n_missing += result.n_missing
            if result.is_unknown:
                self.n_unknowns += 1
            else:
                self.n_recognized += 1
                if result.is_tie:
                    self.n_ties += 1
        if shard_occupancy is not None:
            self.shard_occupancy = list(shard_occupancy)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched at least one label."""
        if self.n_lookups == 0:
            return 0.0
        return self.n_hits / self.n_lookups

    @property
    def unknown_rate(self) -> float:
        if self.n_executions == 0:
            return 0.0
        return self.n_unknowns / self.n_executions

    def as_dict(self) -> Dict[str, object]:
        return {
            "batches": self.n_batches,
            "executions": self.n_executions,
            "lookups": self.n_lookups,
            "missing": self.n_missing,
            "hits": self.n_hits,
            "hit_rate": round(self.hit_rate, 4),
            "recognized": self.n_recognized,
            "ties": self.n_ties,
            "unknowns": self.n_unknowns,
            "unknown_rate": round(self.unknown_rate, 4),
            "shard_occupancy": list(self.shard_occupancy),
        }

    def render(self) -> str:
        """Multi-line human-readable summary for the CLI."""
        lines = [
            f"batches     : {self.n_batches}",
            f"executions  : {self.n_executions} "
            f"(recognized={self.n_recognized}, ties={self.n_ties}, "
            f"unknown={self.n_unknowns})",
            f"lookups     : {self.n_lookups} "
            f"(hits={self.n_hits}, hit_rate={self.hit_rate:.3f}, "
            f"missing_nodes={self.n_missing})",
        ]
        if self.shard_occupancy:
            total = sum(self.shard_occupancy) or 1
            occ = ", ".join(
                f"{i}:{n} ({n / total:.0%})"
                for i, n in enumerate(self.shard_occupancy)
            )
            lines.append(f"shard keys  : {occ}")
        return "\n".join(lines)
