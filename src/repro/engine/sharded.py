"""Hash-sharded EFD store.

A :class:`ShardedDictionary` holds N ordinary
:class:`~repro.core.dictionary.ExecutionFingerprintDictionary` shards
and routes every key to ``stable_hash(key) % N``.  Because one key
always lives in exactly one shard, per-key state (label list order,
repetition counts) is trivially identical to the flat store; the only
global state a flat dictionary has beyond its keys — the first-seen
label/app orders that drive tie-breaking, and the global key insertion
order that drives Table-4-style listings — is kept at the wrapper level.

The class mirrors the full read/write contract of the flat dictionary
so that every consumer (matcher, streaming sessions, maintenance,
anomaly detection) works against either store unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro._util.hashing import stable_hash
from repro.core.dictionary import (
    DictionaryStats,
    ExecutionFingerprintDictionary,
    app_of_label,
)
from repro.core.fingerprint import Fingerprint
from repro.core.serialization import dictionary_from_json, dictionary_to_json
from repro.parallel.pool import parallel_map

_MANIFEST_NAME = "manifest.json"
_SHARD_FORMAT_VERSION = 1



def shard_index(fingerprint: Fingerprint, n_shards: int) -> int:
    """Owning shard of ``fingerprint`` among ``n_shards``.

    Uses the process-independent :func:`~repro._util.hashing.stable_hash`
    over the full key tuple, so the same key maps to the same shard in
    every process, on every machine, forever — a requirement for the
    on-disk shard layout to stay valid.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    # stable_hash tokenizes type + repr, but Fingerprint equality is
    # value-based — so normalize every part to canonical Python types
    # (int/float, and +0.0 to collapse -0.0) before hashing, or equal
    # keys (numpy scalars, negative zero) would route to different
    # shards.
    return stable_hash(
        str(fingerprint.metric),
        int(fingerprint.node),
        (float(fingerprint.interval[0]) + 0.0, float(fingerprint.interval[1]) + 0.0),
        float(fingerprint.value) + 0.0,
    ) % n_shards


def _shard_filename(index: int) -> str:
    return f"shard-{index:02d}.json"


def _efd_from_pairs(
    pairs: Sequence[Tuple[Fingerprint, str]]
) -> ExecutionFingerprintDictionary:
    """Build a flat EFD from (fingerprint, label) pairs (bulk_add worker)."""
    efd = ExecutionFingerprintDictionary()
    for fp, label in pairs:
        efd.add(fp, label)
    return efd


class ShardedDictionary:
    """EFD partitioned across N shards by stable key hash.

    Mirrors the full read/write contract of
    :class:`~repro.core.dictionary.ExecutionFingerprintDictionary` —
    every consumer (matcher, streaming sessions, maintenance, batch
    engine) works against either store unchanged, and every observable
    is byte-identical to the flat store (property-tested in
    ``tests/test_engine_properties.py``).

    >>> sharded = ShardedDictionary.from_flat(flat_efd, n_shards=8)  # doctest: +SKIP
    >>> sharded.lookup(fp) == flat_efd.lookup(fp)                    # doctest: +SKIP
    True

    Parameters
    ----------
    n_shards:
        Number of partitions.  Keys route by
        :func:`shard_index` (process-independent stable hash), so a
        layout — in memory or on disk via :func:`save_sharded` —
        remains valid across restarts and machines.
    """

    def __init__(self, n_shards: int = 8) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.shards: List[ExecutionFingerprintDictionary] = [
            ExecutionFingerprintDictionary() for _ in range(self.n_shards)
        ]
        # Global first-seen orders; the per-shard copies only see their
        # own slice of the key space and cannot reconstruct these.
        self._label_order: Dict[str, None] = {}
        self._app_order: Dict[str, None] = {}
        self._key_order: Dict[Fingerprint, None] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def from_flat(
        cls, efd: ExecutionFingerprintDictionary, n_shards: int = 8
    ) -> "ShardedDictionary":
        """Partition an existing flat dictionary (orders preserved)."""
        sharded = cls(n_shards)
        sharded.merge(efd)
        return sharded

    def to_flat(self) -> ExecutionFingerprintDictionary:
        """Collapse back into one flat dictionary (orders preserved)."""
        efd = ExecutionFingerprintDictionary()
        efd.merge(self)
        return efd

    # -- writing -----------------------------------------------------------
    def shard_of(self, fingerprint: Fingerprint) -> ExecutionFingerprintDictionary:
        return self.shards[shard_index(fingerprint, self.n_shards)]

    def add(self, fingerprint: Fingerprint, label: str) -> None:
        """Insert one (fingerprint, label) observation."""
        self.shard_of(fingerprint).add(fingerprint, label)
        self._key_order.setdefault(fingerprint, None)
        self.register_label(label)

    def add_repeated(self, fingerprint: Fingerprint, label: str, count: int) -> None:
        """Insert ``count`` repetitions of one observation in O(1)."""
        self.shard_of(fingerprint).add_repeated(fingerprint, label, count)
        self._key_order.setdefault(fingerprint, None)
        self.register_label(label)

    def register_label(self, label: str) -> None:
        """Record ``label`` in the global first-seen orders."""
        if not label:
            raise ValueError("label must be non-empty")
        self._label_order.setdefault(label, None)
        self._app_order.setdefault(app_of_label(label), None)

    def add_many(
        self, fingerprints: Sequence[Optional[Fingerprint]], label: str
    ) -> int:
        """Insert all non-``None`` fingerprints; returns how many."""
        n = 0
        for fp in fingerprints:
            if fp is not None:
                self.add(fp, label)
                n += 1
        return n

    def bulk_add(
        self,
        pairs: Sequence[Tuple[Optional[Fingerprint], str]],
        backend: str = "serial",
        n_workers: Optional[int] = None,
    ) -> int:
        """Insert many (fingerprint, label) pairs, shard-parallel.

        Pairs are bucketed by owning shard, each bucket is folded into a
        fresh flat dictionary by one :func:`parallel_map` worker, and the
        results are merged shard-by-shard.  Global orders are fixed from
        the pair sequence *before* dispatch, so the outcome is identical
        to a sequential :meth:`add` loop for every backend.  ``None``
        fingerprints are skipped (their label still registers, so the
        first-seen orders match every other backend's ``bulk_add``);
        returns the number inserted.
        """
        buckets: List[List[Tuple[Fingerprint, str]]] = [
            [] for _ in range(self.n_shards)
        ]
        n = 0
        for fp, label in pairs:
            if fp is None:
                self.register_label(label)
                continue
            self._key_order.setdefault(fp, None)
            self.register_label(label)
            buckets[shard_index(fp, self.n_shards)].append((fp, label))
            n += 1
        occupied = [i for i, b in enumerate(buckets) if b]
        built = parallel_map(
            _efd_from_pairs,
            [buckets[i] for i in occupied],
            backend=backend,
            n_workers=n_workers,
        )
        for i, efd in zip(occupied, built):
            self.shards[i].merge(efd)
        return n

    def merge(self, other) -> None:
        """Fold another backend's observations into this one.

        Accepts any :class:`~repro.engine.backend.DictionaryBackend` —
        flat, sharded, or columnar; shard counts need not match (keys
        are re-routed by hash).  Delegates to
        :func:`repro.engine.backend.merge_into`, the one canonical
        cross-backend merge routine.
        """
        from repro.engine.backend import merge_into

        merge_into(self, other)

    # -- reading ------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter aggregated over all shards."""
        return sum(s.version for s in self.shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self.shard_of(fingerprint)

    def lookup(self, fingerprint: Optional[Fingerprint]) -> List[str]:
        """Labels linked to ``fingerprint``, first-seen order; [] if absent."""
        if fingerprint is None:
            return []
        return self.shard_of(fingerprint).lookup(fingerprint)

    def lookup_counts(self, fingerprint: Optional[Fingerprint]) -> Dict[str, int]:
        """Labels with repetition counts; {} if absent."""
        if fingerprint is None:
            return {}
        return self.shard_of(fingerprint).lookup_counts(fingerprint)

    def lookup_many(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Optional[List[List[str]]]:
        """One label list per fingerprint, routed per owning shard.

        Always reflects live state (never ``None``); the columnar
        subclass overrides this with the vectorized column path.
        """
        return [self.lookup(fp) for fp in fingerprints]

    def entries(self) -> Iterator[Tuple[Fingerprint, List[str]]]:
        """All (key, labels) pairs in global insertion order."""
        # Through self.lookup (not the shard directly) so subclasses
        # that overlay pending mutations stay correct.
        for fp in self._key_order:
            yield fp, self.lookup(fp)

    def labels(self) -> List[str]:
        return list(self._label_order)

    def app_names(self) -> List[str]:
        return list(self._app_order)

    def metrics(self) -> List[str]:
        seen: Dict[str, None] = {}
        for fp in self._key_order:
            seen.setdefault(fp.metric, None)
        return list(seen)

    def intervals(self) -> List[Tuple[float, float]]:
        seen: Dict[Tuple[float, float], None] = {}
        for fp in self._key_order:
            seen.setdefault(fp.interval, None)
        return list(seen)

    # -- analysis ------------------------------------------------------------
    def stats(self) -> DictionaryStats:
        per_shard = [s.stats() for s in self.shards]
        all_labels: Dict[str, None] = {}
        for s in self.shards:
            for labels in s._store.values():
                for label in labels:
                    all_labels.setdefault(label, None)
        return DictionaryStats(
            n_keys=sum(st.n_keys for st in per_shard),
            n_insertions=sum(st.n_insertions for st in per_shard),
            n_labels=len(all_labels),
            n_colliding_keys=sum(st.n_colliding_keys for st in per_shard),
            max_labels_per_key=max(
                (st.max_labels_per_key for st in per_shard), default=0
            ),
        )

    def shard_sizes(self) -> List[int]:
        """Key count per shard (occupancy / balance diagnostics)."""
        return [len(s) for s in self.shards]

    def collisions(self) -> List[Tuple[Fingerprint, List[str]]]:
        out = []
        for fp, labels in self.entries():
            apps = {app_of_label(l) for l in labels}
            if len(apps) > 1:
                out.append((fp, labels))
        return out

    def fingerprints_for(self, label_prefix: str) -> List[Fingerprint]:
        out = []
        for fp, labels in self.entries():
            for label in labels:
                if label == label_prefix or label.startswith(label_prefix + "_") \
                        or app_of_label(label) == label_prefix:
                    out.append(fp)
                    break
        return out

    def __repr__(self) -> str:
        return (
            f"ShardedDictionary(n_shards={self.n_shards}, keys={len(self)}, "
            f"sizes={self.shard_sizes()})"
        )


# ---------------------------------------------------------------------------
# Directory (de)serialization
# ---------------------------------------------------------------------------

def _checksum(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def merged_if_pending(sharded: ShardedDictionary) -> ShardedDictionary:
    """``sharded``, or its merged live view when a delta-log pends.

    The shared guard of both save paths: a columnar store carrying
    pending delta-log records must be persisted as ``base ∪ overlay``
    (a fresh plain store built through the backend protocol), or a save
    would silently drop every append since the last compaction.  Any
    other store is returned unchanged.
    """
    delta = getattr(sharded, "_delta", None)
    if delta is not None and delta.pending:
        merged = ShardedDictionary(sharded.n_shards)
        merged.merge(sharded)
        return merged
    return sharded


def save_sharded(sharded: ShardedDictionary, directory: str) -> None:
    """Write ``sharded`` as ``directory/manifest.json`` + shard files.

    A columnar store carrying pending delta-log records is saved as its
    merged live state (base ∪ overlay) — a save never drops appends.
    """
    sharded = merged_if_pending(sharded)
    os.makedirs(directory, exist_ok=True)
    shard_meta = []
    shard_positions: List[Dict[Fingerprint, int]] = []
    for i, shard in enumerate(sharded.shards):
        text = dictionary_to_json(shard)
        name = _shard_filename(i)
        with open(os.path.join(directory, name), "w", encoding="utf-8") as fh:
            fh.write(text)
        shard_meta.append(
            {"file": name, "n_keys": len(shard), "checksum": _checksum(text)}
        )
        shard_positions.append(
            {fp: pos for pos, (fp, _) in enumerate(shard.entries())}
        )
    # Global key insertion order as compact (shard, position-in-shard)
    # pairs — shard files alone only know their own slice's order, but
    # Table-4-style listings and to_flat() depend on the global one.
    key_order = []
    for fp in sharded._key_order:
        i = shard_index(fp, sharded.n_shards)
        key_order.append([i, shard_positions[i][fp]])
    manifest = {
        "format_version": _SHARD_FORMAT_VERSION,
        "n_shards": sharded.n_shards,
        "label_order": sharded.labels(),
        "key_order": key_order,
        "shards": shard_meta,
    }
    with open(os.path.join(directory, _MANIFEST_NAME), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)


def load_sharded(directory: str, validate: bool = True) -> ShardedDictionary:
    """Load a dictionary written by :func:`save_sharded` or
    :func:`~repro.engine.columnar.save_columnar`.

    Dispatches on the manifest's layout: a columnar directory returns a
    lazily-hydrating
    :class:`~repro.engine.columnar.ColumnarDictionary` (shard files are
    only read when probed); the JSON layout loads eagerly as before.
    Shards are loaded independently; a missing shard file raises
    :class:`FileNotFoundError` and a corrupt one :class:`ValueError`,
    each naming the offending file.  With ``validate`` (default) every
    loaded key is checked to hash to its host shard, which catches
    renamed or swapped shard files.
    """
    manifest_path = os.path.join(directory, _MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise FileNotFoundError(
            f"no sharded EFD at {directory!r}: missing {_MANIFEST_NAME}"
        )
    with open(manifest_path, "r", encoding="utf-8") as fh:
        try:
            manifest = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt manifest {manifest_path!r}: {exc}") from exc
    if manifest.get("layout") == "columnar":
        from repro.engine.columnar import load_columnar

        return load_columnar(directory, validate=validate)
    version = manifest.get("format_version")
    if version != _SHARD_FORMAT_VERSION:
        raise ValueError(
            f"unsupported sharded EFD format version {version!r} "
            f"(expected {_SHARD_FORMAT_VERSION})"
        )
    n_shards = int(manifest["n_shards"])
    shard_meta = manifest.get("shards", [])
    if len(shard_meta) != n_shards:
        raise ValueError(
            f"manifest lists {len(shard_meta)} shard files for "
            f"n_shards={n_shards}"
        )
    sharded = ShardedDictionary(n_shards)
    for label in manifest.get("label_order", []):
        sharded.register_label(label)
    for i, meta in enumerate(shard_meta):
        path = os.path.join(directory, meta["file"])
        if not os.path.isfile(path):
            raise FileNotFoundError(
                f"sharded EFD at {directory!r} is incomplete: "
                f"missing shard file {meta['file']!r}"
            )
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        expected = meta.get("checksum")
        if expected is not None and _checksum(text) != expected:
            raise ValueError(
                f"shard file {meta['file']!r} is corrupt: checksum mismatch "
                f"(expected {expected})"
            )
        try:
            shard = dictionary_from_json(text)
        except ValueError as exc:
            raise ValueError(
                f"shard file {meta['file']!r} is corrupt: {exc}"
            ) from exc
        if validate:
            for fp, _ in shard.entries():
                owner = shard_index(fp, n_shards)
                if owner != i:
                    raise ValueError(
                        f"shard file {meta['file']!r} holds key {fp} that "
                        f"belongs to shard {owner} — files renamed or swapped?"
                    )
        sharded.shards[i] = shard
        for label in shard.labels():
            sharded.register_label(label)
    shard_keys = [[fp for fp, _ in shard.entries()] for shard in sharded.shards]
    key_order = manifest.get("key_order")
    if key_order is not None:
        if len(key_order) != sum(len(keys) for keys in shard_keys):
            raise ValueError(
                f"manifest key_order lists {len(key_order)} keys but shard "
                f"files hold {sum(len(k) for k in shard_keys)}"
            )
        seen: set = set()
        for i, pos in key_order:
            try:
                fp = shard_keys[i][pos]
            except IndexError:
                raise ValueError(
                    f"manifest key_order entry [{i}, {pos}] is out of range "
                    f"— manifest and shard files disagree"
                ) from None
            if (i, pos) in seen:
                raise ValueError(
                    f"manifest key_order lists entry [{i}, {pos}] twice "
                    f"— manifest is corrupt"
                )
            seen.add((i, pos))
            sharded._key_order.setdefault(fp, None)
    else:
        # Older manifest without key_order: fall back to shard-major order.
        for keys in shard_keys:
            for fp in keys:
                sharded._key_order.setdefault(fp, None)
    return sharded
