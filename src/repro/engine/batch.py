"""Batch recognition: many executions against one (sharded) EFD.

The single-execution path — :func:`repro.core.matcher.match_fingerprints`
after :func:`repro.core.fingerprint.build_fingerprints` — pays Python
overhead per node (scalar interval means, per-lookup dataclass hashing)
and per execution (rebuilding the application order).  At batch scale
all of that amortizes:

- interval means are computed as one NumPy matrix reduction over all
  nodes of an execution (bit-identical to the scalar path: clean rows
  reduce over the same contiguous data, rows with dropout fall back to
  the exact scalar routine);
- rounding is vectorized (:func:`~repro.core.rounding.round_depth_array`
  mirrors the scalar function bit-for-bit);
- duplicate fingerprints across the batch are looked up once, and the
  unique-key lookups fan out shard-parallel via
  :func:`repro.parallel.pool.parallel_map`;
- the application order for tie-breaking is computed once per batch.

The result list is element-wise equal to a sequential loop of
``match_fingerprints`` calls — property-tested across shard counts and
pool backends in ``tests/test_engine_properties.py``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dictionary import ExecutionFingerprintDictionary, app_of_label
from repro.core.fingerprint import DEFAULT_INTERVAL, Fingerprint
from repro.core.matcher import MatchResult, vote
from repro.core.rounding import round_depth_array
from repro.core.streaming import StreamSession
from repro.data.dataset import ExecutionRecord
from repro.telemetry.timeseries import TimeSeries
from repro.engine.columnar import ColumnarBatchIndex, ColumnarDictionary
from repro.engine.remote import RemoteShardBackend
from repro.engine.sharded import ShardedDictionary, shard_index
from repro.engine.stats import EngineStats
from repro.parallel.partition import chunk_evenly
from repro.parallel.pool import parallel_map

AnyDictionary = Union[ExecutionFingerprintDictionary, ShardedDictionary]

#: The batch lookup table: (node, value) -> (label list, distinct apps).
TupleIndex = Dict[Tuple[int, float], Tuple[List[str], Tuple[str, ...]]]


def _shard_tuple_index(
    task: Tuple[AnyDictionary, str, Tuple[float, float]]
) -> TupleIndex:
    """(node, value) -> (label list, distinct apps) for one store's keys
    of one (metric, interval) — the engine's O(1) batch lookup table.

    The per-key app tuple precomputes what ``vote()`` would re-derive
    for every lookup: the applications this key's labels span, deduped.
    """
    store, metric, interval = task
    index: TupleIndex = {}
    for fp, labels in store.entries():
        if fp.metric == metric and fp.interval == interval:
            apps = tuple(dict.fromkeys(app_of_label(l) for l in labels))
            index[(fp.node, fp.value)] = (labels, apps)
    return index


def _lookup_chunk(
    task: Tuple[AnyDictionary, List[Fingerprint]]
) -> List[List[str]]:
    """Look a chunk of unique fingerprints up in one store (pool worker)."""
    store, fps = task
    return [store.lookup(fp) for fp in fps]


def _batch_lookup(
    dictionary: AnyDictionary,
    unique: List[Fingerprint],
    backend: str,
    n_workers: Optional[int],
    stats: Optional[EngineStats] = None,
) -> Dict[Fingerprint, List[str]]:
    """Resolve each unique fingerprint to its label list.

    For a columnar store the whole batch resolves vectorized against the
    column arrays (``base ∪ delta overlay``) — no shard is hydrated and
    no pool is spun up.  For a sharded store the work units are the
    shards themselves (each worker queries only the shard that owns its
    keys); a flat store is split into even chunks.
    """
    overlay_keys: frozenset = frozenset()
    if isinstance(dictionary, RemoteShardBackend):
        # Remote stores must never fall through to per-key lookups (one
        # round trip per key): probe_many IS the batch path — a parallel
        # scatter/gather with the resilience layer around every call.
        label_lists = dictionary.lookup_many(unique)
        return dict(zip(unique, label_lists))
    if isinstance(dictionary, ColumnarDictionary):
        label_lists = dictionary.lookup_many(unique)
        if label_lists is not None:
            return dict(zip(unique, label_lists))
        # A shard was mutated behind the delta-log (or the rank space
        # overflowed): fall through to the generic shard-bucket path,
        # which sees the live shard state — and count the demotion so
        # `efd engine info --stats` surfaces the lost fast path.
        if stats is not None:
            stats.record_index_demotion()
        # The shard buckets below cannot see pending overlay keys;
        # their slots are patched from the merged point path after.
        overlay_keys = frozenset(dictionary.overlay_keys())
    if isinstance(dictionary, ShardedDictionary):
        buckets: List[List[Fingerprint]] = [
            [] for _ in range(dictionary.n_shards)
        ]
        for fp in unique:
            buckets[shard_index(fp, dictionary.n_shards)].append(fp)
        tasks = [
            (dictionary.shards[i], bucket)
            for i, bucket in enumerate(buckets)
            if bucket
        ]
    else:
        tasks = [
            (dictionary, chunk) for chunk in chunk_evenly(unique, _n_tasks(n_workers))
        ]
    label_lists = parallel_map(
        _lookup_chunk, tasks, backend=backend, n_workers=n_workers
    )
    table: Dict[Fingerprint, List[str]] = {}
    for (_, fps), labels in zip(tasks, label_lists):
        for fp, found in zip(fps, labels):
            table[fp] = found
    if overlay_keys:
        for fp in unique:
            if fp in overlay_keys:
                table[fp] = dictionary.lookup(fp)  # merged live state
    return table


def _n_tasks(n_workers: Optional[int]) -> int:
    if n_workers is not None:
        return max(n_workers, 1)
    return max(os.cpu_count() or 1, 1)


def match_fingerprints_batch(
    dictionary: AnyDictionary,
    fingerprint_lists: Sequence[Sequence[Optional[Fingerprint]]],
    backend: str = "serial",
    n_workers: Optional[int] = None,
    stats: Optional[EngineStats] = None,
) -> Tuple[List[MatchResult], int]:
    """Match many executions' fingerprints in one pass.

    Returns ``(results, n_hits)`` where ``results[i]`` equals
    ``match_fingerprints(dictionary, fingerprint_lists[i])`` and
    ``n_hits`` counts lookups (fingerprint occurrences) that matched at
    least one label.  ``stats``, when given, receives the
    index-demotion counter (the only stat this function can observe
    that its caller cannot).
    """
    unique: Dict[Fingerprint, None] = {}
    for fps in fingerprint_lists:
        for fp in fps:
            if fp is not None:
                unique.setdefault(fp, None)
    table = _batch_lookup(dictionary, list(unique), backend, n_workers, stats)
    position = {app: i for i, app in enumerate(dictionary.app_names())}
    results: List[MatchResult] = []
    n_hits = 0
    for fps in fingerprint_lists:
        lookups: List[List[str]] = []
        matched_labels: Dict[str, int] = {}
        n_missing = 0
        n_fingerprints = 0
        for fp in fps:
            if fp is None:
                n_missing += 1
                continue
            n_fingerprints += 1
            labels = table[fp]
            lookups.append(labels)
            if labels:
                n_hits += 1
                for label in labels:
                    matched_labels[label] = matched_labels.get(label, 0) + 1
        ranked, votes = vote(lookups, position=position)
        results.append(
            MatchResult(
                ranked=ranked,
                votes=votes,
                matched_labels=matched_labels,
                n_fingerprints=n_fingerprints,
                n_missing=n_missing,
            )
        )
    return results, n_hits


def _check_metric(record: ExecutionRecord, metric: str) -> None:
    """Same guard (and message) as ``build_fingerprints``."""
    telemetry = record.telemetry
    for node in range(record.n_nodes):
        if (metric, node) in telemetry:
            return
    raise KeyError(
        f"record {record.record_id} ({record.label}) has no telemetry "
        f"for metric {metric!r}"
    )


def _batch_rounded_means(
    records: Sequence[ExecutionRecord],
    metric: str,
    depth: int,
    start: float,
    end: float,
) -> np.ndarray:
    """Rounded interval means for every (record, node) slot, flattened.

    All series across the whole batch that share period, origin, and
    length (the common case — one cluster, one sampler config) are
    stacked into a single matrix and reduced in one NumPy call.  A clean
    row reduces over exactly the same contiguous samples as the scalar
    path, so the result is bit-identical; rows containing dropout (NaN)
    and series the fixed window overruns defer to the exact scalar
    routine.  Slots are ordered record-major, node-minor; NaN marks a
    node with no usable fingerprint.
    """
    slots: List[TimeSeries] = []
    groups: Dict[Tuple[float, float], List[int]] = {}
    for record in records:
        _check_metric(record, metric)
        for node in range(record.n_nodes):
            series = record.series(metric, node)
            groups.setdefault((series.period, series.t0), []).append(len(slots))
            slots.append(series)
    means = np.empty(len(slots))
    for (period, t0), positions in groups.items():
        lo = max(int(np.ceil((start - t0) / period)), 0)
        hi = int(np.ceil((end - t0) / period))
        stacked: List[int] = []
        for pos in positions:
            if hi <= lo or len(slots[pos].values) < hi:
                # Window overruns (or misses) this series — the scalar
                # routine clips and may mean a shorter window; defer.
                means[pos] = slots[pos].interval_mean(start, end)
            else:
                stacked.append(pos)
        if not stacked:
            continue
        matrix = np.stack([slots[pos].values[lo:hi] for pos in stacked])
        row_means = matrix.mean(axis=1)  # NaN rows poison themselves only
        has_nan = np.isnan(row_means)
        if has_nan.any():
            # Dropout: the scalar path compacts NaNs before the mean.
            for i in np.nonzero(has_nan)[0]:
                row_means[i] = slots[stacked[i]].interval_mean(start, end)
        means[stacked] = row_means
    return round_depth_array(means, depth)


def build_fingerprints_batch(
    records: Sequence[ExecutionRecord],
    metric: str,
    depth: int,
    interval: Tuple[float, float] = DEFAULT_INTERVAL,
) -> List[List[Optional[Fingerprint]]]:
    """Vectorized :func:`~repro.core.fingerprint.build_fingerprints` over
    many records; element-wise identical output."""
    start, end = float(interval[0]), float(interval[1])
    values = _batch_rounded_means(records, metric, depth, start, end).tolist()
    out: List[List[Optional[Fingerprint]]] = []
    pos = 0
    for record in records:
        fps: List[Optional[Fingerprint]] = []
        for node in range(record.n_nodes):
            value = values[pos]
            pos += 1
            if value != value:  # NaN — no valid samples in the interval
                fps.append(None)
                continue
            fps.append(
                Fingerprint(
                    metric=metric, node=node, interval=(start, end), value=value
                )
            )
        out.append(fps)
    return out


class BatchRecognizer:
    """Recognize batches of executions against one dictionary.

    Parameters
    ----------
    dictionary:
        A flat :class:`ExecutionFingerprintDictionary` or a
        :class:`~repro.engine.sharded.ShardedDictionary`.
    metric / depth / interval / unknown_label:
        Fingerprint configuration, as in
        :class:`~repro.core.recognizer.EFDRecognizer`.
    backend / n_workers:
        :func:`~repro.parallel.pool.parallel_map` configuration for the
        shard fan-out (``"serial"``, ``"thread"``, or ``"process"``).
    """

    def __init__(
        self,
        dictionary: AnyDictionary,
        metric: str = "nr_mapped_vmstat",
        depth: int = 3,
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        unknown_label: str = "unknown",
        backend: str = "serial",
        n_workers: Optional[int] = None,
    ):
        if len(dictionary) == 0:
            raise ValueError("cannot recognize against an empty dictionary")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        start, end = interval
        if end <= start:
            raise ValueError(f"interval end must exceed start, got {interval}")
        self.dictionary = dictionary
        self.metric = metric
        self.depth = int(depth)
        self.interval = (float(start), float(end))
        self.unknown_label = unknown_label
        self.backend = backend
        self.n_workers = n_workers
        self.stats = EngineStats()
        self._index: Optional[Union[TupleIndex, ColumnarBatchIndex]] = None
        self._index_version: Optional[int] = None

    def warm(self, for_sessions: bool = False) -> "BatchRecognizer":
        """Prebuild the lookup structures so the first batch pays no setup.

        The two batch entry points resolve through different indexes:
        :meth:`recognize_records` probes the ``(node, value)`` tuple (or
        columnar) index, while :meth:`recognize_sessions` resolves full
        fingerprint keys.  ``for_sessions`` selects which path to warm —
        :class:`repro.serve.IngestService` warms the session path at
        startup so its first micro-batch answers at steady-state
        latency.  Idempotent; a no-op where the requested path has no
        prebuildable structure (flat/sharded stores answer sessions
        through plain dict lookups already).
        """
        if for_sessions:
            if isinstance(self.dictionary, ColumnarDictionary):
                # Explicitly build the full-key index: cold lookups
                # would otherwise answer through the negative-lookup
                # filters and defer the build until a batch actually
                # needs it.
                self.dictionary.warm_index()
        else:
            self._tuple_index()
        return self

    @classmethod
    def from_recognizer(
        cls,
        recognizer,
        n_shards: int = 1,
        backend: str = "serial",
        n_workers: Optional[int] = None,
    ) -> "BatchRecognizer":
        """Bind to a fitted :class:`~repro.core.recognizer.EFDRecognizer`.

        ``n_shards > 1`` re-partitions the learned dictionary into a
        :class:`~repro.engine.sharded.ShardedDictionary` first.
        """
        recognizer._check_fitted()
        dictionary: AnyDictionary = recognizer.dictionary_
        if n_shards > 1:
            dictionary = ShardedDictionary.from_flat(dictionary, n_shards)
        return cls(
            dictionary=dictionary,
            metric=recognizer.metric,
            depth=recognizer.depth_,
            interval=recognizer.interval,
            unknown_label=recognizer.unknown_label,
            backend=backend,
            n_workers=n_workers,
        )

    # -- batch over stored executions --------------------------------------
    def recognize_records(
        self, records: Sequence[ExecutionRecord]
    ) -> List[MatchResult]:
        """Full match detail for each record, one batched pass.

        ``results[i]`` equals the sequential
        ``match_fingerprints(dictionary, build_fingerprints(records[i], ...))``.
        The hot path never constructs (or hashes) a
        :class:`~repro.core.fingerprint.Fingerprint`: node means are
        reduced batch-wide, rounded in one vectorized call, and resolved
        through a ``(node, value)`` tuple index built shard-parallel and
        cached until the dictionary changes.
        """
        start, end = self.interval
        value_array = _batch_rounded_means(
            records, self.metric, self.depth, start, end
        )
        values = value_array.tolist()
        table = self._tuple_index()
        if isinstance(table, ColumnarBatchIndex):
            # Columnar fast path: resolve every (node, value) probe of
            # the batch in a handful of NumPy calls; the verdict loop
            # below then probes a dict holding only this batch's hits.
            node_array = (
                np.concatenate(
                    [np.arange(r.n_nodes, dtype=np.int64) for r in records]
                )
                if records
                else np.empty(0, dtype=np.int64)
            )
            table = table.resolve_probes(node_array, value_array)
        get = table.get
        position = {
            app: i for i, app in enumerate(self.dictionary.app_names())
        }
        n_apps = len(position)

        def tie_rank(app: str) -> int:
            return position.get(app, n_apps)

        # Repetitions of one workload collapse onto the same rounded
        # values (that is the EFD's whole pruning idea), so identical
        # per-node value patterns recur across a batch; their verdict is
        # computed once and re-materialized per record (fresh MatchResult
        # with copied dicts — the sequential path returns independent
        # objects, and callers may mutate votes/matched_labels in place).
        memo: Dict[Tuple[object, ...], Tuple[MatchResult, int]] = {}
        results: List[MatchResult] = []
        n_hits = 0
        pos = 0
        for record in records:
            n_nodes = record.n_nodes
            pattern = tuple(
                None if v != v else v for v in values[pos : pos + n_nodes]
            )
            pos += n_nodes
            cached = memo.get(pattern)
            if cached is not None:
                template, hits = cached
                result = MatchResult(
                    ranked=template.ranked,
                    votes=dict(template.votes),
                    matched_labels=dict(template.matched_labels),
                    n_fingerprints=template.n_fingerprints,
                    n_missing=template.n_missing,
                )
            else:
                # Inlined vote(): each matched key contributes one vote
                # per distinct application in its label list (the index
                # precomputed that set).  Property tests pin this to the
                # canonical matcher, byte for byte.
                votes: Dict[str, int] = {}
                matched_labels: Dict[str, int] = {}
                n_missing = 0
                hits = 0
                for node, value in enumerate(pattern):
                    if value is None:  # no usable fingerprint on this node
                        n_missing += 1
                        continue
                    entry = get((node, value))
                    if entry is None:
                        continue
                    labels, apps = entry
                    hits += 1
                    for label in labels:
                        matched_labels[label] = matched_labels.get(label, 0) + 1
                    for app in apps:
                        votes[app] = votes.get(app, 0) + 1
                if votes:
                    top = max(votes.values())
                    tied = [a for a, c in votes.items() if c == top]
                    if len(tied) > 1:
                        tied.sort(key=tie_rank)
                    ranked = tuple(tied)
                else:
                    ranked = ()
                result = MatchResult(
                    ranked=ranked,
                    votes=votes,
                    matched_labels=matched_labels,
                    n_fingerprints=n_nodes - n_missing,
                    n_missing=n_missing,
                )
                memo[pattern] = (result, hits)
            n_hits += hits
            results.append(result)
        self._record_stats(results, n_hits)
        return results

    def _tuple_index(self) -> Union[TupleIndex, "ColumnarBatchIndex"]:
        """Build (or reuse) the batch lookup table.

        Against a pristine :class:`ColumnarDictionary` this is the
        vectorized rank-packed index built straight from the columns (no
        shard hydration, no per-key Python work); otherwise the classic
        per-key dict is built shard-parallel.
        """
        version = self.dictionary.version
        if self._index is not None and self._index_version == version:
            return self._index
        columnar = isinstance(self.dictionary, ColumnarDictionary)
        if columnar:
            index = self.dictionary.batch_index(self.metric, self.interval)
            if index is not None:
                self._index = index
                self._index_version = version
                return index
            self.stats.record_index_demotion()
        if isinstance(self.dictionary, ShardedDictionary):
            tasks = [
                (shard, self.metric, self.interval)
                for shard in self.dictionary.shards
            ]
        else:
            tasks = [(self.dictionary, self.metric, self.interval)]
        partials = parallel_map(
            _shard_tuple_index,
            tasks,
            backend=self.backend,
            n_workers=self.n_workers,
        )
        index: TupleIndex = {}
        for partial in partials:
            index.update(partial)
        if columnar:
            # The shard scan cannot see pending delta-overlay keys.
            index.update(
                self.dictionary.overlay_tuple_entries(
                    self.metric, self.interval
                )
            )
        self._index = index
        self._index_version = version
        return index

    def predict(self, records: Sequence[ExecutionRecord]) -> List[str]:
        """Application name per record (``unknown_label`` on no match)."""
        return [
            r.prediction if r.prediction else self.unknown_label
            for r in self.recognize_records(records)
        ]

    # -- batch over live streaming sessions --------------------------------
    def recognize_sessions(
        self, sessions: Sequence[StreamSession], force: bool = False
    ) -> List[MatchResult]:
        """Verdicts for many concurrent streaming sessions in one pass.

        ``results[i]`` equals ``sessions[i].verdict()`` — but sessions
        are only read, never concluded, so callers that want the session
        object to cache its verdict keep using
        :meth:`StreamSession.verdict`.  Raises :class:`RuntimeError`
        unless every session is ready (all interval windows elapsed) or
        ``force`` is set.  This is the resolution primitive under
        :class:`repro.serve.IngestService`, which adds queuing,
        micro-batch coalescing, and backpressure on top.
        """
        if not force:
            pending = [i for i, s in enumerate(sessions) if not s.ready]
            if pending:
                raise RuntimeError(
                    f"{len(pending)} of {len(sessions)} sessions not yet "
                    f"complete (first: session {pending[0]}); pass "
                    f"force=True to decide early"
                )
        fingerprint_lists = [s.fingerprints() for s in sessions]
        return self._match(fingerprint_lists)

    # -- internals ----------------------------------------------------------
    def _match(
        self, fingerprint_lists: Sequence[Sequence[Optional[Fingerprint]]]
    ) -> List[MatchResult]:
        results, n_hits = match_fingerprints_batch(
            self.dictionary,
            fingerprint_lists,
            backend=self.backend,
            n_workers=self.n_workers,
            stats=self.stats,
        )
        self._record_stats(results, n_hits)
        return results

    def _record_stats(self, results: Sequence[MatchResult], n_hits: int) -> None:
        occupancy = (
            self.dictionary.shard_sizes()
            if isinstance(
                self.dictionary, (ShardedDictionary, RemoteShardBackend)
            )
            else [len(self.dictionary)]
        )
        self.stats.record_batch(results, n_hits, shard_occupancy=occupancy)

    def __repr__(self) -> str:
        kind = type(self.dictionary).__name__
        return (
            f"BatchRecognizer({kind}, metric={self.metric!r}, "
            f"depth={self.depth}, backend={self.backend!r})"
        )
