"""Online resharding: change a dictionary's shard count without a relearn.

Growing a deployment used to mean re-fitting the dictionary from
telemetry at the new shard count.  That was never necessary: shard
membership is a pure function of the key
(:func:`~repro.engine.sharded.shard_index` — ``stable_hash(key) % N``),
so the movement from N to M shards is computable offline from the keys
alone — only keys whose ``hash % N != hash % M`` change shards, and no
per-key state (label lists, repetition counts) changes at all.

:func:`reshard_store` re-buckets an in-memory store; :func:`reshard`
rewrites a shard *directory* (JSON or columnar layout, auto-detected
and preserved) in place or to ``--out``, surfaced as ``efd engine
reshard``.  Both preserve every global order byte-identically — the
key insertion order, the label and app first-seen orders, and each
shard's internal order (the global order filtered to the shard's keys)
— so reshard N→M→N round-trips to byte-identical files and every
verdict is element-wise unchanged (``tests/test_reshard.py``).

A columnar source with pending delta-log records is resharded from its
merged live state; the rewritten directory starts with a clean (folded)
base.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.engine.columnar import (
    is_columnar,
    save_columnar,
    _read_manifest,
    _remove_superseded_files,
)
from repro.engine.deltalog import pending_records, segment_path
from repro.engine.sharded import (
    ShardedDictionary,
    load_sharded,
    save_sharded,
    shard_index,
)


def count_moved_keys(store, n_shards_new: int) -> int:
    """Keys whose shard assignment changes at the new count.

    The offline movement plan in one number: a key moves iff
    ``stable_hash(key) % N != stable_hash(key) % M``.
    """
    old = store.n_shards if isinstance(store, ShardedDictionary) else 1
    return sum(
        1
        for fp, _ in store.entries()
        if shard_index(fp, old) != shard_index(fp, n_shards_new)
    )


def reshard_store(store, n_shards: int) -> ShardedDictionary:
    """Re-bucket any backend into a fresh N-shard store, orders intact.

    Accepts any :class:`~repro.engine.backend.DictionaryBackend`; the
    canonical cross-backend merge replays label order first and keys in
    global insertion order, so every observable of the result is
    byte-identical to the source.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    target = ShardedDictionary(n_shards)
    target.merge(store)
    return target


def reshard(directory: str, n_shards: int,
            out: Optional[str] = None) -> dict:
    """Rewrite a shard directory at a new shard count, layout preserved.

    In place by default; pass ``out`` to write the resharded directory
    elsewhere and leave the source untouched.  JSON directories stay
    JSON, columnar stay columnar — including the columnar storage (npz
    or mmap) and per-shard negative-lookup filters, which are rebuilt
    for the new key routing under the same atomic manifest replace.  An
    in-place rewrite removes shard files orphaned by a shrinking count
    (and a pending delta-log segment, whose records are folded into the
    rewritten base).
    Returns a summary dict with the key/move counts and new occupancy.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    columnar = is_columnar(directory)
    old_manifest = _read_manifest(directory)
    store = load_sharded(directory)
    old_shards = store.n_shards
    target = reshard_store(store, n_shards)
    moved = count_moved_keys(store, n_shards)
    in_place = out is None or os.path.abspath(out) == os.path.abspath(directory)
    outdir = directory if in_place else out
    if columnar:
        # An in-place rewrite must advance the delta generation, for
        # two independent reasons: the new base then lands under fresh
        # generation-suffixed file names committed by one atomic
        # manifest replace (a crash mid-rewrite can never half-
        # overwrite the only copy of a live shard file), and any
        # pending log records folded into the rewrite leave a segment
        # whose stale generation marks it already-applied instead of
        # replaying onto the folded base.  A copy to ``--out`` touches
        # no live file, so it keeps the source generation unless it
        # folded pending records.
        old_generation = int(old_manifest.get("delta_generation", 0))
        folded = pending_records(directory, old_generation)
        if in_place or folded:
            generation = old_generation + 1
        else:
            generation = old_generation
        # Preserve what the source had: its storage (npz or mmap) and
        # whether its shards carry negative-lookup filters — resharding
        # changes the key routing, never the representation.
        save_columnar(
            target, outdir, generation=generation,
            storage=old_manifest.get("storage", "npz"),
            filters="filters" in old_manifest,
        )
    else:
        save_sharded(target, outdir)
    if in_place:
        _remove_superseded_files(outdir, old_manifest, _read_manifest(outdir))
        # Pending appends were folded into the rewrite; the advanced
        # generation already marks a leftover segment stale, but clean
        # up eagerly rather than leaving it to the next load.
        segment = segment_path(outdir)
        if os.path.isfile(segment):
            os.remove(segment)
    return {
        "directory": outdir,
        "layout": "columnar" if columnar else "json",
        "n_keys": len(target),
        "old_shards": old_shards,
        "new_shards": n_shards,
        "moved_keys": moved,
        "shard_sizes": target.shard_sizes(),
    }
