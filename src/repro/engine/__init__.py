"""Sharded dictionary + batch recognition engine (production scaling).

The paper's EFD is a single in-memory hash map queried one execution at
a time.  That is fine for a 1080-execution study; it is not how a
recognition service in front of a large cluster (or many clusters)
would run.  ``repro.engine`` is the scale-out layer:

- :class:`~repro.engine.sharded.ShardedDictionary` partitions EFD keys
  across N shards by a stable hash of the full fingerprint key
  (``repro._util.hashing.stable_hash`` — process-independent, so a
  shard layout computed today is valid after any restart and on any
  machine).  Every shard is an ordinary
  :class:`~repro.core.dictionary.ExecutionFingerprintDictionary`; the
  wrapper keeps the *global* first-seen label/app/key orders so that
  lookups, tie-breaking, and Table-4-style listings are byte-identical
  to a flat dictionary.

- :func:`~repro.engine.sharded.save_sharded` /
  :func:`~repro.engine.sharded.load_sharded` persist a sharded
  dictionary as a directory: one ``manifest.json`` (format version,
  shard count, global label order, per-shard checksums) plus one
  ``shard-NN.json`` per shard in the flat JSON format of
  :mod:`repro.core.serialization`.  Shards load independently, so a
  corrupt or missing shard file is reported by name instead of
  poisoning the whole store.

- :class:`~repro.engine.batch.BatchRecognizer` recognizes many
  executions (or many live :class:`~repro.core.streaming.StreamSession`
  objects) in one call: interval means are computed vectorized over
  nodes with NumPy, unique fingerprints are looked up once via a
  per-shard tuple index built in parallel over shards
  (``repro.parallel.pool`` — serial / thread / process backends), and
  per-execution votes reuse the exact matcher semantics.

- :class:`~repro.engine.stats.EngineStats` counts lookups, hits, ties,
  and unknowns, snapshots per-shard occupancy, and carries the serving
  counters (queue depth, sheds, evictions, verdict latency) that
  :class:`repro.serve.IngestService` feeds; surfaced through the
  ``efd engine ...`` / ``efd serve`` CLI commands and exportable as a
  JSON snapshot (``efd engine info --stats``).

- :mod:`repro.engine.backend` formalizes the storage contract all of
  the above share: :class:`~repro.engine.backend.DictionaryBackend`
  is a runtime-checkable protocol (writes, reads, string tables,
  analysis, the ``version`` cache counter) satisfied by the flat,
  sharded, and columnar stores alike, with
  :func:`~repro.engine.backend.merge_into` as the one canonical
  cross-backend merge.

- :mod:`repro.engine.columnar` is the storage fast path for that
  machinery: a column-oriented shard codec (parallel arrays + a small
  JSON manifest with interned string tables and checksums) in two
  storages — compressed ``shard-NN.npz`` archives and raw memory-mapped
  ``shard-NN.mmap`` files (:mod:`repro.engine.mmapstore`) that N
  serving processes share through one page-cache copy — lazy shard
  hydration (:class:`~repro.engine.columnar.ColumnarDictionary` reads a
  shard file only when it is actually probed), per-shard Bloom filters
  (:mod:`repro.engine.keyfilter`) that answer unknown-heavy batches
  without touching any column file, and a vectorized rank-packed lookup
  index that replaces the batch engine's per-key Python dict
  construction with a handful of NumPy calls.  ``efd engine
  compact|expand`` convert between the JSON and columnar layouts
  losslessly (``compact --layout`` picks the storage);
  :func:`load_sharded` auto-detects either.

- :mod:`repro.engine.deltalog` makes columnar writes first-class: every
  mutation appends to a write-ahead ``delta-log.jsonl`` and lands in a
  small in-memory overlay, reads answer ``base ∪ overlay`` (the
  vectorized index stays hot under a trickle of new learnings), and
  compaction folds the log back into the columnar base (either
  storage) — triggered by a pending-record threshold, ``efd engine
  compact``, or serve shutdown.

- :mod:`repro.engine.reshard` changes a directory's shard count without
  a relearn (``efd engine reshard``): the movement is computed offline
  from the stable-hash routing — only keys whose ``hash % N`` differs
  from ``hash % M`` move — and every global order is preserved
  byte-identically, in both layouts.

- :mod:`repro.engine.replicate` puts the delta-log on the wire: a
  leader (:class:`~repro.engine.replicate.ReplicationPublisher`)
  streams committed segment records and generation-advancing base
  swaps to followers
  (:class:`~repro.engine.replicate.ReplicationFollower`) that serve
  the same read surface one generation at a time — never mixed state —
  with catch-up-from-position on reconnect and an election/promotion
  path (:func:`~repro.engine.replicate.elect_and_promote`) for leader
  loss.  Surfaced as ``efd serve --publish/--follow`` and ``efd
  promote``; the wire protocol is specced in ``docs/serving.md``.

- :mod:`repro.engine.remote` scatters the shard space itself across
  hosts: per-host :class:`~repro.engine.remote.ShardServer` processes
  (``efd shardserve``) answer framed probe/learn requests for the
  shards they own, and
  :class:`~repro.engine.remote.RemoteShardBackend` is a
  :class:`~repro.engine.backend.DictionaryBackend` whose batch lookups
  are a parallel scatter/gather over those hosts — wrapped in a
  resilience layer (deadline budgets, full-jitter retries, hedged
  probes, per-host circuit breakers) that degrades to explicit
  unknown-with-reason verdicts instead of failing or lying when a
  shard's hosts are unreachable.  Surfaced as ``efd shardserve`` and
  ``efd serve --remote``; topology and tuning live in
  ``docs/serving.md``.

Shard layouts on disk::

    efd-shards/                       efd-columnar/
      manifest.json                     manifest.json   # layout="columnar",
      shard-00.json   # flat EFD JSON                   # storage="npz"|"mmap"
      shard-01.json                     shard-00.npz    # parallel arrays
      ...                               shard-00.filter # Bloom sidecar
                                        shard-00.hashidx # sorted-hash index
                                        ...

Equivalence with the flat dictionary is enforced by property tests
(``tests/test_engine_properties.py``) across storage backends
({flat, sharded-JSON, npz, mmap}), shard counts, and pool backends.
"""

from repro.engine.backend import DictionaryBackend, merge_into
from repro.engine.batch import BatchRecognizer, match_fingerprints_batch
from repro.engine.columnar import (
    ColumnarDictionary,
    compact_shards,
    expand_shards,
    is_columnar,
    load_columnar,
    save_columnar,
)
from repro.engine.deltalog import (
    DeltaLog,
    PendingDeltaError,
    SegmentReadError,
    pending_records,
)
from repro.engine.keyfilter import KeyFilter
from repro.engine.replicate import (
    ReplicationError,
    ReplicationFollower,
    ReplicationPublisher,
    elect_and_promote,
    local_position,
    replication_request,
)
from repro.engine.remote import (
    CircuitBreaker,
    RemoteDegradedError,
    RemoteError,
    RemoteShardBackend,
    ShardServer,
    ShardServerThread,
    parse_remote_spec,
)
from repro.engine.reshard import count_moved_keys, reshard, reshard_store
from repro.engine.sharded import (
    ShardedDictionary,
    load_sharded,
    save_sharded,
    shard_index,
)
from repro.engine.stats import EngineStats

__all__ = [
    "BatchRecognizer",
    "CircuitBreaker",
    "ColumnarDictionary",
    "DeltaLog",
    "DictionaryBackend",
    "EngineStats",
    "KeyFilter",
    "PendingDeltaError",
    "RemoteDegradedError",
    "RemoteError",
    "RemoteShardBackend",
    "ReplicationError",
    "ReplicationFollower",
    "ReplicationPublisher",
    "SegmentReadError",
    "ShardServer",
    "ShardServerThread",
    "ShardedDictionary",
    "compact_shards",
    "count_moved_keys",
    "elect_and_promote",
    "expand_shards",
    "is_columnar",
    "load_columnar",
    "load_sharded",
    "local_position",
    "match_fingerprints_batch",
    "merge_into",
    "parse_remote_spec",
    "pending_records",
    "replication_request",
    "reshard",
    "reshard_store",
    "save_columnar",
    "save_sharded",
    "shard_index",
]
