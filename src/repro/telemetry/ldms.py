"""Simulated LDMS collection pipeline.

Two roles, mirroring the real LDMS architecture the paper's dataset was
collected with:

- :class:`LDMSDaemon` — runs "on" one node; owns a :class:`Sampler` and
  samples any number of metric signals for that node.
- :class:`LDMSAggregator` — collects per-node series into the
  ``(metric, node) -> TimeSeries`` mapping that the dataset layer stores.

The split is deliberately faithful: per-node daemons sample with
*independent* jitter/dropout streams, so node series are realistically
decorrelated even for identical signals.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro._util.rng import RngLike, derive_rng
from repro.telemetry.sampler import Sampler, SamplerConfig, SignalFn
from repro.telemetry.timeseries import TimeSeries


class LDMSDaemon:
    """Per-node sampling daemon."""

    def __init__(
        self,
        node_id: int,
        config: Optional[SamplerConfig] = None,
        rng: RngLike = None,
    ):
        if node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {node_id}")
        self.node_id = int(node_id)
        self.sampler = Sampler(config)
        self._rng_base = rng

    def collect(
        self,
        signals: Mapping[str, SignalFn],
        duration: float,
    ) -> Dict[str, TimeSeries]:
        """Sample every metric signal for this node.

        Each metric gets an independent noise stream derived from the
        daemon's base seed, the node id, and the metric name, so repeated
        collection runs are reproducible.
        """
        out: Dict[str, TimeSeries] = {}
        for metric_name, signal in signals.items():
            rng = derive_rng(self._rng_base, "ldmsd", self.node_id, metric_name)
            out[metric_name] = self.sampler.sample(signal, duration, rng)
        return out


class LDMSAggregator:
    """Gathers per-node daemon output into one execution-wide mapping."""

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, int], TimeSeries] = {}

    def ingest(self, node_id: int, series_by_metric: Mapping[str, TimeSeries]) -> None:
        for metric_name, series in series_by_metric.items():
            key = (metric_name, int(node_id))
            if key in self._store:
                raise ValueError(
                    f"duplicate ingest for metric={metric_name!r} node={node_id}"
                )
            self._store[key] = series

    def collect_all(
        self,
        daemons: Iterable[LDMSDaemon],
        signals_per_node: Mapping[int, Mapping[str, SignalFn]],
        duration: float,
    ) -> Dict[Tuple[str, int], TimeSeries]:
        """Run every daemon and aggregate the results."""
        for daemon in daemons:
            node_signals = signals_per_node.get(daemon.node_id)
            if node_signals is None:
                raise KeyError(f"no signals registered for node {daemon.node_id}")
            self.ingest(daemon.node_id, daemon.collect(node_signals, duration))
        return dict(self._store)

    @property
    def store(self) -> Dict[Tuple[str, int], TimeSeries]:
        return dict(self._store)

    def metrics(self) -> List[str]:
        return sorted({m for m, _ in self._store})

    def nodes(self) -> List[int]:
        return sorted({n for _, n in self._store})

    def get(self, metric: str, node: int) -> TimeSeries:
        try:
            return self._store[(metric, node)]
        except KeyError:
            raise KeyError(
                f"no series for metric={metric!r} node={node}; "
                f"have {len(self._store)} series"
            ) from None
