"""System-metric registry.

The public Taxonomist dataset exposes 562 system metrics sampled at 1 Hz
by LDMS on each node, drawn from kernel counter files (``/proc/vmstat``,
``/proc/meminfo``, ``/proc/stat``), Cray Aries NIC counters and Lustre
client counters.  This module reconstructs a registry with the same
*shape*: 562 named metrics across the same families, including every
metric named in the paper (Table 3 and Table 4).

Each :class:`MetricSpec` also carries the behavioural attributes the
synthetic workload models consume:

``magnitude``
    Typical base scale of the metric's values (e.g. ``nr_mapped`` lives
    in the thousands, ``MemFree`` in the tens of millions of kB).
``archetype``
    Temporal shape family of the signal during the compute phase
    (see :mod:`repro.workloads.archetypes`).
``discriminative``
    How well the metric separates applications (drives the Table 3
    F-score ordering): 1.0 metrics give each application a distinct,
    stable level; lower values introduce cross-application level
    collisions and more per-execution wander.
``input_sensitivity``
    Baseline tendency of the metric's level to scale with problem size
    (application models can amplify or suppress this).
``noise_rel``
    Relative per-execution level variation (measurement variation in the
    paper's terms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro._util.hashing import stable_choice, stable_uniform

#: Total number of metrics in the public Taxonomist dataset.
REGISTRY_SIZE = 562

#: The single metric the paper's headline results use.
PAPER_METRIC = "nr_mapped_vmstat"

#: Metrics listed in Table 3 with their published normal-fold F-scores.
TABLE3_METRICS: Dict[str, float] = {
    "nr_mapped_vmstat": 1.0,
    "Committed_AS_meminfo": 1.0,
    "nr_active_anon_vmstat": 1.0,
    "nr_anon_pages_vmstat": 1.0,
    "Active_meminfo": 0.99,
    "Mapped_meminfo": 0.99,
    "AnonPages_meminfo": 0.97,
    "MemFree_meminfo": 0.97,
    "PageTables_meminfo": 0.97,
    "nr_page_table_pages_vmstat": 0.97,
    "AMO_PKTS_metric_set_nic": 0.96,
    "AMO_FLITS_metric_set_nic": 0.95,
    "PI_PKTS_metric_set_nic": 0.95,
}

_ARCHETYPES = ("plateau", "periodic", "bursty", "ramp", "noisy_flat")


@dataclass(frozen=True)
class MetricSpec:
    """Static description of one monitored system metric."""

    name: str
    group: str
    unit: str = ""
    kind: str = "gauge"  # "gauge" or "rate" (counter reported as rate)
    magnitude: float = 1e3
    archetype: str = "plateau"
    discriminative: float = 0.5
    input_sensitivity: float = 0.3
    noise_rel: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in ("gauge", "rate"):
            raise ValueError(f"kind must be 'gauge' or 'rate', got {self.kind!r}")
        if self.archetype not in _ARCHETYPES:
            raise ValueError(
                f"archetype must be one of {_ARCHETYPES}, got {self.archetype!r}"
            )
        if not 0.0 <= self.discriminative <= 1.0:
            raise ValueError("discriminative must be in [0, 1]")
        if not 0.0 <= self.input_sensitivity <= 1.0:
            raise ValueError("input_sensitivity must be in [0, 1]")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")
        if self.noise_rel < 0:
            raise ValueError("noise_rel must be non-negative")


class MetricRegistry:
    """Ordered, name-indexed collection of :class:`MetricSpec`."""

    def __init__(self, specs: Sequence[MetricSpec]):
        self._specs: List[MetricSpec] = list(specs)
        self._by_name: Dict[str, MetricSpec] = {}
        for spec in self._specs:
            if spec.name in self._by_name:
                raise ValueError(f"duplicate metric name: {spec.name!r}")
            self._by_name[spec.name] = spec

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[MetricSpec]:
        return iter(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> MetricSpec:
        """Look up a metric by name; raises ``KeyError`` with suggestions."""
        try:
            return self._by_name[name]
        except KeyError:
            close = [n for n in self._by_name if name.lower() in n.lower()][:5]
            hint = f" (did you mean one of {close}?)" if close else ""
            raise KeyError(f"unknown metric {name!r}{hint}") from None

    def names(self) -> List[str]:
        return [s.name for s in self._specs]

    def groups(self) -> List[str]:
        seen: Dict[str, None] = {}
        for s in self._specs:
            seen.setdefault(s.group, None)
        return list(seen)

    def by_group(self, group: str) -> List[MetricSpec]:
        out = [s for s in self._specs if s.group == group]
        if not out:
            raise KeyError(f"unknown metric group {group!r}; have {self.groups()}")
        return out

    def top_metrics(self, n: int = 13) -> List[MetricSpec]:
        """Metrics sorted by discriminativeness (Table 3 ordering)."""
        ranked = sorted(
            self._specs, key=lambda s: (-s.discriminative, s.name != PAPER_METRIC, s.name)
        )
        return ranked[:n]

    def subset(self, names: Sequence[str]) -> "MetricRegistry":
        return MetricRegistry([self.get(n) for n in names])


# --------------------------------------------------------------------------
# Name lists for each LDMS metric family.  These mirror the column families
# of the public Taxonomist dataset (kernel counter names are real
# /proc/vmstat and /proc/meminfo fields; NIC names follow the Cray Aries
# counter groups the paper cites).
# --------------------------------------------------------------------------

_VMSTAT_FIELDS = [
    "nr_free_pages", "nr_alloc_batch", "nr_inactive_anon", "nr_active_anon",
    "nr_inactive_file", "nr_active_file", "nr_unevictable", "nr_mlock",
    "nr_anon_pages", "nr_mapped", "nr_file_pages", "nr_dirty", "nr_writeback",
    "nr_slab_reclaimable", "nr_slab_unreclaimable", "nr_page_table_pages",
    "nr_kernel_stack", "nr_unstable", "nr_bounce", "nr_vmscan_write",
    "nr_vmscan_immediate_reclaim", "nr_writeback_temp", "nr_isolated_anon",
    "nr_isolated_file", "nr_shmem", "nr_dirtied", "nr_written",
    "numa_hit", "numa_miss", "numa_foreign", "numa_interleave",
    "numa_local", "numa_other", "workingset_refault", "workingset_activate",
    "workingset_nodereclaim", "nr_anon_transparent_hugepages",
    "nr_free_cma", "nr_dirty_threshold", "nr_dirty_background_threshold",
    "pgpgin", "pgpgout", "pswpin", "pswpout",
    "pgalloc_dma", "pgalloc_dma32", "pgalloc_normal", "pgalloc_movable",
    "pgfree", "pgactivate", "pgdeactivate", "pgfault", "pgmajfault",
    "pgrefill_dma", "pgrefill_dma32", "pgrefill_normal", "pgrefill_movable",
    "pgsteal_kswapd_dma", "pgsteal_kswapd_dma32", "pgsteal_kswapd_normal",
    "pgsteal_kswapd_movable", "pgsteal_direct_dma", "pgsteal_direct_dma32",
    "pgsteal_direct_normal", "pgsteal_direct_movable",
    "pgscan_kswapd_dma", "pgscan_kswapd_dma32", "pgscan_kswapd_normal",
    "pgscan_kswapd_movable", "pgscan_direct_dma", "pgscan_direct_dma32",
    "pgscan_direct_normal", "pgscan_direct_movable", "pgscan_direct_throttle",
    "zone_reclaim_failed", "pginodesteal", "slabs_scanned",
    "kswapd_inodesteal", "kswapd_low_wmark_hit_quickly",
    "kswapd_high_wmark_hit_quickly", "pageoutrun", "allocstall",
    "pgrotated", "drop_pagecache", "drop_slab", "numa_pte_updates",
    "numa_huge_pte_updates", "numa_hint_faults", "numa_hint_faults_local",
    "numa_pages_migrated", "pgmigrate_success", "pgmigrate_fail",
    "compact_migrate_scanned", "compact_free_scanned", "compact_isolated",
    "compact_stall", "compact_fail", "compact_success",
    "htlb_buddy_alloc_success", "htlb_buddy_alloc_fail",
    "unevictable_pgs_culled", "unevictable_pgs_scanned",
    "unevictable_pgs_rescued", "unevictable_pgs_mlocked",
    "unevictable_pgs_munlocked", "unevictable_pgs_cleared",
    "unevictable_pgs_stranded", "thp_fault_alloc", "thp_fault_fallback",
    "thp_collapse_alloc", "thp_collapse_alloc_failed", "thp_split",
    "thp_zero_page_alloc", "thp_zero_page_alloc_failed",
]

_MEMINFO_FIELDS = [
    "MemTotal", "MemFree", "MemAvailable", "Buffers", "Cached", "SwapCached",
    "Active", "Inactive", "Active_anon", "Inactive_anon", "Active_file",
    "Inactive_file", "Unevictable", "Mlocked", "SwapTotal", "SwapFree",
    "Dirty", "Writeback", "AnonPages", "Mapped", "Shmem", "Slab",
    "SReclaimable", "SUnreclaim", "KernelStack", "PageTables", "NFS_Unstable",
    "Bounce", "WritebackTmp", "CommitLimit", "Committed_AS", "VmallocTotal",
    "VmallocUsed", "VmallocChunk", "HardwareCorrupted", "AnonHugePages",
    "HugePages_Total", "HugePages_Free", "HugePages_Rsvd", "HugePages_Surp",
    "Hugepagesize", "DirectMap4k", "DirectMap2M", "DirectMap1G",
]

_NIC_FIELDS = [
    "AMO_PKTS", "AMO_FLITS", "PI_PKTS", "PI_FLITS", "BTE_RD_PKTS",
    "BTE_RD_FLITS", "BTE_WR_PKTS", "BTE_WR_FLITS", "FMA_RD_PKTS",
    "FMA_RD_FLITS", "FMA_WR_PKTS", "FMA_WR_FLITS", "ORB_RSP_PKTS",
    "ORB_RSP_FLITS", "ORB_REQ_PKTS", "ORB_REQ_FLITS", "NPT_RSP_PKTS",
    "NPT_RSP_FLITS", "RAT_RSP_PKTS", "RAT_RSP_FLITS", "WC_PKTS", "WC_FLITS",
    "IOMMU_STALLED", "PI_STALLED", "ORB_STALLED", "NL_STALLED",
    "RX_PKTS", "RX_FLITS", "TX_PKTS", "TX_FLITS", "RX_BYTES", "TX_BYTES",
    "CQ_WRITES", "CQ_READS", "DLA_OVERFLOW", "DLA_BLOCKED",
    "SSID_ALLOC", "SSID_RELEASE", "EQ_EVENTS", "EQ_DROPS",
]

_LUSTRE_FIELDS = [
    "open", "close", "read_bytes", "write_bytes", "getattr", "setattr",
    "statfs", "seek", "fsync", "readdir", "truncate", "flock", "getxattr",
    "setxattr", "listxattr", "removexattr", "inode_permission", "readpage",
    "writepage", "direct_read", "direct_write", "lockless_read_bytes",
    "lockless_write_bytes", "dirty_pages_hits",
]

_PROCSTAT_FIELDS = [
    "user", "nice", "sys", "idle", "iowait", "irq", "softirq", "steal",
    "guest",
]

_LOADAVG_FIELDS = ["load1min", "load5min", "load15min", "runnable", "total_procs"]

# Hand-calibrated behavioural attributes for the metrics the paper names.
# magnitude values put nr_mapped in the thousands (matching Table 4's
# 6000-11000 range) and the meminfo metrics at kB scales.
_CALIBRATED: Dict[str, Tuple[float, str, float, float, float]] = {
    # name: (magnitude, archetype, discriminative, input_sensitivity, noise_rel)
    "nr_mapped_vmstat": (7.5e3, "plateau", 1.00, 0.02, 0.0015),
    "Committed_AS_meminfo": (9.0e6, "plateau", 1.00, 0.02, 0.0015),
    "nr_active_anon_vmstat": (1.5e6, "plateau", 1.00, 0.02, 0.0015),
    "nr_anon_pages_vmstat": (1.4e6, "plateau", 1.00, 0.02, 0.0015),
    "Active_meminfo": (6.5e6, "plateau", 0.99, 0.02, 0.002),
    "Mapped_meminfo": (3.0e4, "plateau", 0.99, 0.02, 0.002),
    "AnonPages_meminfo": (5.6e6, "plateau", 0.97, 0.03, 0.003),
    "MemFree_meminfo": (5.8e7, "plateau", 0.97, 0.03, 0.003),
    "PageTables_meminfo": (1.6e4, "plateau", 0.97, 0.03, 0.003),
    "nr_page_table_pages_vmstat": (4.0e3, "plateau", 0.97, 0.03, 0.003),
    "AMO_PKTS_metric_set_nic": (4.5e5, "periodic", 0.96, 0.03, 0.004),
    "AMO_FLITS_metric_set_nic": (9.0e5, "periodic", 0.95, 0.03, 0.0045),
    "PI_PKTS_metric_set_nic": (7.0e5, "periodic", 0.95, 0.03, 0.0045),
}


def _derived_attrs(name: str, group: str) -> Tuple[float, str, float, float, float]:
    """Deterministic behavioural attributes for non-calibrated metrics."""
    magnitude = 10.0 ** stable_uniform(name, "mag", low=1.0, high=7.0)
    archetype = stable_choice(_ARCHETYPES, name, "arch")
    # Most uncalibrated metrics separate applications only moderately well;
    # a long tail barely separates them at all (constant system-level
    # counters such as MemTotal carry no application signal).
    discriminative = stable_uniform(name, "disc", low=0.05, high=0.90)
    input_sensitivity = stable_uniform(name, "insens", low=0.0, high=0.8)
    noise_rel = stable_uniform(name, "noise", low=0.005, high=0.08)
    if group == "procstat":
        # CPU-time counters saturate during compute phases: weakly
        # discriminative between CPU-bound HPC codes.
        discriminative = min(discriminative, 0.45)
        archetype = "noisy_flat"
    if name.startswith(("MemTotal", "SwapTotal", "VmallocTotal", "Hugepagesize")):
        discriminative = 0.0
        input_sensitivity = 0.0
        noise_rel = 0.0
    return magnitude, archetype, discriminative, input_sensitivity, noise_rel


def _make_spec(field_name: str, group: str, kind: str, unit: str) -> MetricSpec:
    name = f"{field_name}_{group}"
    if name in _CALIBRATED:
        mag, arch, disc, insens, noise = _CALIBRATED[name]
    else:
        mag, arch, disc, insens, noise = _derived_attrs(name, group)
    return MetricSpec(
        name=name, group=group, unit=unit, kind=kind, magnitude=mag,
        archetype=arch, discriminative=disc, input_sensitivity=insens,
        noise_rel=noise,
    )


def _build_default_specs() -> List[MetricSpec]:
    specs: List[MetricSpec] = []
    for f in _VMSTAT_FIELDS:
        kind = "gauge" if f.startswith("nr_") else "rate"
        specs.append(_make_spec(f, "vmstat", kind, "pages"))
    for f in _MEMINFO_FIELDS:
        specs.append(_make_spec(f, "meminfo", "gauge", "kB"))
    for f in _NIC_FIELDS:
        specs.append(_make_spec(f, "metric_set_nic", "rate", "count/s"))
    for f in _LUSTRE_FIELDS:
        specs.append(_make_spec(f, "lustre", "rate", "ops/s"))
    for f in _LOADAVG_FIELDS:
        specs.append(_make_spec(f, "loadavg", "gauge", ""))
    specs.append(_make_spec("current_freemem", "memsys", "gauge", "kB"))

    # Fill the remainder with per-CPU procstat counters (user_cpu0_procstat,
    # nice_cpu0_procstat, ...) until the registry holds exactly
    # REGISTRY_SIZE metrics, mirroring the dataset's wide procstat family.
    remainder = REGISTRY_SIZE - len(specs)
    if remainder < 0:  # pragma: no cover - static name lists guarantee room
        raise RuntimeError("base metric families exceed the registry size")
    cpu = 0
    fi = 0
    for _ in range(remainder):
        field_name = f"{_PROCSTAT_FIELDS[fi]}_cpu{cpu}"
        specs.append(_make_spec(field_name, "procstat", "rate", "jiffies/s"))
        fi += 1
        if fi == len(_PROCSTAT_FIELDS):
            fi = 0
            cpu += 1
    return specs


_DEFAULT_REGISTRY: Optional[MetricRegistry] = None


def default_registry() -> MetricRegistry:
    """Return the shared 562-metric registry (built once, cached)."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = MetricRegistry(_build_default_specs())
        assert len(_DEFAULT_REGISTRY) == REGISTRY_SIZE
    return _DEFAULT_REGISTRY
