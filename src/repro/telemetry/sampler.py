"""1 Hz metric sampler with jitter and dropout.

LDMS samples each metric set on a fixed cadence; in practice samples
arrive with small timing jitter and are occasionally lost (aggregator
back-pressure, node hiccups).  The EFD must be robust to both, so the
simulation includes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro._util.rng import RngLike, derive_rng
from repro._util.validation import check_in_range, check_positive
from repro.telemetry.timeseries import TimeSeries

SignalFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling behaviour knobs.

    Parameters
    ----------
    period:
        Nominal sampling period in seconds (LDMS default 1.0).
    jitter_std:
        Std of per-sample timing jitter in seconds.  Jitter shifts *when*
        the signal is observed, not the timestamps recorded (LDMS stamps
        nominal times).
    dropout_prob:
        Probability that an individual sample is lost (recorded as NaN).
    quantize:
        If True, floor sampled values at zero and round to integers —
        kernel counters are non-negative integers.
    """

    period: float = 1.0
    jitter_std: float = 0.05
    dropout_prob: float = 0.001
    quantize: bool = False

    def __post_init__(self) -> None:
        check_positive(self.period, "period")
        check_in_range(self.jitter_std, "jitter_std", low=0.0)
        check_in_range(self.dropout_prob, "dropout_prob", low=0.0, high=1.0)


class Sampler:
    """Samples a continuous signal on the LDMS cadence."""

    def __init__(self, config: Optional[SamplerConfig] = None):
        self.config = config or SamplerConfig()

    def sample(
        self,
        signal: SignalFn,
        duration: float,
        rng: RngLike = None,
    ) -> TimeSeries:
        """Sample ``signal`` over ``[0, duration)``.

        ``signal`` must be vectorized: it receives an array of observation
        times and returns the metric value at each.
        """
        check_positive(duration, "duration")
        cfg = self.config
        generator = derive_rng(rng)
        n = int(np.floor(duration / cfg.period))
        nominal = np.arange(n, dtype=float) * cfg.period
        if cfg.jitter_std > 0:
            observed = nominal + generator.normal(0.0, cfg.jitter_std, size=n)
            observed = np.clip(observed, 0.0, max(duration - 1e-9, 0.0))
        else:
            observed = nominal
        values = np.asarray(signal(observed), dtype=float)
        if values.shape != nominal.shape:
            raise ValueError(
                f"signal returned shape {values.shape}, expected {nominal.shape}"
            )
        if cfg.quantize:
            values = np.round(np.maximum(values, 0.0))
        if cfg.dropout_prob > 0:
            lost = generator.random(n) < cfg.dropout_prob
            values = values.copy()
            values[lost] = np.nan
        return TimeSeries(values, period=cfg.period, t0=0.0)
