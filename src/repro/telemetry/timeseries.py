"""NumPy-backed time-series containers.

The EFD consumes exactly one statistic — the mean of a metric over a time
interval at the beginning of an execution — so :class:`TimeSeries` keeps
its representation minimal: a start time, a fixed sampling period, and a
1-D value array.  All statistics are computed on views, never copies
(see the hpc-parallel guide on memory traffic).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._util.validation import check_array_1d, check_positive


def interval_mean(
    values: np.ndarray,
    start: float,
    end: float,
    period: float = 1.0,
    t0: float = 0.0,
) -> float:
    """Mean of ``values`` over wall-clock interval ``[start, end)``.

    ``values[i]`` is the sample at time ``t0 + i * period``.  Samples with
    NaN (dropped by the sampler) are excluded.  Returns ``nan`` when the
    interval contains no valid samples — callers decide how to handle
    missing fingerprints.
    """
    if end <= start:
        raise ValueError(f"interval end must exceed start, got [{start}, {end})")
    check_positive(period, "period")
    lo = int(np.ceil((start - t0) / period))
    hi = int(np.ceil((end - t0) / period))
    lo = max(lo, 0)
    hi = min(hi, len(values))
    if hi <= lo:
        return float("nan")
    window = values[lo:hi]  # view, not copy
    if np.isnan(window).any():
        window = window[~np.isnan(window)]
        if window.size == 0:
            return float("nan")
    return float(window.mean())


class TimeSeries:
    """A regularly-sampled scalar series.

    Parameters
    ----------
    values:
        1-D array of samples; NaN marks dropped samples.
    period:
        Sampling period in seconds (LDMS default: 1.0).
    t0:
        Time of the first sample relative to job start, in seconds.
    """

    __slots__ = ("values", "period", "t0")

    def __init__(self, values, period: float = 1.0, t0: float = 0.0):
        self.values = check_array_1d(values, "values", dtype=float)
        self.period = float(check_positive(period, "period"))
        self.t0 = float(t0)

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (
            self.period == other.period
            and self.t0 == other.t0
            and np.array_equal(self.values, other.values, equal_nan=True)
        )

    def __repr__(self) -> str:
        return (
            f"TimeSeries(n={len(self.values)}, period={self.period}, "
            f"t0={self.t0}, span={self.duration:.1f}s)"
        )

    # -- derived quantities --------------------------------------------------
    @property
    def duration(self) -> float:
        """Covered wall-clock span in seconds."""
        return len(self.values) * self.period

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps (seconds since job start)."""
        return self.t0 + np.arange(len(self.values)) * self.period

    def is_complete(self) -> bool:
        """True when no samples were dropped."""
        return not np.isnan(self.values).any()

    def dropout_fraction(self) -> float:
        if len(self.values) == 0:
            return 0.0
        return float(np.isnan(self.values).mean())

    # -- statistics -----------------------------------------------------------
    def interval_mean(self, start: float, end: float) -> float:
        """Mean over wall-clock interval ``[start, end)`` (the EFD feature)."""
        return interval_mean(self.values, start, end, self.period, self.t0)

    def interval_stats(self, start: float, end: float) -> Tuple[float, float]:
        """(mean, std) over ``[start, end)``; NaN-aware."""
        if end <= start:
            raise ValueError(f"interval end must exceed start, got [{start}, {end})")
        lo = max(int(np.ceil((start - self.t0) / self.period)), 0)
        hi = min(int(np.ceil((end - self.t0) / self.period)), len(self.values))
        if hi <= lo:
            return float("nan"), float("nan")
        window = self.values[lo:hi]
        valid = window[~np.isnan(window)]
        if valid.size == 0:
            return float("nan"), float("nan")
        return float(valid.mean()), float(valid.std())

    def slice(self, start: float, end: float) -> "TimeSeries":
        """Sub-series covering ``[start, end)`` (shares memory with self)."""
        if end <= start:
            raise ValueError(f"interval end must exceed start, got [{start}, {end})")
        lo = max(int(np.ceil((start - self.t0) / self.period)), 0)
        hi = min(int(np.ceil((end - self.t0) / self.period)), len(self.values))
        hi = max(hi, lo)
        return TimeSeries(
            self.values[lo:hi], period=self.period, t0=self.t0 + lo * self.period
        )

    def downsample(self, factor: int) -> "TimeSeries":
        """Average every ``factor`` consecutive samples (NaN-aware)."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if factor == 1:
            return TimeSeries(self.values.copy(), self.period, self.t0)
        n = (len(self.values) // factor) * factor
        if n == 0:
            return TimeSeries(
                np.empty(0, dtype=float), self.period * factor, self.t0
            )
        blocks = self.values[:n].reshape(-1, factor)
        with np.errstate(invalid="ignore"):
            means = np.nanmean(blocks, axis=1)
        return TimeSeries(means, self.period * factor, self.t0)

    def fill_dropout(self, method: str = "previous") -> "TimeSeries":
        """Return a copy with NaN samples imputed.

        ``method`` is ``"previous"`` (last observation carried forward,
        what a production collector would report) or ``"mean"``.
        """
        if method not in ("previous", "mean"):
            raise ValueError(f"unknown fill method {method!r}")
        values = self.values.copy()
        nan_mask = np.isnan(values)
        if not nan_mask.any():
            return TimeSeries(values, self.period, self.t0)
        if method == "mean":
            if nan_mask.all():
                raise ValueError("cannot mean-fill a series with no valid samples")
            values[nan_mask] = values[~nan_mask].mean()
        elif method == "previous":
            idx = np.where(~nan_mask, np.arange(len(values)), -1)
            np.maximum.accumulate(idx, out=idx)
            missing_head = idx < 0
            safe_idx = np.where(missing_head, 0, idx)
            values = values[safe_idx]
            if missing_head.any():
                # No earlier observation exists: backfill from the first
                # valid sample.
                first_valid = np.argmax(~nan_mask)
                if nan_mask.all():
                    raise ValueError(
                        "cannot forward-fill a series with no valid samples"
                    )
                values[missing_head] = self.values[first_valid]
        else:
            raise ValueError(f"unknown fill method {method!r}")
        return TimeSeries(values, self.period, self.t0)
