"""Composable noise processes for synthetic telemetry.

The paper attributes fingerprint variation to "system perturbations and
noise" and deliberately places the fingerprint interval at [60 s, 120 s]
to skip the noisy initialization phase.  These models reproduce the three
effects that matter to the EFD:

- :class:`WhiteNoise` — per-sample measurement jitter (averages out over
  the 60 s interval mean).
- :class:`DriftNoise` — slow random-walk wander (does *not* average out;
  the source of distinct per-execution fingerprints such as the paper's
  miniAMR_Z double entry).
- :class:`SpikeNoise` — sporadic interference bursts from other tenants
  (noisy-bar conditions in the Shazam analogy).
- :class:`InitPhasePerturbation` — large transient during application
  startup, the reason the paper's interval starts at 60 s.

All models are vectorized: they take a time grid and return an additive
perturbation array.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._util.rng import RngLike, derive_rng
from repro._util.validation import check_non_negative, check_positive


class NoiseModel:
    """Base class: additive perturbation over a time grid."""

    def sample(self, times: np.ndarray, scale: float, rng: np.random.Generator) -> np.ndarray:
        """Return perturbations, same shape as ``times``.

        ``scale`` is the absolute amplitude reference (workload models
        pass ``level * metric.noise_rel``-style quantities).
        """
        raise NotImplementedError

    def __add__(self, other: "NoiseModel") -> "CompositeNoise":
        return CompositeNoise([self, other])


class WhiteNoise(NoiseModel):
    """IID Gaussian per-sample noise."""

    def __init__(self, rel_std: float = 1.0):
        self.rel_std = check_non_negative(rel_std, "rel_std")

    def sample(self, times, scale, rng):
        return rng.normal(0.0, self.rel_std * scale, size=len(times))


class DriftNoise(NoiseModel):
    """Random-walk drift, normalized so the end-of-window std is ``scale``.

    Unlike white noise, drift survives interval averaging, making it the
    dominant source of fingerprint-level variation.
    """

    def __init__(self, rel_std: float = 1.0):
        self.rel_std = check_non_negative(rel_std, "rel_std")

    def sample(self, times, scale, rng):
        n = len(times)
        if n == 0:
            return np.empty(0)
        steps = rng.normal(0.0, 1.0, size=n)
        walk = np.cumsum(steps)
        walk /= np.sqrt(max(n, 1))
        return walk * self.rel_std * scale


class SpikeNoise(NoiseModel):
    """Sporadic short bursts (e.g. neighbouring jobs, OS daemons).

    ``rate`` is the expected number of spikes per 1000 samples; each spike
    has an exponentially distributed amplitude and a short geometric
    duration.
    """

    def __init__(self, rate: float = 2.0, amp: float = 8.0, mean_len: int = 3):
        self.rate = check_non_negative(rate, "rate")
        self.amp = check_non_negative(amp, "amp")
        if mean_len < 1:
            raise ValueError(f"mean_len must be >= 1, got {mean_len}")
        self.mean_len = int(mean_len)

    def sample(self, times, scale, rng):
        n = len(times)
        out = np.zeros(n)
        if n == 0 or self.rate == 0:
            return out
        n_spikes = rng.poisson(self.rate * n / 1000.0)
        for _ in range(n_spikes):
            start = int(rng.integers(0, n))
            length = 1 + int(rng.geometric(1.0 / self.mean_len))
            sign = 1.0 if rng.random() < 0.5 else -1.0
            amplitude = sign * rng.exponential(self.amp) * scale
            out[start : start + length] += amplitude
        return out


class InitPhasePerturbation(NoiseModel):
    """Large transient confined to the first ``duration`` seconds.

    Models MPI startup, file staging, and memory registration: a decaying
    envelope of high-variance oscillation.  It is what makes fingerprint
    intervals starting before ~45-60 s unreliable (the paper's rationale
    for [60:120]).
    """

    def __init__(self, duration: float = 45.0, rel_amp: float = 20.0):
        self.duration = check_positive(duration, "duration")
        self.rel_amp = check_non_negative(rel_amp, "rel_amp")

    def sample(self, times, scale, rng):
        envelope = np.clip(1.0 - times / self.duration, 0.0, 1.0)
        active = envelope > 0
        out = np.zeros(len(times))
        if active.any():
            burst = rng.normal(0.0, 1.0, size=int(active.sum()))
            phase = rng.uniform(0, 2 * np.pi)
            osc = np.sin(2 * np.pi * times[active] / 7.0 + phase)
            out[active] = (burst + 2.0 * osc) * envelope[active] * self.rel_amp * scale
        return out


class CompositeNoise(NoiseModel):
    """Sum of component noise models."""

    def __init__(self, components: Sequence[NoiseModel]):
        flat = []
        for c in components:
            if isinstance(c, CompositeNoise):
                flat.extend(c.components)
            else:
                flat.append(c)
        if not flat:
            raise ValueError("CompositeNoise requires at least one component")
        self.components = list(flat)

    def sample(self, times, scale, rng):
        out = np.zeros(len(times))
        for comp in self.components:
            out += comp.sample(times, scale, rng)
        return out


def default_noise(init_duration: float = 45.0) -> CompositeNoise:
    """The noise stack used by the synthetic dataset generator."""
    return CompositeNoise(
        [
            WhiteNoise(rel_std=1.0),
            DriftNoise(rel_std=0.6),
            SpikeNoise(rate=1.5, amp=6.0),
            InitPhasePerturbation(duration=init_duration, rel_amp=25.0),
        ]
    )


def make_noise(
    kind: str = "default",
    *,
    init_duration: float = 45.0,
    scale_multiplier: float = 1.0,
) -> NoiseModel:
    """Factory for named noise stacks (used by the noise ablation bench)."""
    if kind == "none":
        return CompositeNoise([WhiteNoise(rel_std=0.0)])
    if kind == "white":
        base: NoiseModel = WhiteNoise(rel_std=1.0 * scale_multiplier)
        return CompositeNoise([base])
    if kind == "default":
        stack = default_noise(init_duration)
        if scale_multiplier != 1.0:
            return _scaled(stack, scale_multiplier)
        return stack
    if kind == "harsh":
        return _scaled(default_noise(init_duration), 4.0 * scale_multiplier)
    raise ValueError(f"unknown noise kind {kind!r}")


class _ScaledNoise(NoiseModel):
    def __init__(self, inner: NoiseModel, multiplier: float):
        self.inner = inner
        self.multiplier = check_non_negative(multiplier, "multiplier")

    def sample(self, times, scale, rng):
        return self.inner.sample(times, scale * self.multiplier, rng)


def _scaled(model: NoiseModel, multiplier: float) -> NoiseModel:
    return _ScaledNoise(model, multiplier)
