"""LDMS-like monitoring substrate.

The paper's dataset was collected with LDMS (Lightweight Distributed
Metric Service, Agelastos et al. SC'14): per-node samplers read kernel
and NIC counter sets (vmstat, meminfo, procstat, Cray NIC metrics, ...)
once per second and ship them to an aggregator.  This subpackage
simulates that stack:

- :mod:`repro.telemetry.metrics` — a 562-metric registry mirroring the
  public Taxonomist dataset's column families, including every metric the
  paper's Tables 3 and 4 name.
- :mod:`repro.telemetry.timeseries` — NumPy-backed series containers with
  interval statistics (the EFD consumes ``interval_mean``).
- :mod:`repro.telemetry.noise` — composable noise processes (white noise,
  drift, spikes, init-phase perturbation).
- :mod:`repro.telemetry.sampler` — a 1 Hz sampler with jitter and
  dropout.
- :mod:`repro.telemetry.ldms` — per-node sampler daemons plus an
  aggregator, the end-to-end collection pipeline.
"""

from repro.telemetry.metrics import (
    MetricSpec,
    MetricRegistry,
    default_registry,
    TABLE3_METRICS,
    PAPER_METRIC,
)
from repro.telemetry.timeseries import TimeSeries, interval_mean
from repro.telemetry.noise import (
    NoiseModel,
    WhiteNoise,
    DriftNoise,
    SpikeNoise,
    InitPhasePerturbation,
    CompositeNoise,
)
from repro.telemetry.sampler import Sampler, SamplerConfig
from repro.telemetry.ldms import LDMSDaemon, LDMSAggregator

__all__ = [
    "MetricSpec",
    "MetricRegistry",
    "default_registry",
    "TABLE3_METRICS",
    "PAPER_METRIC",
    "TimeSeries",
    "interval_mean",
    "NoiseModel",
    "WhiteNoise",
    "DriftNoise",
    "SpikeNoise",
    "InitPhasePerturbation",
    "CompositeNoise",
    "Sampler",
    "SamplerConfig",
    "LDMSDaemon",
    "LDMSAggregator",
]
