"""The five evaluation experiments (paper §4).

Each experiment is a set of learning/testing splits
(:mod:`repro.data.splits`) plus an evaluation rule:

- Correctness is judged at the **application-name** level ("returning
  FT_X for FT_Y is considered correct").
- For unknown-application experiments, "finding no matching fingerprints
  [is] a correct prediction for unknown applications" — ground truth is
  the reserved label ``unknown``.
- The score is the macro-averaged F-score over the labels present in the
  split's ground truth, computed per split and averaged over the
  experiment's splits ("Each input size is removed once and results are
  averaged").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RngLike
from repro.baselines.taxonomist import TaxonomistClassifier
from repro.core.recognizer import EFDRecognizer
from repro.data.dataset import ExecutionDataset
from repro.data.splits import (
    Split,
    UNKNOWN_LABEL,
    hard_input_splits,
    hard_unknown_splits,
    kfold_splits,
    soft_input_splits,
    soft_unknown_splits,
)
from repro.ml.metrics import f1_score
from repro.parallel.pool import parallel_map

#: Canonical experiment order (matches Figure 2's x-axis).
EXPERIMENT_NAMES: Tuple[str, ...] = (
    "normal_fold",
    "soft_input",
    "soft_unknown",
    "hard_input",
    "hard_unknown",
)

#: ``factory() -> object with fit(ExecutionDataset) and predict(dataset) -> List[str]``
RecognizerFactory = Callable[[], object]


@dataclass(frozen=True)
class ExperimentResult:
    """Aggregated outcome of one experiment."""

    experiment: str
    fscore: float                      # mean macro-F over splits
    split_scores: Tuple[float, ...]    # per-split macro-F
    split_names: Tuple[str, ...]
    n_train: int                       # total train examples over splits
    n_test: int

    @property
    def fscore_std(self) -> float:
        if len(self.split_scores) < 2:
            return 0.0
        return float(np.std(self.split_scores))

    def __str__(self) -> str:
        return (
            f"{self.experiment}: F={self.fscore:.3f} "
            f"(±{self.fscore_std:.3f} over {len(self.split_scores)} splits)"
        )


def evaluate_split(
    dataset: ExecutionDataset,
    split: Split,
    factory: RecognizerFactory,
) -> float:
    """Macro-F of a freshly trained recognizer on one split."""
    train = dataset.subset(list(split.train_indices))
    test = dataset.subset(list(split.test_indices))
    recognizer = factory()
    recognizer.fit(train)  # type: ignore[attr-defined]
    predictions = recognizer.predict(test)  # type: ignore[attr-defined]
    if isinstance(predictions, str):  # single-record edge
        predictions = [predictions]
    y_true = list(split.expected)
    y_pred = list(predictions)
    if len(y_pred) != len(y_true):
        raise RuntimeError(
            f"recognizer returned {len(y_pred)} predictions for "
            f"{len(y_true)} test records"
        )
    # Score over the ground-truth label set only (scikit-learn's default
    # with labels=unique(y_true)): a prediction outside it — e.g. a
    # spurious "unknown" — costs recall on the true class without
    # inventing a phantom class whose F-score would be 0 by construction.
    labels = sorted(set(y_true))
    return f1_score(y_true, y_pred, labels=labels, average="macro")


def evaluate_splits(
    dataset: ExecutionDataset,
    splits: Sequence[Split],
    factory: RecognizerFactory,
    experiment: str = "custom",
    backend: str = "serial",
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Run ``factory`` over every split and aggregate."""
    if not splits:
        raise ValueError("splits must be non-empty")
    scores = parallel_map(
        lambda s: evaluate_split(dataset, s, factory),
        list(splits),
        backend=backend,
        n_workers=n_workers,
    )
    return ExperimentResult(
        experiment=experiment,
        fscore=float(np.mean(scores)),
        split_scores=tuple(float(s) for s in scores),
        split_names=tuple(s.name for s in splits),
        n_train=sum(len(s.train_indices) for s in splits),
        n_test=sum(len(s.test_indices) for s in splits),
    )


def splits_for(
    experiment: str,
    dataset: ExecutionDataset,
    k: int = 5,
    seed: RngLike = 0,
) -> List[Split]:
    """Build the splits of a named experiment."""
    if experiment == "normal_fold":
        return kfold_splits(dataset, k, seed)
    if experiment == "soft_input":
        return soft_input_splits(dataset, k, seed)
    if experiment == "soft_unknown":
        return soft_unknown_splits(dataset, k, seed)
    if experiment == "hard_input":
        return hard_input_splits(dataset)
    if experiment == "hard_unknown":
        return hard_unknown_splits(dataset)
    raise ValueError(
        f"unknown experiment {experiment!r}; known: {EXPERIMENT_NAMES}"
    )


def run_experiment(
    experiment: str,
    dataset: ExecutionDataset,
    factory: RecognizerFactory,
    k: int = 5,
    seed: RngLike = 0,
    backend: str = "serial",
    n_workers: Optional[int] = None,
) -> ExperimentResult:
    """Build the experiment's splits and evaluate ``factory`` on them."""
    splits = splits_for(experiment, dataset, k=k, seed=seed)
    return evaluate_splits(
        dataset, splits, factory, experiment=experiment,
        backend=backend, n_workers=n_workers,
    )


# ---------------------------------------------------------------------------
# Standard factories
# ---------------------------------------------------------------------------

def make_efd_factory(
    metric: str = "nr_mapped_vmstat",
    interval: Tuple[float, float] = (60.0, 120.0),
    depth: Optional[int] = None,
    seed: RngLike = 0,
) -> RecognizerFactory:
    """Factory for the paper's EFD configuration (1 metric, 2 minutes)."""

    def factory() -> EFDRecognizer:
        return EFDRecognizer(
            metric=metric,
            interval=interval,
            depth=depth,
            seed=seed,
            unknown_label=UNKNOWN_LABEL,
        )

    return factory


def make_taxonomist_factory(
    metrics: Optional[Sequence[str]] = None,
    n_estimators: int = 40,
    confidence_threshold: float = 0.55,
    seed: RngLike = 0,
) -> RecognizerFactory:
    """Factory for the Taxonomist baseline (many metrics, full window)."""

    def factory() -> TaxonomistClassifier:
        return TaxonomistClassifier(
            metrics=list(metrics) if metrics is not None else None,
            window=(0.0, None),
            n_estimators=n_estimators,
            confidence_threshold=confidence_threshold,
            unknown_label=UNKNOWN_LABEL,
            random_state=seed,
        )

    return factory
