"""Figure 2 — EFD vs Taxonomist across the five experiments.

    "Comparison between Taxonomist (using 721 system metrics and the
    entire execution time window) and EFD (using only 1 system metric
    nr_mapped_vmstat and only the first 2 minutes of the execution time
    window).  The 'hard input' and 'hard unknown' experiments were not
    conducted in the Taxonomist."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro._util.rng import RngLike
from repro._util.tables import render_bar_chart
from repro.data.dataset import ExecutionDataset
from repro.experiments.protocol import (
    EXPERIMENT_NAMES,
    make_efd_factory,
    make_taxonomist_factory,
)
from repro.experiments.runner import ExperimentSuite

#: Experiments the original Taxonomist evaluation covers.
TAXONOMIST_EXPERIMENTS: Tuple[str, ...] = (
    "normal_fold",
    "soft_input",
    "soft_unknown",
)

#: Pretty x-axis labels.
EXPERIMENT_LABELS: Dict[str, str] = {
    "normal_fold": "Normal fold",
    "soft_input": "Soft input",
    "soft_unknown": "Soft unknown",
    "hard_input": "Hard input",
    "hard_unknown": "Hard unknown",
}


def figure2_series(
    dataset: ExecutionDataset,
    efd_metric: str = "nr_mapped_vmstat",
    taxonomist_metrics: Optional[Sequence[str]] = None,
    k: int = 5,
    seed: RngLike = 0,
    backend: str = "serial",
    n_workers: Optional[int] = None,
) -> Dict[str, List[Optional[float]]]:
    """Compute both bar series of Figure 2.

    Returns ``{"EFD": [...], "Taxonomist": [...]}`` aligned with
    :data:`~repro.experiments.protocol.EXPERIMENT_NAMES`; the
    Taxonomist's hard-experiment entries are ``None`` (not conducted in
    the original paper).

    ``taxonomist_metrics`` defaults to every metric the dataset carries —
    give the baseline the richest monitoring available, as the original
    did with 721 metrics.
    """
    suite = ExperimentSuite(
        dataset, k=k, seed=seed, backend=backend, n_workers=n_workers
    )
    efd = suite.run(
        make_efd_factory(metric=efd_metric, seed=seed),
        recognizer_name="EFD",
    )
    taxo = suite.run(
        make_taxonomist_factory(metrics=taxonomist_metrics, seed=seed),
        recognizer_name="Taxonomist",
        experiments=TAXONOMIST_EXPERIMENTS,
    )
    return {
        "EFD": efd.series(EXPERIMENT_NAMES),
        "Taxonomist": taxo.series(EXPERIMENT_NAMES),
    }


def render_figure2(series: Dict[str, List[Optional[float]]]) -> str:
    """ASCII rendering of the Figure 2 grouped bars."""
    labels = [EXPERIMENT_LABELS[e] for e in EXPERIMENT_NAMES]
    pairs = [(name, values) for name, values in series.items()]
    chart = render_bar_chart(
        labels,
        pairs,
        width=40,
        vmax=1.0,
        title=(
            "Figure 2: EFD (1 metric, first 2 minutes) vs Taxonomist "
            "(all collected metrics, full window)"
        ),
    )
    return chart + "\n(n/a = experiment not conducted for this system, as in the paper)"
