"""Plain-text reporting helpers (including the Figure 1 diagram)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro._util.tables import TextTable
from repro.experiments.protocol import EXPERIMENT_NAMES, ExperimentResult


def render_mechanism_diagram() -> str:
    """ASCII rendition of Figure 1 (the EFD mechanism overview)."""
    return "\n".join(
        [
            "Figure 1: Execution-fingerprint-dictionary application recognition",
            "",
            "  labeled executions                       unlabeled execution",
            "  (app + input known)                      (app unknown)",
            "        |                                        |",
            "        v                                        v",
            "  per-node interval means                 per-node interval means",
            "  (metric, node, [60:120])                (metric, node, [60:120])",
            "        |                                        |",
            "   (1) round to depth d  ('pruning')        round to depth d",
            "        |                                        |",
            "        v                                        v",
            "  +------------------- Execution Fingerprint Dictionary ---------+",
            "  | key: [metric, node, [60:120], mean]  ->  value: app_input(s) |",
            "  +---------------------------------------------------------------+",
            "        ^                                        |",
            "        |                                   (2) lookup",
            "   add key-value pairs                           |",
            "                                                 v",
            "                                    (3) most-matched application",
            "                                        (array on ties; none -> unknown)",
        ]
    )


def render_suite_comparison(results: Dict[str, Dict[str, ExperimentResult]]) -> str:
    """Tabulate {recognizer: {experiment: result}} F-scores."""
    table = TextTable(["Experiment"] + list(results))
    for experiment in EXPERIMENT_NAMES:
        row: List[str] = [experiment]
        for recognizer in results:
            result = results[recognizer].get(experiment)
            row.append(f"{result.fscore:.3f}" if result else "n/a")
        table.add_row(row)
    return table.render()


def render_experiment_detail(result: ExperimentResult) -> str:
    """Per-split breakdown of one experiment."""
    table = TextTable(
        ["Split", "Macro F-score"],
        title=f"{result.experiment}: mean F={result.fscore:.3f} "
              f"(± {result.fscore_std:.3f})",
    )
    for name, score in zip(result.split_names, result.split_scores):
        table.add_row([name, f"{score:.3f}"])
    return table.render()
