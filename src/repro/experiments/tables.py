"""Renderers reproducing the paper's Tables 1-4."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro._util.rng import RngLike
from repro._util.tables import TextTable, format_float
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import DEFAULT_INTERVAL, build_fingerprints
from repro.core.rounding import round_depth, significant_digits
from repro.data.dataset import ExecutionDataset
from repro.experiments.protocol import make_efd_factory, run_experiment
from repro.telemetry.metrics import TABLE3_METRICS

# ---------------------------------------------------------------------------
# Table 1 — rounding depth showcase
# ---------------------------------------------------------------------------

TABLE1_VALUES: Tuple[float, ...] = (1358.0, 5.28, 0.038)
TABLE1_DEPTHS: Tuple[int, ...] = (5, 4, 3, 2, 1)


def table1_rows(
    values: Sequence[float] = TABLE1_VALUES,
    depths: Sequence[int] = TABLE1_DEPTHS,
) -> List[List[str]]:
    """Rows of Table 1; depths beyond a value's precision render as '-'."""
    rows = []
    for value in values:
        row = [f"{value:g}"]
        precision = significant_digits(value)
        for depth in depths:
            if depth > precision:
                row.append("-")
            else:
                row.append(f"{round_depth(value, depth):g}")
        rows.append(row)
    return rows


def render_table1() -> str:
    table = TextTable(
        ["Original Value"] + [str(d) for d in TABLE1_DEPTHS],
        title="Table 1: Rounding Depth for Measurements",
    )
    table.add_rows(table1_rows())
    return table.render()


# ---------------------------------------------------------------------------
# Table 2 — dataset composition
# ---------------------------------------------------------------------------

def render_table2(dataset: ExecutionDataset) -> str:
    summary = dataset.summary()
    table = TextTable(
        ["Applications", "Input Sizes", "Node Count", "Repeated Executions"],
        title="Table 2: Dataset used for Evaluation",
    )
    reps = summary["repetitions"]
    table.add_row(
        [
            ", ".join(summary["applications"]),
            ", ".join(summary["input_sizes"]),
            summary["node_count"],
            "/".join(str(r) for r in reps),
        ]
    )
    footer = (
        f"({summary['executions']} executions over {summary['pairs']} "
        f"application-input pairs; {summary['metrics']} metric(s) collected)"
    )
    return table.render() + "\n" + footer


# ---------------------------------------------------------------------------
# Table 3 — per-metric F-scores (normal fold)
# ---------------------------------------------------------------------------

def table3_scores(
    dataset: ExecutionDataset,
    metrics: Optional[Sequence[str]] = None,
    k: int = 5,
    seed: RngLike = 0,
) -> Dict[str, float]:
    """Normal-fold macro-F per metric (the dataset must carry them all)."""
    metric_list = list(metrics) if metrics is not None else list(dataset.metrics)
    missing = [m for m in metric_list if m not in dataset.metrics]
    if missing:
        raise KeyError(
            f"dataset lacks metrics {missing[:5]}; regenerate with "
            f"DatasetConfig(metrics=...)"
        )
    scores: Dict[str, float] = {}
    for metric in metric_list:
        result = run_experiment(
            "normal_fold", dataset, make_efd_factory(metric=metric, seed=seed),
            k=k, seed=seed,
        )
        scores[metric] = result.fscore
    return scores


def render_table3(
    scores: Dict[str, float],
    paper_scores: Optional[Dict[str, float]] = None,
) -> str:
    """Render measured (and optionally paper-reported) per-metric F-scores."""
    if paper_scores is None:
        paper_scores = TABLE3_METRICS
    headers = ["System Metric Name", "F-score Normal Fold (measured)"]
    include_paper = any(m in paper_scores for m in scores)
    if include_paper:
        headers.append("(paper)")
    table = TextTable(
        headers, title="Table 3: Excerpt of Individual System Metric Results"
    )
    for metric, score in sorted(scores.items(), key=lambda kv: -kv[1]):
        row = [metric, format_float(score, 2)]
        if include_paper:
            paper = paper_scores.get(metric)
            row.append(format_float(paper, 2) if paper is not None else "-")
        table.add_row(row)
    return table.render()


# ---------------------------------------------------------------------------
# Table 4 — example EFD
# ---------------------------------------------------------------------------

#: The application subset shown in the paper's example dictionary.
TABLE4_APPS: Tuple[str, ...] = ("ft", "mg", "sp", "bt", "lu", "miniGhost", "miniAMR")
TABLE4_DEPTH = 2


def example_efd(
    dataset: ExecutionDataset,
    metric: str = "nr_mapped_vmstat",
    depth: int = TABLE4_DEPTH,
    apps: Sequence[str] = TABLE4_APPS,
    interval: Tuple[float, float] = DEFAULT_INTERVAL,
) -> ExecutionFingerprintDictionary:
    """Build the Table 4 example: subset of apps, fixed rounding depth."""
    subset = dataset.filter(apps=list(apps))
    if len(subset) == 0:
        raise ValueError(f"dataset has no executions for apps {list(apps)}")
    efd = ExecutionFingerprintDictionary()
    for record in subset:
        efd.add_many(build_fingerprints(record, metric, depth, interval), record.label)
    return efd


def render_table4(efd: ExecutionFingerprintDictionary) -> str:
    table = TextTable(
        ["Metric Name", "Node", "Interval", "Mean", "Application + Input Size"],
        title="Table 4: Example Execution Fingerprint Dictionary "
              f"(rounding depth fixed to {TABLE4_DEPTH})",
    )
    # Group rows by application order of first appearance, then value,
    # mirroring the paper's layout (one block per application).
    entries = list(efd.entries())

    def sort_key(item):
        fp, labels = item
        first_label = labels[0]
        return (efd.labels().index(first_label), fp.value, fp.node)

    for fp, labels in sorted(entries, key=sort_key):
        start, end = fp.interval
        table.add_row(
            [
                fp.metric,
                fp.node,
                f"[{start:g}:{end:g}]",
                f"{fp.value:g}",
                ", ".join(labels),
            ]
        )
    return table.render()
