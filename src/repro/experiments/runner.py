"""Experiment suite runner: the full Figure 2 pipeline in one object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util.rng import RngLike
from repro.data.dataset import ExecutionDataset
from repro.experiments.protocol import (
    EXPERIMENT_NAMES,
    ExperimentResult,
    RecognizerFactory,
    run_experiment,
)


@dataclass
class SuiteResult:
    """Results of one recognizer across the five experiments."""

    recognizer_name: str
    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    def fscore(self, experiment: str) -> Optional[float]:
        result = self.results.get(experiment)
        return result.fscore if result is not None else None

    def series(self, experiments: Sequence[str] = EXPERIMENT_NAMES) -> List[Optional[float]]:
        """F-scores aligned with ``experiments`` (None = not conducted)."""
        return [self.fscore(e) for e in experiments]

    def __str__(self) -> str:
        lines = [f"{self.recognizer_name}:"]
        for name in EXPERIMENT_NAMES:
            result = self.results.get(name)
            lines.append(
                f"  {name:13s} "
                + (f"F={result.fscore:.3f}" if result else "not conducted")
            )
        return "\n".join(lines)


class ExperimentSuite:
    """Runs a recognizer factory through (a subset of) the experiments.

    The paper's Figure 2 runs the EFD through all five experiments and
    Taxonomist through the first three ("The 'hard input' and 'hard
    unknown' experiments were not conducted in the Taxonomist").
    """

    def __init__(
        self,
        dataset: ExecutionDataset,
        k: int = 5,
        seed: RngLike = 0,
        backend: str = "serial",
        n_workers: Optional[int] = None,
    ):
        if len(dataset) == 0:
            raise ValueError("dataset must be non-empty")
        self.dataset = dataset
        self.k = k
        self.seed = seed
        self.backend = backend
        self.n_workers = n_workers

    def run(
        self,
        factory: RecognizerFactory,
        recognizer_name: str,
        experiments: Sequence[str] = EXPERIMENT_NAMES,
    ) -> SuiteResult:
        suite = SuiteResult(recognizer_name=recognizer_name)
        for experiment in experiments:
            suite.results[experiment] = run_experiment(
                experiment,
                self.dataset,
                factory,
                k=self.k,
                seed=self.seed,
                backend=self.backend,
                n_workers=self.n_workers,
            )
        return suite
