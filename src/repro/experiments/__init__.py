"""Evaluation harness for the paper's experiments (§4).

- :mod:`repro.experiments.protocol` — the five experiments and the
  F-score evaluation rules.
- :mod:`repro.experiments.runner` — end-to-end suite execution.
- :mod:`repro.experiments.tables` — renderers for Tables 1-4.
- :mod:`repro.experiments.figures` — the Figure 2 comparison series.
- :mod:`repro.experiments.reporting` — text rendering (tables, bars,
  the Figure 1 mechanism diagram).
"""

from repro.experiments.protocol import (
    EXPERIMENT_NAMES,
    ExperimentResult,
    evaluate_splits,
    run_experiment,
    make_efd_factory,
    make_taxonomist_factory,
)
from repro.experiments.runner import ExperimentSuite, SuiteResult
from repro.experiments.tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table3_scores,
    example_efd,
)
from repro.experiments.figures import figure2_series, render_figure2
from repro.experiments.reporting import render_mechanism_diagram

__all__ = [
    "EXPERIMENT_NAMES",
    "ExperimentResult",
    "evaluate_splits",
    "run_experiment",
    "make_efd_factory",
    "make_taxonomist_factory",
    "ExperimentSuite",
    "SuiteResult",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "table3_scores",
    "example_efd",
    "figure2_series",
    "render_figure2",
    "render_mechanism_diagram",
]
