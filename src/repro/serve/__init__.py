"""Live-session recognition service (async ingestion front-end).

The EFD's operational promise is a verdict *while the job runs* — two
minutes in, from the first measurement interval.  ``repro.serve`` is the
subsystem that cashes that in for a whole cluster at once:

- :class:`~repro.serve.stream.Sample` / JSONL helpers define the wire
  format a monitoring bus delivers (one observation per line), and
  :func:`~repro.serve.stream.interleave_records` replays stored dataset
  telemetry as a realistic interleaved multi-job stream.
- :class:`~repro.serve.config.ServeConfig` pins down the operational
  envelope: ingest-queue bound, block/shed backpressure, micro-batch
  coalescing, session timeout and eviction policy.
- :class:`~repro.serve.service.IngestService` runs the event loop: one
  :class:`~repro.core.streaming.StreamSession` per job id, micro-batches
  of ready sessions resolved through
  :meth:`~repro.engine.batch.BatchRecognizer.recognize_sessions` on a
  worker executor, verdicts delivered as awaitables and callbacks, and
  every operational counter folded into the engine's
  :class:`~repro.engine.stats.EngineStats`.

Surfaced on the command line as ``efd serve`` (see ``docs/cli.md``).
Verdicts are element-wise identical to the synchronous batch path —
property-tested in ``tests/test_serve_service.py``.
"""

from repro.serve.config import BACKPRESSURE_POLICIES, EVICT_POLICIES, ServeConfig
from repro.serve.service import (
    IngestService,
    ServeError,
    SessionEvicted,
    SessionWorkerError,
)
from repro.serve.stream import (
    Sample,
    interleave_records,
    parse_sample,
    read_samples,
    record_samples,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "EVICT_POLICIES",
    "IngestService",
    "Sample",
    "ServeConfig",
    "ServeError",
    "SessionEvicted",
    "SessionWorkerError",
    "interleave_records",
    "parse_sample",
    "read_samples",
    "record_samples",
]
