"""Live-session recognition service (async ingestion front-end).

The EFD's operational promise is a verdict *while the job runs* — two
minutes in, from the first measurement interval.  ``repro.serve`` is the
subsystem that cashes that in for a whole cluster at once:

- :class:`~repro.serve.stream.Sample` / JSONL helpers define the wire
  format a monitoring bus delivers (one observation per line), and
  :func:`~repro.serve.stream.interleave_records` replays stored dataset
  telemetry as a realistic interleaved multi-job stream.
- :class:`~repro.serve.config.ServeConfig` pins down the operational
  envelope: ingest-queue bound, block/shed backpressure, micro-batch
  coalescing, session timeout and eviction policy.
- :class:`~repro.serve.service.IngestService` runs the event loop: one
  :class:`~repro.core.streaming.StreamSession` per job id, micro-batches
  of ready sessions resolved through
  :meth:`~repro.engine.batch.BatchRecognizer.recognize_sessions` on a
  worker executor, verdicts delivered as awaitables and callbacks, and
  every operational counter folded into the engine's
  :class:`~repro.engine.stats.EngineStats`.  A retention loop
  auto-prunes completed sessions by age and/or count, so a week-long
  campaign runs in bounded memory.
- :class:`~repro.serve.net.NetListener` is the multi-producer front
  door: a TCP + Unix-domain-socket listener that lets N monitoring
  relays push the same NDJSON concurrently, with per-connection
  micro-batching, fault isolation, and backpressure that propagates to
  slow producers via TCP flow control.  :func:`~repro.serve.net.push_samples`
  / :func:`~repro.serve.net.replay_samples` are the producer half.

Surfaced on the command line as ``efd serve`` (files, stdin, or
``--listen``/``--uds`` endpoints) and ``efd replay --connect`` (see
``docs/cli.md``; operations guide in ``docs/serving.md``).  Verdicts are
element-wise identical to the synchronous batch path — property-tested
in ``tests/test_serve_service.py`` and, over the wire, in
``tests/test_serve_net.py``.
"""

from repro.serve.config import BACKPRESSURE_POLICIES, EVICT_POLICIES, ServeConfig
from repro.serve.net import (
    NetListener,
    ProtocolError,
    push_samples,
    replay_samples,
    split_by_job,
)
from repro.serve.service import (
    IngestService,
    ServeError,
    SessionEvicted,
    SessionWorkerError,
)
from repro.serve.stream import (
    Sample,
    interleave_records,
    parse_sample,
    read_samples,
    record_samples,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "EVICT_POLICIES",
    "IngestService",
    "NetListener",
    "ProtocolError",
    "Sample",
    "ServeConfig",
    "ServeError",
    "SessionEvicted",
    "SessionWorkerError",
    "interleave_records",
    "parse_sample",
    "push_samples",
    "read_samples",
    "record_samples",
    "replay_samples",
    "split_by_job",
]
