"""Async ingestion service: live-session recognition with backpressure.

:class:`IngestService` is the event-loop front-end the ROADMAP asks for
on top of :meth:`~repro.engine.batch.BatchRecognizer.recognize_sessions`:
telemetry samples for thousands of concurrent jobs flow in one at a
time, each job accumulates into its own
:class:`~repro.core.streaming.StreamSession`, and the moment a session
crosses the fingerprint interval mark it is coalesced with other ready
sessions into a recognition micro-batch that resolves on a worker
executor — while ingestion keeps running.

The pipeline, all on one event loop::

    submit(sample) ──> [bounded ingest queue] ──> _ingest_loop
                             │ full?                  │ routes into
                             │ block / shed           │ per-job StreamSession
                             ▼                        ▼ session.ready?
                        backpressure            [ready queue] ──> _batch_loop
                                                                     │ coalesce
                                                                     ▼
                                           executor: recognize_sessions(batch)
                                                                     │
                                              futures / callbacks <──┘

Guarantees (property-tested in ``tests/test_serve_service.py``):

- **Equivalence** — with no samples shed and no sessions evicted, every
  verdict is element-wise identical to calling
  ``BatchRecognizer.recognize_sessions`` synchronously on sessions fed
  the same samples, for every backpressure configuration.  Ingestion is
  commutative (interval sums), so neither queueing order nor micro-batch
  composition can change a verdict.  One delivery assumption: per-node
  timestamps are non-decreasing (a monitoring bus's normal order) —
  a sample retransmitted *out of order* after its session crossed the
  interval mark is dropped as late rather than folded in.
- **Bounded memory** — the ingest queue and the *active* session table
  are the only buffers, both capped by
  :class:`~repro.serve.config.ServeConfig`.  Completed sessions are
  retained for verdict retrieval until :meth:`IngestService.forget` —
  or, with ``retention_max_age`` / ``retention_max_done`` configured,
  until the retention loop auto-prunes them (the week-long-campaign
  mode; see ``docs/serving.md``).
- **Explicit failure** — a recognition worker crash is isolated to the
  failing session and surfaces as a
  :class:`~repro.parallel.pool.WorkerError` carrying that session's job
  id; healthy sessions in the same micro-batch still resolve.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from functools import partial
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.matcher import MatchResult
from repro.core.streaming import StreamSession
from repro.engine.batch import BatchRecognizer
from repro.parallel.pool import WorkerError
from repro.serve.config import ServeConfig
from repro.serve.stream import Sample

#: Signature of the optional verdict callback: ``(job_id, result)``.
VerdictCallback = Callable[[str, MatchResult], None]


class ServeError(RuntimeError):
    """Base class for ingestion-service errors."""


class SessionEvicted(ServeError):
    """A session timed out under the ``evict="drop"`` policy.

    Raised from the session's verdict awaitable; carries the job id and
    the configured timeout.
    """

    def __init__(self, job: str, timeout: float):
        self.job = job
        self.timeout = timeout
        super().__init__(
            f"session {job!r} evicted: no samples for {timeout:g}s and the "
            f"fingerprint interval never completed"
        )


class SessionWorkerError(WorkerError):
    """Recognition crashed on one session of a micro-batch.

    A :class:`~repro.parallel.pool.WorkerError` (so existing handlers
    keep working) that additionally names the failing session's job id
    (:attr:`session_id`).
    """

    def __init__(self, session_id: str, index: int, n_items: int,
                 original: BaseException):
        super().__init__(index, n_items, original)
        self.session_id = session_id
        # Rebuild the message with the job id front and center.
        self.args = (
            f"recognition failed for session {session_id!r} "
            f"(item {index} of {n_items}): "
            f"{type(original).__name__}: {original}",
        )


class _Phase(Enum):
    ACTIVE = "active"      # accepting samples, not yet ready
    QUEUED = "queued"      # on the ready queue / in a resolving batch
    DONE = "done"          # future resolved (verdict or error)


@dataclass
class _SessionState:
    """Service-side bookkeeping around one StreamSession."""

    job: str
    session: StreamSession
    future: "asyncio.Future[MatchResult]"
    last_activity: float
    phase: _Phase = _Phase.ACTIVE
    ready_at: float = 0.0
    done_at: float = 0.0
    forced: bool = False


class IngestService:
    """Asyncio front-end resolving live sessions through a batch engine.

    Parameters
    ----------
    engine:
        A :class:`~repro.engine.batch.BatchRecognizer`; its dictionary /
        metric / depth / interval configure every session, and its
        :class:`~repro.engine.stats.EngineStats` accumulates both the
        recognition counters and the service counters (queue depth,
        sheds, evictions, latency).
    config:
        :class:`~repro.serve.config.ServeConfig`; defaults are sized for
        an interactive demo, not a production deployment.
    on_verdict:
        Optional callback invoked on the event loop as
        ``on_verdict(job_id, result)`` whenever a session resolves
        successfully (including forced/evicted verdicts).

    Use as an async context manager::

        async with IngestService(engine, config) as svc:
            async for sample in feed:
                await svc.submit(sample)
            await svc.drain()
            verdict = await svc.verdict("j-1042")

    The service itself is single-loop: every public coroutine must be
    awaited on the loop that entered the context.  Recognition runs on a
    thread executor so the loop never blocks on a batch.
    """

    def __init__(
        self,
        engine: BatchRecognizer,
        config: Optional[ServeConfig] = None,
        on_verdict: Optional[VerdictCallback] = None,
    ):
        self.engine = engine
        self.config = config or ServeConfig()
        self.on_verdict = on_verdict
        self.n_callback_errors = 0
        self.stats = engine.stats
        self._sessions: Dict[str, _SessionState] = {}
        self._pending_opens: "set[str]" = set()  # admitted, not yet routed
        self._n_active = 0            # sessions not yet DONE
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ingest_q: Optional["asyncio.Queue[object]"] = None
        self._ready_q: Optional["asyncio.Queue[str]"] = None
        self._ingest_task: Optional["asyncio.Task[None]"] = None
        self._batch_task: Optional["asyncio.Task[None]"] = None
        self._tasks: List["asyncio.Task[None]"] = []
        self._batches: "set[asyncio.Task[None]]" = set()
        self._inflight: Optional[asyncio.Semaphore] = None
        self._session_freed: Optional[asyncio.Event] = None
        self._n_unresolved = 0        # QUEUED sessions not yet resolved
        self._quiescent: Optional[asyncio.Event] = None
        self._engine_lock = threading.Lock()
        self._running = False
        # Completed sessions in resolution order, for retention pruning.
        # Entries are (job, done_at); a manually forgotten job leaves a
        # stale entry behind, detected by comparing done_at on prune.
        self._done_order: Deque[Tuple[str, float]] = deque()
        self._n_done = 0              # DONE sessions still in _sessions

    @property
    def engine_lock(self) -> threading.Lock:
        """The lock serializing engine access across executor threads.

        Anything mutating the engine's dictionary from outside the
        service — a :class:`~repro.engine.replicate.ReplicationFollower`
        applying the leader's stream, an operator folding the delta-log
        — must hold this, exactly as :meth:`learn` and the recognition
        path do, or batches would read a store mid-mutation.
        """
        return self._engine_lock

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "IngestService":
        """Create the queues and start the ingest/batch/reaper tasks."""
        if self._running:
            raise RuntimeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._ingest_q = asyncio.Queue(maxsize=self.config.max_pending_samples)
        self._ready_q = asyncio.Queue()
        self._inflight = asyncio.Semaphore(self.config.max_inflight_batches)
        self._session_freed = asyncio.Event()
        self._quiescent = asyncio.Event()
        self._quiescent.set()
        self._running = True
        # Warm-start: prebuild the engine's session-path lookup index on
        # the executor (for a columnar shard directory that is the
        # vectorized full-key index — the negative-lookup filters alone
        # load at open and would otherwise defer this build to the
        # first batch that survives them), so the first micro-batch —
        # and the event loop — never pays for it.  With mmap storage
        # the build also reads through the OS page cache, prefaulting
        # pages every serve worker then shares.
        warm = getattr(self.engine, "warm", None)
        if warm is not None:
            await self._loop.run_in_executor(
                None, partial(warm, for_sessions=True)
            )
        self._ingest_task = self._loop.create_task(
            self._ingest_loop(), name="efd-serve-ingest"
        )
        self._batch_task = self._loop.create_task(
            self._batch_loop(), name="efd-serve-batch"
        )
        self._tasks = [self._ingest_task, self._batch_task]
        if self.config.session_timeout is not None:
            self._tasks.append(
                self._loop.create_task(self._reaper_loop(), name="efd-serve-reaper")
            )
        if self.config.retention_max_age is not None:
            self._tasks.append(
                self._loop.create_task(
                    self._retention_loop(), name="efd-serve-retention"
                )
            )
        return self

    async def __aenter__(self) -> "IngestService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(force=exc_type is None)

    async def close(self, force: bool = True) -> None:
        """Drain and stop the service.

        With ``force`` (default), sessions still mid-stream when the
        feed ends are decided early from whatever samples arrived —
        the operational behavior for a stream that simply stops.
        Without it, their awaitables are cancelled.
        """
        if not self._running:
            return
        await self.drain()
        if force:
            for state in self._sessions.values():
                if state.phase is _Phase.ACTIVE:
                    self._queue_ready(state, forced=True)
            await self.drain()
        self._running = False
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        # _finish may cascade into a size-cap prune, which mutates
        # _sessions — iterate over a snapshot.
        for state in list(self._sessions.values()):
            if not state.future.done():
                state.future.cancel()
            if state.phase is not _Phase.DONE:
                # Finalize abandoned sessions (close(force=False) with the
                # stream mid-flight): without this the active-session
                # gauge stays pinned and `forget` refuses them forever.
                self._finish(state)
        if self.config.compact_on_close:
            # Learn-while-serving leaves pending delta-log records on a
            # columnar dictionary; fold them into the base so the next
            # boot opens a clean directory.  No-op on other backends.
            compact = getattr(self.engine.dictionary, "compact_delta", None)
            if compact is not None:

                def _fold() -> int:
                    with self._engine_lock:
                        return compact()

                await self._loop.run_in_executor(None, _fold)

    async def drain(self) -> None:
        """Wait until every accepted sample is ingested and every ready
        (or force-queued) session has resolved.

        Robust against dead pipeline tasks: if the ingest or batch loop
        has stopped (crash, cancellation), drain returns instead of
        waiting on progress that can no longer happen.
        """
        if not await self._watch(self._ingest_q.join(), self._ingest_task):
            return
        while self._n_unresolved:
            self._quiescent.clear()
            if not await self._watch(self._quiescent.wait(), self._batch_task):
                return
            # Re-join: resolving a batch may have unblocked a producer.
            if not await self._watch(self._ingest_q.join(), self._ingest_task):
                return

    async def _watch(self, coro, task: "asyncio.Task[None]") -> bool:
        """Await ``coro``, bailing out if the pipeline ``task`` dies.

        Returns True when ``coro`` completed, False when the watched
        task is (or becomes) done first — meaning the condition can
        never be satisfied by normal progress.
        """
        waiter = asyncio.ensure_future(coro)
        if task is None or task.done():
            waiter.cancel()
            await asyncio.gather(waiter, return_exceptions=True)
            return False
        await asyncio.wait({waiter, task}, return_when=asyncio.FIRST_COMPLETED)
        if waiter.done() and not waiter.cancelled():
            waiter.result()  # propagate unexpected errors
            return True
        waiter.cancel()
        await asyncio.gather(waiter, return_exceptions=True)
        return False

    # -- ingestion -----------------------------------------------------------
    async def submit(self, sample: Sample) -> bool:
        """Offer one sample to the service.

        Returns ``True`` if the sample was accepted.  Under the
        ``"block"`` policy this coroutine suspends while the ingest
        queue is full, or while the sample would open a session beyond
        ``max_sessions`` (lossless backpressure — note that a blocked
        producer can only resume once verdicts or the eviction reaper
        free a slot, so a lossless deployment whose streams interleave
        more jobs than ``max_sessions`` should configure
        ``session_timeout``).  Under ``"shed"`` the sample is dropped
        instead, ``False`` is returned, and the drop is counted in
        :attr:`EngineStats.n_shed`.
        """
        self._check_running()
        admitted, is_new = await self._admit(sample)
        if not admitted:
            return False
        if self.config.backpressure == "shed":
            try:
                self._ingest_q.put_nowait(sample)
            except asyncio.QueueFull:
                if is_new:
                    self._pending_opens.discard(sample.job)
                self.stats.record_shed()
                return False
        else:
            await self._put_admitted(sample, is_new)
        self.stats.record_queue_depth(self._ingest_q.qsize())
        return True

    async def _put_admitted(self, sample: Sample, is_new: bool) -> None:
        """Blocking queue put that rolls back a fresh admission slot if
        the caller cancels the wait (e.g. ``asyncio.wait_for`` timeout)
        — otherwise the job would hold a ``max_sessions`` slot forever
        without a session ever opening."""
        try:
            await self._ingest_q.put(sample)
        except asyncio.CancelledError:
            if is_new:
                self._pending_opens.discard(sample.job)
            raise

    async def _admit(self, sample: Sample) -> Tuple[bool, bool]:
        """Session-cap admission control, applied at the producer side.

        Returns ``(admitted, is_new)``.  Blocking here (rather than in
        the routing loop) keeps routing live for every already-admitted
        session, so verdicts — which free slots — can always make
        progress.  Jobs admitted but not yet routed are counted against
        the cap via ``_pending_opens``, so a burst of first-sight jobs
        cannot blow past it.
        """
        job = sample.job
        while True:
            if job in self._sessions or job in self._pending_opens:
                return True, False
            if (self._n_active + len(self._pending_opens)
                    < self.config.max_sessions):
                self._pending_opens.add(job)
                return True, True
            if self.config.backpressure == "shed":
                self.stats.record_shed()
                return False, False
            self._session_freed.clear()
            await self._session_freed.wait()

    async def submit_many(self, samples: Iterable[Sample]) -> int:
        """Offer many samples; returns how many were accepted.

        Equivalent to awaiting :meth:`submit` per sample but cheaper —
        consecutive non-blocking puts skip the event-loop round-trip.
        """
        self._check_running()
        accepted = 0
        shed = self.config.backpressure == "shed"
        q = self._ingest_q
        for i, sample in enumerate(samples):
            if i and i % 64 == 0:
                # Cooperative flood: give the ingest loop a turn so a
                # fast producer doesn't starve routing (and, under the
                # shed policy, doesn't drop samples ingestion could
                # have drained in time).  Keyed to iterations, not
                # acceptances — a shedding stretch must yield too.
                await asyncio.sleep(0)
            admitted, is_new = await self._admit(sample)
            if not admitted:
                continue
            try:
                q.put_nowait(sample)
            except asyncio.QueueFull:
                if shed:
                    # Yield once so the ingest loop can drain, then
                    # retry; shed only if the queue is *still* full —
                    # i.e. ingestion genuinely cannot keep up.
                    await asyncio.sleep(0)
                    try:
                        q.put_nowait(sample)
                    except asyncio.QueueFull:
                        if is_new:
                            self._pending_opens.discard(sample.job)
                        self.stats.record_shed()
                        continue
                else:
                    await self._put_admitted(sample, is_new)
            accepted += 1
        self.stats.record_queue_depth(q.qsize())
        return accepted

    # -- verdict access -------------------------------------------------------
    async def verdict(self, job: str) -> MatchResult:
        """Await ``job``'s :class:`MatchResult`.

        Valid before, during, or after resolution.  A submitted-but-not-
        yet-routed job is waited for (the ingest queue is flushed first);
        a job the service has truly never seen raises :class:`KeyError`.
        Raises :class:`SessionEvicted` for dropped sessions and
        :class:`~repro.parallel.pool.WorkerError` when recognition
        crashed on this session.  Wrap in :func:`asyncio.wait_for` for a
        deadline — cancelling this coroutine never cancels the verdict
        itself (the underlying future is shielded).
        """
        state = self._sessions.get(job)
        if state is None and self._running:
            # The first sample may still be sitting in the ingest queue.
            await self._watch(self._ingest_q.join(), self._ingest_task)
            state = self._sessions.get(job)
        if state is None:
            raise KeyError(f"unknown job {job!r}: no samples ever accepted")
        return await asyncio.shield(state.future)

    @property
    def results(self) -> Dict[str, MatchResult]:
        """Verdicts of all successfully resolved sessions, by job id."""
        return {
            job: state.future.result()
            for job, state in self._sessions.items()
            if state.future.done() and not state.future.cancelled()
            and state.future.exception() is None
        }

    @property
    def n_sessions(self) -> int:
        """Sessions currently tracked (any phase)."""
        return len(self._sessions)

    async def learn(self, job: str, label: str) -> int:
        """Fold a resolved session's fingerprints into the dictionary.

        This is the paper's learn-while-recognizing loop at serving
        time: once ``job``'s verdict is out (and, say, confirmed by an
        operator or the scheduler's ground truth), its fingerprints
        become dictionary observations under ``label`` — the very next
        micro-batch sees them.  Works against every storage backend
        through the :class:`~repro.engine.backend.DictionaryBackend`
        write surface; on a columnar store the observations land in the
        write-ahead delta-log, so the vectorized lookup index stays hot
        and the learnings survive a restart (folded into the base by
        ``compact_on_close`` or ``efd engine compact``).

        Returns the number of fingerprints inserted (nodes without a
        usable fingerprint are skipped).  Raises :class:`KeyError` for
        an unknown job and :class:`RuntimeError` for a session that has
        not resolved yet — learning from an undecided session would
        race the recognition worker that is still reading it.
        """
        state = self._sessions.get(job)
        if state is None:
            raise KeyError(f"unknown job {job!r}: no samples ever accepted")
        if state.phase is not _Phase.DONE:
            raise RuntimeError(
                f"session {job!r} is still {state.phase.value}: learn only "
                f"after its verdict resolves"
            )
        fingerprints = state.session.fingerprints()
        engine = self.engine

        def _apply() -> int:
            with self._engine_lock:
                return engine.dictionary.add_many(fingerprints, label)

        return await self._loop.run_in_executor(None, _apply)

    def forget(self, job: str, _pruned: bool = False) -> None:
        """Drop a *completed* session's state (verdict included).

        Active sessions are capped by ``max_sessions``, but completed
        ones are retained so :meth:`verdict` stays answerable after the
        fact; a long-running deployment that has consumed a verdict
        (e.g. via ``on_verdict``) calls this to reclaim the entry — or
        configures ``retention_max_age`` / ``retention_max_done`` and
        lets the retention loop do it.  Sessions that never concluded
        (an errored, evicted, or close-cancelled verdict) are completed
        too: forgetting them must leave every
        :class:`~repro.engine.stats.EngineStats` session gauge at its
        true value.
        """
        state = self._sessions.get(job)
        if state is None:
            return
        if state.phase is not _Phase.DONE:
            raise RuntimeError(f"session {job!r} is still {state.phase.value}")
        future = state.future
        if future.done() and not future.cancelled():
            # Mark an errored verdict retrieved, so discarding it never
            # trips the event loop's "exception never retrieved" alarm.
            future.exception()
        del self._sessions[job]
        self._n_done -= 1
        self.stats.record_session_forgotten(pruned=_pruned)

    # -- internals: routing ---------------------------------------------------
    async def _ingest_loop(self) -> None:
        while True:
            sample = await self._ingest_q.get()
            try:
                await self._route(sample)
            finally:
                self._ingest_q.task_done()

    async def _route(self, sample: Sample) -> None:
        state = self._sessions.get(sample.job)
        if state is None:
            state = self._open(sample)
        if state.phase is not _Phase.ACTIVE:
            # Verdict already queued/decided; the session may be in the
            # hands of the worker executor, so mutating it now would
            # race.  Dropping is sound for in-order feeds: once every
            # node's clock passed the interval end, an in-order sample
            # lies outside the interval and cannot change a
            # fingerprint.  (An out-of-order retransmission landing
            # here is dropped too — see the module docstring caveat.)
            self.stats.record_late()
            return
        try:
            state.session.ingest(sample.node, sample.time, sample.value)
        except Exception as exc:  # bad node rank, concluded session, ...
            self._resolve_error(state, exc)
            return
        state.last_activity = self._loop.time()
        if state.session.ready:
            self._queue_ready(state)

    def _open(self, sample: Sample) -> _SessionState:
        """Create the session for a first-seen job id.

        Capacity was already checked at admission (:meth:`_admit`);
        never blocks, so routing stays live for existing sessions.
        """
        self._pending_opens.discard(sample.job)
        n_nodes = sample.n_nodes or self.config.default_nodes
        engine = self.engine
        session = StreamSession(
            dictionary=engine.dictionary,
            metric=engine.metric,
            depth=engine.depth,
            interval=engine.interval,
            n_nodes=n_nodes,
            unknown_label=engine.unknown_label,
            session_id=sample.job,
        )
        state = _SessionState(
            job=sample.job,
            session=session,
            future=self._loop.create_future(),
            last_activity=self._loop.time(),
        )
        self._sessions[sample.job] = state
        self._n_active += 1
        self.stats.record_session_open()
        return state

    def _queue_ready(self, state: _SessionState, forced: bool = False) -> None:
        state.phase = _Phase.QUEUED
        state.forced = forced
        state.ready_at = self._loop.time()
        self._n_unresolved += 1
        self._quiescent.clear()
        self._ready_q.put_nowait(state.job)

    # -- internals: batching --------------------------------------------------
    async def _batch_loop(self) -> None:
        cfg = self.config
        while True:
            job = await self._ready_q.get()
            batch = [job]
            deadline = self._loop.time() + cfg.batch_max_delay
            while len(batch) < cfg.batch_max_sessions:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._ready_q.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            await self._inflight.acquire()
            task = self._loop.create_task(self._resolve_batch(batch))
            self._batches.add(task)
            task.add_done_callback(self._batches.discard)

    async def _resolve_batch(self, jobs: List[str]) -> None:
        try:
            states = [self._sessions[job] for job in jobs]
            sessions = [state.session for state in states]
            try:
                results = await self._loop.run_in_executor(
                    None, partial(self._recognize, sessions)
                )
            except Exception:
                await self._isolate_failure(states)
                return
            for state, result in zip(states, results):
                self._resolve(state, result)
        finally:
            self._inflight.release()

    def _recognize(self, sessions: List[StreamSession]) -> List[MatchResult]:
        """Executor entry point.  The lock serializes engine access:
        EngineStats and the cached tuple index are loop-confined
        everywhere else, and micro-batches may overlap."""
        with self._engine_lock:
            return self.engine.recognize_sessions(sessions, force=True)

    async def _isolate_failure(self, states: List[_SessionState]) -> None:
        """A batch crashed: retry sessions one by one so only the truly
        failing session(s) surface the error, wrapped with their job id."""
        n = len(states)
        for index, state in enumerate(states):
            try:
                result = await self._loop.run_in_executor(
                    None, partial(self._recognize, [state.session])
                )
            except Exception as exc:
                original = exc.original if isinstance(exc, WorkerError) else exc
                self._resolve_error(
                    state, SessionWorkerError(state.job, index, n, original)
                )
            else:
                self._resolve(state, result[0])

    # -- internals: resolution ------------------------------------------------
    def _resolve(self, state: _SessionState, result: MatchResult) -> None:
        if state.future.done():
            return
        self.stats.record_latency(self._loop.time() - state.ready_at)
        state.future.set_result(result)
        self._finish(state)
        if self.on_verdict is not None:
            try:
                self.on_verdict(state.job, result)
            except Exception:
                # A crashing callback must not take down the batch task
                # (its remaining sessions would hang unresolved).  The
                # verdict itself is already delivered via the future.
                self.n_callback_errors += 1

    def _resolve_error(self, state: _SessionState, exc: BaseException) -> None:
        if state.future.done():
            return
        state.future.set_exception(exc)
        self._finish(state)

    def _finish(self, state: _SessionState) -> None:
        if state.phase is _Phase.QUEUED:
            self._n_unresolved -= 1
            if self._n_unresolved == 0:
                self._quiescent.set()
        state.phase = _Phase.DONE
        state.done_at = self._loop.time()
        self._n_active -= 1
        self._n_done += 1
        self.stats.record_session_done()
        cfg = self.config
        if (cfg.retention_max_age is not None
                or cfg.retention_max_done is not None):
            # Only retention drains this deque; without a knob set,
            # appending would leak one entry per session forever under
            # the consume-verdict-then-forget() deployment pattern.
            self._done_order.append((state.job, state.done_at))
            if cfg.retention_max_done is not None:
                self._prune_over_cap()
        self._session_freed.set()

    # -- internals: eviction --------------------------------------------------
    async def _reaper_loop(self) -> None:
        timeout = self.config.session_timeout
        tick = min(timeout / 4, 0.5)
        while True:
            await asyncio.sleep(tick)
            now = self._loop.time()
            for state in list(self._sessions.values()):
                if state.phase is not _Phase.ACTIVE:
                    continue
                if now - state.last_activity < timeout:
                    continue
                self.stats.record_eviction()
                if self.config.evict == "force":
                    self._queue_ready(state, forced=True)
                else:
                    self._resolve_error(
                        state, SessionEvicted(state.job, timeout)
                    )

    # -- internals: retention -------------------------------------------------
    async def _retention_loop(self) -> None:
        """Age-based auto-prune of completed sessions.

        Runs only when ``retention_max_age`` is set; the size cap
        (``retention_max_done``) is enforced synchronously in
        :meth:`_finish`, so a burst between sweeps can never exceed it.
        """
        max_age = self.config.retention_max_age
        tick = min(self.config.retention_interval, max_age / 2)
        while True:
            await asyncio.sleep(tick)
            cutoff = self._loop.time() - max_age
            self._prune_older_than(cutoff)

    def _pop_done(self, job: str, done_at: float) -> bool:
        """Forget one completed session from the retention queue.

        Returns False for a stale queue entry: the job was already
        forgotten manually, or its id was reused by a newer session
        (detected by ``done_at`` mismatch) — in either case the entry
        must be skipped, not acted on.
        """
        state = self._sessions.get(job)
        if (state is None or state.phase is not _Phase.DONE
                or state.done_at != done_at):
            return False
        self.forget(job, _pruned=True)
        return True

    def _prune_older_than(self, cutoff: float) -> None:
        while self._done_order and self._done_order[0][1] <= cutoff:
            job, done_at = self._done_order.popleft()
            self._pop_done(job, done_at)

    def _prune_over_cap(self) -> None:
        cap = self.config.retention_max_done
        while self._n_done > cap and self._done_order:
            job, done_at = self._done_order.popleft()
            self._pop_done(job, done_at)

    # -- misc -----------------------------------------------------------------
    def _check_running(self) -> None:
        if not self._running:
            raise RuntimeError(
                "service not running: use `async with IngestService(...)` "
                "or await start()"
            )

    def __repr__(self) -> str:
        return (
            f"IngestService(sessions={len(self._sessions)}, "
            f"active={self._n_active}, "
            f"policy={self.config.backpressure!r}, "
            f"running={self._running})"
        )
