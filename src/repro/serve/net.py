"""Multi-producer network ingestion: a TCP/UDS front door for the service.

A fleet-wide deployment has many monitoring relays — one per rack, per
LDMS aggregator, per site — all pushing telemetry at once.
:class:`NetListener` turns one :class:`~repro.serve.service.IngestService`
into that shared endpoint: an asyncio TCP and/or Unix-domain-socket
listener accepting N concurrent producer connections, each speaking the
same newline-delimited JSON :class:`~repro.serve.stream.Sample` encoding
the file/stdin path reads (``parse_sample``), framed per line and
submitted in per-connection micro-batches.

Design points (the full wire-protocol spec lives in ``docs/serving.md``):

- **Backpressure rides TCP flow control.**  Each connection handler
  awaits :meth:`~repro.serve.service.IngestService.submit_many` before
  reading more bytes; under the ``block`` policy a full ingest queue
  suspends the handler, the socket receive buffer fills, the kernel
  closes the TCP window, and the *producer's* writes stall.  Slow
  consumers slow producers — no unbounded buffering anywhere.
- **Per-connection fault isolation.**  A malformed, oversized, or
  undecodable line is a *protocol error*: the offending connection gets
  one ``{"error": ...}`` reply and is closed, after the valid samples
  parsed before the bad line were submitted.  Every other producer — and
  every session fed by this producer so far — is untouched.
- **Clean-EOF acknowledgement.**  A producer that half-closes its write
  side receives one ``{"ok": true, "accepted": N, "lines": M}`` summary
  line back, so a relay can confirm delivery counts end to end.

The producer side of the protocol is :func:`push_samples` (one
connection) and :func:`replay_samples` (N concurrent producers over a
job-partitioned stream) — the machinery behind ``efd replay --connect``,
the multi-producer equivalence tests, and
``benchmarks/test_bench_net_ingest.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.serve.service import IngestService
from repro.serve.stream import Sample, parse_sample

__all__ = [
    "NetListener",
    "ProtocolError",
    "push_samples",
    "replay_samples",
    "split_by_job",
]

#: Socket bytes pulled per read: large enough to frame hundreds of
#: samples per event-loop turn, small enough to keep batches timely.
_READ_CHUNK = 1 << 16


class ProtocolError(ValueError):
    """A producer sent a line the listener cannot accept.

    Carries the valid :attr:`parsed` prefix of the current micro-batch
    (samples decoded before the bad line) so the handler can still
    submit them: a protocol error costs the producer its connection,
    never data the service already understood.
    """

    def __init__(self, reason: str, parsed: Optional[List[Sample]] = None):
        super().__init__(reason)
        self.parsed: List[Sample] = parsed or []


class NetListener:
    """TCP + Unix-domain-socket listener feeding an :class:`IngestService`.

    Parameters
    ----------
    service:
        A *started* :class:`~repro.serve.service.IngestService`; its
        :class:`~repro.serve.config.ServeConfig` supplies the framing
        knobs (``net_batch_samples``, ``net_batch_delay``,
        ``max_line_bytes``) and its
        :class:`~repro.engine.stats.EngineStats` accumulates the
        connection counters.
    host, port:
        TCP endpoint.  ``port=0`` binds an ephemeral port; read the
        actual one from :attr:`tcp_address` after :meth:`start`.
    uds:
        Unix-domain-socket path.  TCP and UDS may be served at once; at
        least one endpoint is required.

    Use as an async context manager, inside the service's own context::

        async with IngestService(engine, config) as service:
            async with NetListener(service, uds="/run/efd.sock") as listener:
                ...  # producers connect and stream
            await service.drain()
    """

    def __init__(
        self,
        service: IngestService,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        uds: Optional[str] = None,
    ):
        if port is None and uds is None:
            raise ValueError("NetListener needs a TCP port and/or a UDS path")
        self.service = service
        self.config = service.config
        self.host = host
        self.port = port
        self.uds_path = uds
        self.tcp_address: Optional[Tuple[str, int]] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._closing = False

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "NetListener":
        """Bind every configured endpoint and begin accepting producers."""
        if self._servers:
            raise RuntimeError("listener already started")
        limit = self.config.max_line_bytes
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port, limit=limit
            )
            self.tcp_address = server.sockets[0].getsockname()[:2]
            self._servers.append(server)
        if self.uds_path is not None:
            server = await asyncio.start_unix_server(
                self._handle, path=self.uds_path, limit=limit
            )
            self._servers.append(server)
        return self

    async def __aenter__(self) -> "NetListener":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    @property
    def endpoints(self) -> List[str]:
        """Human-readable bound endpoints (``tcp://h:p``, ``unix://path``)."""
        out = []
        if self.tcp_address is not None:
            out.append(f"tcp://{self.tcp_address[0]}:{self.tcp_address[1]}")
        if self.uds_path is not None:
            out.append(f"unix://{self.uds_path}")
        return out

    @property
    def n_connections(self) -> int:
        """Producer connections currently being served."""
        return len(self._conn_tasks)

    async def close(self, abort: bool = True) -> None:
        """Stop accepting and shut down producer connections.

        With ``abort`` (default) open connections are cancelled: each
        handler submits the samples it already parsed, then closes its
        socket — the graceful-drain path (SIGTERM).  With
        ``abort=False`` the call waits for every producer to finish on
        its own (EOF or error), which never returns under a producer
        that streams forever.
        """
        self._closing = True
        for server in self._servers:
            server.close()
        tasks = list(self._conn_tasks)
        if abort:
            for task in tasks:
                task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        self._servers = []
        if self.uds_path is not None and os.path.exists(self.uds_path):
            try:
                os.unlink(self.uds_path)
            except OSError:
                pass

    # -- connection handling -------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        stats = self.service.stats
        stats.record_conn_open()
        dropped = False
        n_accepted = 0
        lineno = 0
        buf = bytearray()
        try:
            if self._closing:
                return
            eof = False
            while not eof:
                try:
                    batch, eof, lineno = await self._read_batch(
                        reader, buf, lineno
                    )
                except ProtocolError as exc:
                    dropped = True
                    stats.record_protocol_error()
                    n_accepted += await self._submit(exc.parsed)
                    await self._reply(writer, {
                        "error": str(exc), "accepted": n_accepted,
                    })
                    return
                n_accepted += await self._submit(batch)
            await self._reply(writer, {
                "ok": True, "accepted": n_accepted, "lines": lineno,
            })
        except asyncio.CancelledError:
            pass  # close(abort=True): just stop; the socket closes below
        except (ConnectionError, RuntimeError, OSError):
            # Producer vanished mid-stream, or the service stopped under
            # us — either way this connection is done; peers unaffected.
            dropped = True
        finally:
            self._conn_tasks.discard(task)
            stats.record_conn_close(dropped=dropped)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _submit(self, batch: List[Sample]) -> int:
        if not batch:
            return 0
        return await self.service.submit_many(batch)

    async def _read_batch(
        self, reader: asyncio.StreamReader, buf: bytearray, lineno: int
    ) -> Tuple[List[Sample], bool, int]:
        """Read one micro-batch of samples off the wire.

        Frames by chunk, not by line: each socket read pulls up to 64
        KiB, complete lines are split off ``buf`` (the connection's
        carry-over buffer) and parsed in bulk — hundreds of samples per
        event-loop turn instead of one.  Reading stops once at least
        ``net_batch_samples`` samples are parsed (a single chunk may
        overshoot) or a ``net_batch_delay`` window closes with no new
        bytes, so a trickling producer's samples are never held hostage
        to an unfilled batch.  Returns ``(samples, eof, lineno)``;
        raises :class:`ProtocolError` (with the valid prefix attached)
        on a line it cannot accept.
        """
        cfg = self.config
        loop = asyncio.get_running_loop()
        samples: List[Sample] = []
        deadline: Optional[float] = None
        while len(samples) < cfg.net_batch_samples:
            try:
                if deadline is None:
                    chunk = await reader.read(_READ_CHUNK)
                    deadline = loop.time() + cfg.net_batch_delay
                else:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        chunk = await asyncio.wait_for(
                            reader.read(_READ_CHUNK), remaining
                        )
                    except asyncio.TimeoutError:
                        break
            except asyncio.CancelledError:
                # Graceful drain (close(abort=True)): treat the cancel
                # as EOF so everything already parsed is still
                # submitted and the producer still gets a summary.  The
                # buffered tail is NOT parsed — a cut stream ends in an
                # incomplete line, not a sample.
                return samples, True, lineno
            if not chunk:
                # Real EOF: a trailing unterminated line is still a line.
                if buf:
                    tail = bytes(buf)
                    buf.clear()
                    lineno = self._parse_lines([tail], lineno, samples)
                return samples, True, lineno
            buf += chunk
            *complete, rest = buf.split(b"\n")
            buf[:] = rest
            # Parse the complete lines BEFORE rejecting an oversized
            # unterminated tail: valid samples that shared a chunk with
            # the bad line must still ride along in exc.parsed, or
            # acceptance would depend on TCP chunk boundaries.
            lineno = self._parse_lines(complete, lineno, samples)
            if len(buf) > cfg.max_line_bytes:
                raise ProtocolError(
                    f"sample line {lineno + 1}: exceeds "
                    f"max_line_bytes={cfg.max_line_bytes}",
                    samples,
                )
        return samples, False, lineno

    def _parse_lines(
        self, lines: Iterable[bytes], lineno: int, out: List[Sample]
    ) -> int:
        """Decode raw wire lines into ``out``; returns the new line count.

        The hot path inlines the common case — a well-typed JSON object
        with every field already the right type — and only falls back to
        the canonical :func:`~repro.serve.stream.parse_sample` for type
        coercion and precise error messages.  Raises
        :class:`ProtocolError` carrying everything parsed so far
        (``out`` is shared with the caller's batch) on the first line
        that is oversized, undecodable, or not a valid sample.
        """
        cfg = self.config
        max_bytes = cfg.max_line_bytes
        loads = json.loads
        append = out.append
        nan = float("nan")
        for raw in lines:
            lineno += 1
            if len(raw) > max_bytes:
                raise ProtocolError(
                    f"sample line {lineno}: exceeds max_line_bytes="
                    f"{max_bytes}",
                    out,
                )
            try:
                text = raw.decode("utf-8").strip()
            except UnicodeDecodeError as exc:
                raise ProtocolError(
                    f"sample line {lineno}: not valid UTF-8: {exc}", out
                )
            if not text or text.startswith("#"):
                continue
            try:
                obj = loads(text)
                job = obj["job"]
                node = obj["node"]
                t = obj["t"]
                value = obj["value"]
            except (ValueError, KeyError, TypeError):
                pass  # canonical parse below reports the real problem
            else:
                n_nodes = obj.get("nodes")
                if (job.__class__ is str and job
                        and node.__class__ is int and node >= 0
                        and (t.__class__ is float or t.__class__ is int)
                        and (value.__class__ is float
                             or value.__class__ is int or value is None)
                        and (n_nodes is None
                             or (n_nodes.__class__ is int and n_nodes >= 1))):
                    append(Sample(
                        job, node,
                        t if t.__class__ is float else float(t),
                        nan if value is None else
                        (value if value.__class__ is float else float(value)),
                        n_nodes,
                    ))
                    continue
            try:
                append(parse_sample(text, lineno))
            except ValueError as exc:
                raise ProtocolError(str(exc), out)
        return lineno

    async def _reply(self, writer: asyncio.StreamWriter, payload: Dict) -> None:
        try:
            writer.write((json.dumps(payload) + "\n").encode("utf-8"))
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # producer already gone; its loss

    def __repr__(self) -> str:
        return (
            f"NetListener({', '.join(self.endpoints) or 'unbound'}, "
            f"connections={self.n_connections})"
        )


# ---------------------------------------------------------------------------
# Producer side: the protocol's client half
# ---------------------------------------------------------------------------

async def push_samples(
    samples: Iterable[Sample],
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    uds: Optional[str] = None,
    batch_lines: int = 256,
) -> Dict:
    """Stream samples over one connection; return the server's summary.

    Writes NDJSON with a :meth:`~asyncio.StreamWriter.drain` every
    ``batch_lines`` lines (so a blocked server propagates backpressure
    into this coroutine), half-closes the write side, and reads the
    one-line JSON reply — ``{"ok": true, "accepted": N, "lines": M}`` on
    success, ``{"error": ...}`` if the server refused a line.
    """
    if (port is None) == (uds is None):
        raise ValueError("push_samples needs exactly one of port / uds")
    if uds is not None:
        reader, writer = await asyncio.open_unix_connection(uds)
    else:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        try:
            buf: List[str] = []
            for sample in samples:
                buf.append(sample.to_json())
                if len(buf) >= batch_lines:
                    writer.write(("\n".join(buf) + "\n").encode("utf-8"))
                    buf = []
                    await writer.drain()
            if buf:
                writer.write(("\n".join(buf) + "\n").encode("utf-8"))
            await writer.drain()
            writer.write_eof()
            reply = await reader.readline()
        except (ConnectionError, OSError) as exc:
            # The server hung up mid-stream — almost always because it
            # refused a line and closed after replying.  Its parting
            # {"error": ...} line is usually still in the read buffer;
            # surface that instead of crashing the producer.
            try:
                reply = await reader.readline()
            except (ConnectionError, OSError):
                reply = b""
            if not reply:
                return {"error": f"connection closed mid-stream: {exc}"}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if not reply:
        return {"error": "connection closed without a summary"}
    try:
        return json.loads(reply.decode("utf-8"))
    except ValueError:
        return {"error": f"unparseable summary: {reply[:80]!r}"}


def split_by_job(
    samples: Iterable[Sample], n: int
) -> List[List[Sample]]:
    """Partition a sample stream across ``n`` producers, by job id.

    Jobs are assigned round-robin in order of first appearance and a
    job's samples all ride the same producer in their original order —
    the invariant the service's equivalence guarantee rests on (per-node
    timestamps stay non-decreasing within each connection).
    """
    if n < 1:
        raise ValueError(f"need n >= 1 producers, got {n}")
    streams: List[List[Sample]] = [[] for _ in range(n)]
    owner: Dict[str, int] = {}
    for sample in samples:
        slot = owner.setdefault(sample.job, len(owner) % n)
        streams[slot].append(sample)
    return streams


async def replay_samples(
    samples: Sequence[Sample],
    producers: int = 1,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    uds: Optional[str] = None,
    batch_lines: int = 256,
) -> List[Dict]:
    """Replay a stream as N concurrent producers; return their summaries.

    The stream is partitioned with :func:`split_by_job` and each
    partition pushed over its own connection concurrently — the
    many-relays-one-recognizer topology in miniature.
    """
    streams = [s for s in split_by_job(samples, producers) if s]
    return list(await asyncio.gather(*(
        push_samples(stream, host=host, port=port, uds=uds,
                     batch_lines=batch_lines)
        for stream in streams
    )))
