"""Telemetry sample streams: the wire format of the ingestion service.

One :class:`Sample` is one monitoring observation — job id, node rank,
seconds since job start, metric value.  The on-the-wire encoding is
JSON-lines (one object per line), the least-common-denominator format
every HPC monitoring stack (LDMS CSV relays, Kafka topics, syslog
shippers) can produce::

    {"job": "j-1042", "node": 0, "t": 61.0, "value": 182000.0, "nodes": 4}

``nodes`` (the job's node count) is only required on a job's first
sample — it sizes the :class:`~repro.core.streaming.StreamSession`; a
missing field falls back to the service's ``default_nodes``.  ``value``
may be ``null`` for a dropped sample (the session skips it but still
advances that node's clock).

:func:`interleave_records` turns stored
:class:`~repro.data.dataset.ExecutionRecord` telemetry back into the
interleaved multi-job live stream a cluster-wide monitoring bus would
deliver — the replay source for demos, benchmarks, and equivalence
tests.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Iterator, NamedTuple, Optional, Sequence, TextIO, Union

from repro.data.dataset import ExecutionRecord


class Sample(NamedTuple):
    """One telemetry observation of one node of one job.

    A ``NamedTuple`` rather than a dataclass on purpose: the network
    listener constructs one per wire line, and tuple construction is
    ~3x cheaper than a frozen dataclass ``__init__`` — measurable at
    hundreds of thousands of samples per second.
    """

    job: str
    node: int
    time: float
    value: float
    n_nodes: Optional[int] = None

    def to_json(self) -> str:
        """Encode as one JSONL line (no trailing newline)."""
        obj = {"job": self.job, "node": self.node, "t": self.time,
               "value": None if math.isnan(self.value) else self.value}
        if self.n_nodes is not None:
            obj["nodes"] = self.n_nodes
        return json.dumps(obj)


def parse_sample(line: str, lineno: int = 0) -> Sample:
    """Decode one JSONL line into a :class:`Sample`.

    Raises :class:`ValueError` naming the offending line number for
    malformed JSON, missing fields, or out-of-domain values.
    """
    where = f"sample line {lineno}" if lineno else "sample line"
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{where}: invalid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ValueError(f"{where}: expected a JSON object, got {type(obj).__name__}")
    try:
        job = str(obj["job"])
        node = int(obj["node"])
        time = float(obj["t"])
        raw = obj["value"]
    except KeyError as exc:
        raise ValueError(f"{where}: missing field {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{where}: bad field value: {exc}") from exc
    if not job:
        raise ValueError(f"{where}: job id must be non-empty")
    if node < 0:
        raise ValueError(f"{where}: node must be >= 0, got {node}")
    value = float("nan") if raw is None else float(raw)
    n_nodes = obj.get("nodes")
    if n_nodes is not None:
        n_nodes = int(n_nodes)
        if n_nodes < 1:
            raise ValueError(f"{where}: nodes must be >= 1, got {n_nodes}")
    return Sample(job=job, node=node, time=time, value=value, n_nodes=n_nodes)


def read_samples(stream: Union[TextIO, Iterable[str]]) -> Iterator[Sample]:
    """Iterate :class:`Sample` objects from a JSONL stream.

    Blank lines and ``#`` comment lines are skipped; anything else must
    parse, or :func:`parse_sample` raises with the line number.
    """
    for lineno, line in enumerate(stream, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_sample(stripped, lineno)


def record_samples(
    record: ExecutionRecord, metric: str, job: str
) -> Iterator[Sample]:
    """One job's telemetry as a time-ordered sample stream.

    Yields every node's series merged in ``(time, node)`` order, with
    the job's node count attached to each sample (so a consumer can open
    the session from whichever sample arrives first).
    """
    merged = []
    for node in range(record.n_nodes):
        series = record.series(metric, node)
        for t, v in zip(series.times, series.values):
            merged.append((float(t), node, float(v)))
    merged.sort(key=lambda s: (s[0], s[1]))
    for t, node, v in merged:
        yield Sample(job=job, node=node, time=t, value=v, n_nodes=record.n_nodes)


def interleave_records(
    records: Sequence[ExecutionRecord],
    metric: str,
    job_ids: Optional[Sequence[str]] = None,
) -> Iterator[Sample]:
    """Interleave many jobs' telemetry into one live-feed-shaped stream.

    Jobs advance round-robin, one sample each per turn — the shape a
    system-wide monitoring bus delivers when many jobs run concurrently.
    Per-job sample order is preserved (time-major), so feeding the
    stream into per-job sessions accumulates exactly the same state as
    feeding each job alone.

    ``job_ids`` defaults to ``job-0000 .. job-NNNN``.
    """
    if job_ids is None:
        job_ids = [f"job-{i:04d}" for i in range(len(records))]
    if len(job_ids) != len(records):
        raise ValueError(
            f"{len(job_ids)} job ids for {len(records)} records"
        )
    feeds = [
        record_samples(record, metric, job)
        for record, job in zip(records, job_ids)
    ]
    while feeds:
        exhausted = []
        for i, feed in enumerate(feeds):
            sample = next(feed, None)
            if sample is None:
                exhausted.append(i)
            else:
                yield sample
        for i in reversed(exhausted):
            del feeds[i]
