"""Tuning knobs of the async ingestion service.

Every operational decision the service makes — how much telemetry it
buffers, when it refuses work, how long it coalesces ready sessions,
when it gives up on a silent job — is a field on :class:`ServeConfig`,
so a deployment is describable as one frozen value (and loggable /
diffable as ``asdict``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Accepted ``ServeConfig.backpressure`` values.
BACKPRESSURE_POLICIES = ("block", "shed")

#: Accepted ``ServeConfig.evict`` values.
EVICT_POLICIES = ("force", "drop")


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of an :class:`~repro.serve.service.IngestService`.

    Parameters
    ----------
    max_pending_samples:
        Capacity of the bounded ingest queue.  This is the service's
        only buffer between producers and the session table; when it is
        full, the ``backpressure`` policy decides what happens.
    backpressure:
        ``"block"`` — :meth:`~repro.serve.service.IngestService.submit`
        awaits until queue space frees up, propagating pressure to the
        producer (lossless).  ``"shed"`` — the sample is dropped on the
        floor, counted in :attr:`EngineStats.n_shed`, and ``submit``
        returns ``False`` (lossy, bounded latency).
    max_sessions:
        Cap on concurrently *active* sessions, enforced at submission:
        a sample that would open a session beyond the cap is subject to
        the same ``backpressure`` policy (block the producer until a
        slot frees, or shed the sample).  With ``"block"`` and no
        ``session_timeout``, a stream interleaving more concurrent jobs
        than the cap will stall the producer — lossless systems should
        pair the cap with a timeout.
    batch_max_sessions:
        Upper bound on the size of one recognition micro-batch.
    batch_max_delay:
        Seconds the batcher waits for more ready sessions before
        dispatching a partial micro-batch.  Trades verdict latency for
        batch efficiency; 0 dispatches every ready session immediately.
    max_inflight_batches:
        How many micro-batches may be resolving on the worker executor
        at once.  Recognition itself is serialized per engine (the
        engine's stats and index cache are not thread-safe), so values
        above 1 only overlap executor scheduling with ingestion.
    session_timeout:
        Seconds of *wall-clock* inactivity (no samples accepted) after
        which a session that never became ready is evicted.  ``None``
        disables eviction.
    evict:
        What eviction does.  ``"force"`` — decide early from whatever
        samples arrived (the verdict a crashed/truncated job would get).
        ``"drop"`` — fail the session's awaitable with
        :class:`~repro.serve.service.SessionEvicted`.
    default_nodes:
        Node count for sessions whose first sample does not carry an
        explicit ``nodes`` field.
    retention_max_age:
        Seconds a *completed* session's verdict is retained after
        resolution before the retention loop auto-forgets it.  ``None``
        disables age-based pruning.  A pruned job's
        :meth:`~repro.serve.service.IngestService.verdict` raises
        :class:`KeyError` afterwards, so consume verdicts via the
        awaitable or ``on_verdict`` before they age out.
    retention_max_done:
        Cap on completed sessions retained for verdict retrieval; when
        a verdict resolves past the cap, the oldest completed sessions
        are forgotten first.  ``None`` disables size-based pruning.
        This is the knob that bounds memory over a week-long campaign.
    retention_interval:
        Seconds between retention sweeps (age-based pruning only; the
        size cap is enforced immediately at resolution time).
    net_batch_samples:
        Per-connection micro-batch size of the network listener: how
        many parsed samples one connection accumulates before calling
        :meth:`~repro.serve.service.IngestService.submit_many`.  Larger
        batches amortize the submit path; smaller ones cut per-sample
        latency.
    net_batch_delay:
        Seconds a connection's batch waits for more lines before a
        partial batch is submitted anyway — bounds the latency a slow
        producer adds to its own verdicts.
    max_line_bytes:
        Upper bound on one NDJSON line on the wire; a longer line is a
        protocol error that closes the offending connection (and only
        that connection).
    compact_on_close:
        When the engine's dictionary is a columnar store with pending
        delta-log records (a learn-while-serving deployment), fold the
        log into the ``shard-NN.npz`` base at service shutdown so the
        next boot opens a clean directory.  The log is write-ahead, so
        disabling this loses nothing — the records replay on the next
        load; it only defers the fold.  Forced off in replica mode
        (``efd serve --follow``): a replica folding its log would
        advance its generation past the leader's.
    repl_poll_interval:
        Seconds between a publishing leader's idle delta-log polls, per
        follower stream — the floor on record-shipping latency
        (:class:`~repro.engine.replicate.ReplicationPublisher`).
    repl_heartbeat:
        Seconds between ``sync`` heartbeat frames to an idle follower,
        keeping replica lag gauges honest with no write traffic.
    repl_reconnect_delay:
        *Base* seconds a replica waits before redialing a lost leader
        (:class:`~repro.engine.replicate.ReplicationFollower`).  The
        actual delay backs off exponentially from this base with full
        jitter (capped at 32x), resetting after a successful subscribe,
        so a replica fleet does not hammer a restarting leader in
        lockstep.
    remote_deadline:
        Wall-clock budget, in seconds, for one remote scatter/gather
        batch (:class:`~repro.engine.remote.RemoteShardBackend`).
        Every per-host timeout inside the batch is derived from the
        remaining budget; when it runs out, unreachable keys resolve as
        explicit degraded verdicts.
    remote_try_timeout:
        Per-attempt socket timeout (connect + round trip) on one remote
        call, further clipped to the remaining batch budget.
    remote_retries:
        Bounded retry count per logical remote request (0 disables
        retries; the first attempt is not a retry).
    remote_backoff_base / remote_backoff_cap:
        Exponential-backoff envelope (full jitter) between remote
        retries, shared with the replication redial policy
        (:class:`repro._util.backoff.BackoffPolicy`).
    remote_hedge_delay:
        Floor, in seconds, on how long the primary host may stay quiet
        before the same probe is hedged to the shard's next replica.
        Raised automatically to the observed latency percentile below
        once enough calls have been measured.
    remote_hedge_percentile:
        Latency percentile (0..1) of recent successful calls past which
        a quiet primary triggers a hedge.
    remote_breaker_failures:
        Consecutive failures that trip a host's circuit breaker open
        (a dead host then costs one timeout per reset window, not one
        per batch).
    remote_breaker_reset:
        Seconds an open breaker waits before admitting one half-open
        probe call; the probe's success closes it, failure re-opens it.
    remote_pool_size:
        Persistent connections kept per shard host.  Checked out per
        call, evicted on any transport fault, redialed lazily behind
        the retry ladder's backoff.
    remote_pipeline_chunk:
        Keys per binary v2 probe frame; a bucket larger than this is
        split into pipelined chunks with a bounded in-flight window.
    remote_filter_mirrors:
        Mirror each shard's Bloom key filter client-side (fetched in
        the background, refreshed when a reply reveals a new store
        version).  Definitely-absent keys then resolve locally —
        unknown-heavy traffic mostly never crosses the wire.
    remote_protocol:
        ``"auto"`` negotiates protocol v2 via the hello handshake
        (falling back to framed JSON against v1 servers);
        ``"json"`` pins v1 and skips the handshake.
    family_mode:
        Serve verdicts through a :class:`~repro.family.FamilyCascade`
        fronting the engine's dictionary: a coarse family tier at
        ``family_coarse_depth`` rejects or routes probes before the
        full-depth dictionary is consulted, and verdicts carry the
        ``match`` / ``near-family`` / ``unknown`` outcome distinction
        ("same app, new version" stops being reported as unknown).
    family_coarse_depth:
        Rounding depth of the coarse family tier; must be <= the
        engine's recognition depth.  Depth 1 keeps the coarse tier
        smallest; paper Table 1 suggests 2 when families sit close.
    family_spec_path:
        Optional path to an ``efd family build`` spec JSON mapping
        application names to families.  ``None`` derives families from
        version suffixes of the dictionary's application names.
    """

    max_pending_samples: int = 4096
    backpressure: str = "block"
    max_sessions: int = 10_000
    batch_max_sessions: int = 64
    batch_max_delay: float = 0.01
    max_inflight_batches: int = 2
    session_timeout: Optional[float] = None
    evict: str = "force"
    default_nodes: int = 4
    retention_max_age: Optional[float] = None
    retention_max_done: Optional[int] = None
    retention_interval: float = 0.5
    net_batch_samples: int = 256
    net_batch_delay: float = 0.005
    max_line_bytes: int = 1 << 16
    compact_on_close: bool = True
    repl_poll_interval: float = 0.02
    repl_heartbeat: float = 0.5
    repl_reconnect_delay: float = 0.2
    remote_deadline: float = 2.0
    remote_try_timeout: float = 0.5
    remote_retries: int = 2
    remote_backoff_base: float = 0.05
    remote_backoff_cap: float = 1.0
    remote_hedge_delay: float = 0.05
    remote_hedge_percentile: float = 0.95
    remote_breaker_failures: int = 3
    remote_breaker_reset: float = 1.0
    remote_pool_size: int = 4
    remote_pipeline_chunk: int = 4096
    remote_filter_mirrors: bool = True
    remote_protocol: str = "auto"
    family_mode: bool = False
    family_coarse_depth: int = 1
    family_spec_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_pending_samples < 1:
            raise ValueError(
                f"max_pending_samples must be >= 1, got {self.max_pending_samples}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.batch_max_sessions < 1:
            raise ValueError(
                f"batch_max_sessions must be >= 1, got {self.batch_max_sessions}"
            )
        if self.batch_max_delay < 0:
            raise ValueError(
                f"batch_max_delay must be >= 0, got {self.batch_max_delay}"
            )
        if self.max_inflight_batches < 1:
            raise ValueError(
                f"max_inflight_batches must be >= 1, got {self.max_inflight_batches}"
            )
        if self.session_timeout is not None and self.session_timeout <= 0:
            raise ValueError(
                f"session_timeout must be positive or None, got {self.session_timeout}"
            )
        if self.evict not in EVICT_POLICIES:
            raise ValueError(
                f"evict must be one of {EVICT_POLICIES}, got {self.evict!r}"
            )
        if self.default_nodes < 1:
            raise ValueError(f"default_nodes must be >= 1, got {self.default_nodes}")
        if self.retention_max_age is not None and self.retention_max_age <= 0:
            raise ValueError(
                f"retention_max_age must be positive or None, "
                f"got {self.retention_max_age}"
            )
        if self.retention_max_done is not None and self.retention_max_done < 0:
            raise ValueError(
                f"retention_max_done must be >= 0 or None, "
                f"got {self.retention_max_done}"
            )
        if self.retention_interval <= 0:
            raise ValueError(
                f"retention_interval must be positive, "
                f"got {self.retention_interval}"
            )
        if self.net_batch_samples < 1:
            raise ValueError(
                f"net_batch_samples must be >= 1, got {self.net_batch_samples}"
            )
        if self.net_batch_delay < 0:
            raise ValueError(
                f"net_batch_delay must be >= 0, got {self.net_batch_delay}"
            )
        if self.max_line_bytes < 64:
            raise ValueError(
                f"max_line_bytes must be >= 64, got {self.max_line_bytes}"
            )
        if self.repl_poll_interval <= 0:
            raise ValueError(
                f"repl_poll_interval must be positive, "
                f"got {self.repl_poll_interval}"
            )
        if self.repl_heartbeat <= 0:
            raise ValueError(
                f"repl_heartbeat must be positive, got {self.repl_heartbeat}"
            )
        if self.repl_reconnect_delay <= 0:
            raise ValueError(
                f"repl_reconnect_delay must be positive, "
                f"got {self.repl_reconnect_delay}"
            )
        if self.remote_deadline <= 0:
            raise ValueError(
                f"remote_deadline must be positive, got {self.remote_deadline}"
            )
        if self.remote_try_timeout <= 0:
            raise ValueError(
                f"remote_try_timeout must be positive, "
                f"got {self.remote_try_timeout}"
            )
        if self.remote_retries < 0:
            raise ValueError(
                f"remote_retries must be >= 0, got {self.remote_retries}"
            )
        if self.remote_backoff_base <= 0:
            raise ValueError(
                f"remote_backoff_base must be positive, "
                f"got {self.remote_backoff_base}"
            )
        if self.remote_backoff_cap < self.remote_backoff_base:
            raise ValueError(
                f"remote_backoff_cap must be >= remote_backoff_base, "
                f"got {self.remote_backoff_cap}"
            )
        if self.remote_hedge_delay <= 0:
            raise ValueError(
                f"remote_hedge_delay must be positive, "
                f"got {self.remote_hedge_delay}"
            )
        if not 0.0 < self.remote_hedge_percentile <= 1.0:
            raise ValueError(
                f"remote_hedge_percentile must be in (0, 1], "
                f"got {self.remote_hedge_percentile}"
            )
        if self.remote_breaker_failures < 1:
            raise ValueError(
                f"remote_breaker_failures must be >= 1, "
                f"got {self.remote_breaker_failures}"
            )
        if self.remote_breaker_reset <= 0:
            raise ValueError(
                f"remote_breaker_reset must be positive, "
                f"got {self.remote_breaker_reset}"
            )
        if self.remote_pool_size < 1:
            raise ValueError(
                f"remote_pool_size must be >= 1, got {self.remote_pool_size}"
            )
        if self.remote_pipeline_chunk < 1:
            raise ValueError(
                f"remote_pipeline_chunk must be >= 1, "
                f"got {self.remote_pipeline_chunk}"
            )
        if self.remote_protocol not in ("auto", "json"):
            raise ValueError(
                f"remote_protocol must be 'auto' or 'json', "
                f"got {self.remote_protocol!r}"
            )
        if self.family_coarse_depth < 1:
            raise ValueError(
                f"family_coarse_depth must be >= 1, "
                f"got {self.family_coarse_depth}"
            )
        if self.family_spec_path is not None and not self.family_mode:
            raise ValueError(
                "family_spec_path requires family_mode=True"
            )
