"""Taxonomist-style application classifier (Ates et al., Euro-Par 2018).

The comparison system of the paper's Figure 2.  Faithful to the original
pipeline's shape:

- computes statistical features of **many metrics over the whole
  execution window** for every node (vs the EFD's one metric over two
  minutes),
- trains a supervised classifier (random forest) on per-node feature
  vectors,
- labels a node "unknown" when the classifier's confidence falls below a
  threshold (Taxonomist's guard against unseen applications),
- per-execution verdicts are formed by majority vote over node labels
  (the original labels nodes; the EFD paper evaluates executions, so the
  vote makes the two comparable).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._util.rng import RngLike
from repro.data.dataset import ExecutionDataset, ExecutionRecord
from repro.data.features import FeatureExtractor
from repro.ml.forest import RandomForestClassifier
from repro.ml.preprocessing import StandardScaler


class TaxonomistClassifier:
    """Per-node random forest over rich monitoring features.

    Parameters
    ----------
    metrics:
        Metrics to featurize; ``None`` uses every metric present in the
        training dataset (the Taxonomist way — 721 metrics originally,
        562 in the public set).
    window:
        Feature window in seconds; ``(0, None)`` = whole execution.
    confidence_threshold:
        Below this max-class-probability a node is labeled unknown.
    """

    def __init__(
        self,
        metrics: Optional[Sequence[str]] = None,
        window: Tuple[float, Optional[float]] = (0.0, None),
        n_estimators: int = 60,
        max_depth: Optional[int] = None,
        confidence_threshold: float = 0.55,
        unknown_label: str = "unknown",
        random_state: RngLike = 0,
    ):
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ValueError(
                f"confidence_threshold must be in [0, 1], got {confidence_threshold}"
            )
        self.metrics = list(metrics) if metrics is not None else None
        self.window = window
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.confidence_threshold = confidence_threshold
        self.unknown_label = unknown_label
        self.random_state = random_state

    # -- learning ----------------------------------------------------------
    def fit(self, data: Union[ExecutionDataset, Sequence[ExecutionRecord]]) -> "TaxonomistClassifier":
        dataset = self._as_dataset(data)
        if len(dataset) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.extractor_ = FeatureExtractor(metrics=self.metrics, window=self.window)
        fm = self.extractor_.extract(dataset)
        self.scaler_ = StandardScaler()
        X = self.scaler_.fit_transform(fm.X)
        self.forest_ = RandomForestClassifier(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            max_features="sqrt",
            random_state=self.random_state,
        )
        self.forest_.fit(X, np.asarray(fm.labels))
        return self

    # -- inference ------------------------------------------------------------
    def predict_nodes(
        self, data: Union[ExecutionDataset, Sequence[ExecutionRecord]]
    ) -> List[str]:
        """Per-(execution, node) labels, dataset order (Taxonomist's view)."""
        self._check_fitted()
        dataset = self._as_dataset(data)
        fm = self.extractor_.extract(dataset)
        X = self.scaler_.transform(fm.X)
        proba = self.forest_.predict_proba(X)
        codes = np.argmax(proba, axis=1)
        confidence = proba[np.arange(len(codes)), codes]
        labels = self.forest_.classes_[codes]
        return [
            self.unknown_label if c < self.confidence_threshold else str(lab)
            for lab, c in zip(labels.tolist(), confidence.tolist())
        ]

    def predict(
        self, data: Union[ExecutionDataset, Sequence[ExecutionRecord], ExecutionRecord]
    ) -> Union[str, List[str]]:
        """Per-execution verdicts via majority vote over node labels."""
        if isinstance(data, ExecutionRecord):
            return self.predict([data])[0]
        dataset = self._as_dataset(data)
        node_labels = self.predict_nodes(dataset)
        fm_exec = []
        # Node labels come out grouped per record in dataset order.
        cursor = 0
        for record in dataset:
            group = node_labels[cursor : cursor + record.n_nodes]
            cursor += record.n_nodes
            fm_exec.append(_majority(group, self.unknown_label))
        return fm_exec

    def predict_one(self, record: ExecutionRecord) -> str:
        return self.predict(record)  # type: ignore[return-value]

    # -- plumbing ---------------------------------------------------------------
    @staticmethod
    def _as_dataset(data) -> ExecutionDataset:
        if isinstance(data, ExecutionDataset):
            return data
        records = list(data)
        metrics = records[0].metrics() if records else []
        return ExecutionDataset(records, metrics)

    def _check_fitted(self) -> None:
        if not hasattr(self, "forest_"):
            raise RuntimeError("TaxonomistClassifier is not fitted; call fit() first")


def _majority(labels: Sequence[str], unknown_label: str) -> str:
    """Majority vote; known labels outrank 'unknown' on equal counts."""
    counts: Dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    if not counts:
        return unknown_label
    return max(
        counts,
        key=lambda lab: (counts[lab], lab != unknown_label),
    )
