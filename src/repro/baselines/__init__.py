"""Comparison systems.

- :mod:`repro.baselines.taxonomist` — the Taxonomist-style classifier
  the paper compares against in Figure 2 (per-node statistical features
  over the full window + random forest + confidence thresholding).
- :mod:`repro.baselines.nearest` — distance-based recognizers over the
  same interval means the EFD uses, quantifying what the dictionary's
  O(1) lookup gives up (or does not) versus nearest-neighbour matching.
"""

from repro.baselines.taxonomist import TaxonomistClassifier
from repro.baselines.nearest import NearestCentroidRecognizer, OneNNRecognizer

__all__ = [
    "TaxonomistClassifier",
    "NearestCentroidRecognizer",
    "OneNNRecognizer",
]
