"""Distance-based recognizers over EFD-style interval means.

The paper argues dictionary lookup beats distance computation on
simplicity ("Computing distance measures for every example introduces
unnecessary computational steps").  These two recognizers quantify the
comparison: same feature (per-node interval means, *unrounded*), but
nearest-centroid / 1-NN matching with a relative-distance threshold for
unknowns.  The ablation bench contrasts their accuracy and lookup cost
with the EFD's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.fingerprint import DEFAULT_INTERVAL
from repro.data.dataset import ExecutionDataset, ExecutionRecord


def _interval_vector(
    record: ExecutionRecord, metric: str, interval: Tuple[float, float]
) -> np.ndarray:
    """Per-node interval means as a feature vector (NaN -> node dropped)."""
    start, end = interval
    return np.array(
        [
            record.interval_mean(metric, node, start, end)
            for node in range(record.n_nodes)
        ]
    )


class NearestCentroidRecognizer:
    """Per-label centroid matching with a relative distance threshold."""

    def __init__(
        self,
        metric: str = "nr_mapped_vmstat",
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        rel_threshold: float = 0.05,
        unknown_label: str = "unknown",
    ):
        if rel_threshold <= 0:
            raise ValueError(f"rel_threshold must be > 0, got {rel_threshold}")
        self.metric = metric
        self.interval = interval
        self.rel_threshold = rel_threshold
        self.unknown_label = unknown_label

    def fit(self, data: Union[ExecutionDataset, Sequence[ExecutionRecord]]) -> "NearestCentroidRecognizer":
        records = list(data)
        if not records:
            raise ValueError("cannot fit on zero records")
        sums: Dict[str, np.ndarray] = {}
        counts: Dict[str, int] = {}
        self._apps: Dict[str, str] = {}
        for record in records:
            vec = _interval_vector(record, self.metric, self.interval)
            if np.isnan(vec).any():
                continue
            key = record.label
            if key in sums:
                sums[key] = sums[key] + vec
                counts[key] += 1
            else:
                sums[key] = vec.copy()
                counts[key] = 1
            self._apps[key] = record.app_name
        if not sums:
            raise ValueError("no usable training records (all intervals NaN)")
        self.centroids_ = {k: sums[k] / counts[k] for k in sums}
        return self

    def predict_one(self, record: ExecutionRecord) -> str:
        self._check_fitted()
        vec = _interval_vector(record, self.metric, self.interval)
        if np.isnan(vec).any():
            return self.unknown_label
        best_label: Optional[str] = None
        best_dist = np.inf
        for label, centroid in self.centroids_.items():
            if len(centroid) != len(vec):
                continue
            dist = float(np.linalg.norm(vec - centroid))
            if dist < best_dist:
                best_dist = dist
                best_label = label
        if best_label is None:
            return self.unknown_label
        scale = float(np.linalg.norm(self.centroids_[best_label])) or 1.0
        if best_dist / scale > self.rel_threshold:
            return self.unknown_label
        return self._apps[best_label]

    def predict(self, data) -> Union[str, List[str]]:
        if isinstance(data, ExecutionRecord):
            return self.predict_one(data)
        return [self.predict_one(r) for r in data]

    def _check_fitted(self) -> None:
        if not hasattr(self, "centroids_"):
            raise RuntimeError(
                "NearestCentroidRecognizer is not fitted; call fit() first"
            )


class OneNNRecognizer:
    """1-nearest-neighbour over stored execution vectors."""

    def __init__(
        self,
        metric: str = "nr_mapped_vmstat",
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        rel_threshold: float = 0.05,
        unknown_label: str = "unknown",
    ):
        if rel_threshold <= 0:
            raise ValueError(f"rel_threshold must be > 0, got {rel_threshold}")
        self.metric = metric
        self.interval = interval
        self.rel_threshold = rel_threshold
        self.unknown_label = unknown_label

    def fit(self, data: Union[ExecutionDataset, Sequence[ExecutionRecord]]) -> "OneNNRecognizer":
        vectors: List[np.ndarray] = []
        apps: List[str] = []
        for record in data:
            vec = _interval_vector(record, self.metric, self.interval)
            if np.isnan(vec).any():
                continue
            vectors.append(vec)
            apps.append(record.app_name)
        if not vectors:
            raise ValueError("no usable training records (all intervals NaN)")
        self._X = np.vstack(vectors)
        self._apps = apps
        return self

    def predict_one(self, record: ExecutionRecord) -> str:
        if not hasattr(self, "_X"):
            raise RuntimeError("OneNNRecognizer is not fitted; call fit() first")
        vec = _interval_vector(record, self.metric, self.interval)
        if np.isnan(vec).any() or len(vec) != self._X.shape[1]:
            return self.unknown_label
        dists = np.linalg.norm(self._X - vec, axis=1)
        best = int(np.argmin(dists))
        scale = float(np.linalg.norm(self._X[best])) or 1.0
        if dists[best] / scale > self.rel_threshold:
            return self.unknown_label
        return self._apps[best]

    def predict(self, data) -> Union[str, List[str]]:
        if isinstance(data, ExecutionRecord):
            return self.predict_one(data)
        return [self.predict_one(r) for r in data]
