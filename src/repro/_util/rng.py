"""Random-number-generator plumbing.

All stochastic components accept either an integer seed or a
:class:`numpy.random.Generator`; these helpers normalize that and derive
statistically independent child generators for sub-components.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro._util.hashing import stable_hash

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def derive_rng(rng: RngLike = None, *salt: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` derived from ``rng``.

    ``salt`` parts decorrelate child streams: two calls with the same base
    seed but different salts produce independent generators, and the same
    (seed, salt) pair always produces the same stream.
    """
    if isinstance(rng, np.random.Generator):
        if salt:
            # Fold the salt into a fresh child stream without disturbing
            # the parent generator's state.  Integer entropy (the normal
            # case: generators made by this module) hashes directly;
            # list/None entropy falls back to a state snapshot.
            seed_seq = getattr(rng.bit_generator, "seed_seq", None)
            entropy = getattr(seed_seq, "entropy", None)
            if isinstance(entropy, int):
                return np.random.default_rng(stable_hash(entropy, *salt))
            snapshot = repr(rng.bit_generator.state)
            return np.random.default_rng(stable_hash(snapshot, *salt))
        return rng
    if isinstance(rng, np.random.SeedSequence):
        entropy = rng.entropy
        base = entropy if isinstance(entropy, int) else repr(entropy)
        return np.random.default_rng(stable_hash(base, *salt) if salt else rng)
    if rng is None:
        base = 0
    else:
        base = int(rng)
    if salt:
        return np.random.default_rng(stable_hash(base, *salt))
    return np.random.default_rng(base)


def spawn_rngs(rng: RngLike, n: int, *salt: object) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return [derive_rng(rng, *salt, i) for i in range(n)]
