"""u32 length-prefixed frame codec shared by every binary wire protocol.

One frame is a u32 big-endian length prefix followed by the payload.
The codec started life inside :mod:`repro.engine.replicate` and was
extracted verbatim once :mod:`repro.engine.remote` needed the same
framing for shard probes — three hand-rolled copies (replication,
remote probes, test proxies) would be a bug farm.

Both transports are covered:

- **asyncio streams** (:func:`read_frame`, :func:`send_json`) for the
  server side and the replication link;
- **blocking sockets** (:func:`recv_frame_sock`, :func:`send_frame_sock`,
  :func:`request_json_sock`) for the synchronous scatter/gather client
  in :mod:`repro.engine.remote`, where per-call ``settimeout`` budgets
  are the natural deadline primitive.

Every reader distinguishes a *clean* EOF between frames (``None``: the
peer hung up at a frame boundary) from a *torn* one inside a frame (an
exception: the stream is desynced and the connection must be dropped).
Callers pick the exception class via ``error=`` so protocol-specific
subclasses (e.g. ``ReplicationError``) keep working in existing
``except`` clauses.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

__all__ = [
    "MAX_FRAME_BYTES",
    "FramingError",
    "encode_frame",
    "read_frame",
    "parse_json",
    "send_json",
    "recv_frame_sock",
    "send_frame_sock",
    "request_json_sock",
    "V2_MAGIC",
    "V2_VERSION",
    "V2_OP_PROBE",
    "V2_OP_PROBE_REPLY",
    "V2_OP_FILTERS",
    "V2_OP_FILTERS_REPLY",
    "V2_FLAG_COUNTS",
    "is_v2_frame",
    "v2_header",
    "encode_probe_request",
    "decode_probe_request",
    "encode_probe_reply",
    "decode_probe_reply",
    "encode_filters_request",
    "decode_filters_request",
    "encode_filters_reply",
    "decode_filters_reply",
]

#: u32 big-endian frame length prefix (the NetListener idiom, binary-safe).
_LEN = struct.Struct(">I")

#: Upper bound on one frame; a larger prefix means a desynced or hostile
#: peer, not a big payload (large transfers ship one file per frame).
MAX_FRAME_BYTES = 1 << 30


class FramingError(RuntimeError):
    """A peer sent something the frame codec cannot accept (torn frame,
    oversized frame, undecodable control payload).  Both ends treat it
    as a connection loss: drop the link and let the caller's
    reconnect/retry logic recover."""


def encode_frame(payload: bytes) -> bytes:
    """One wire frame: u32 big-endian length prefix + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LEN.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    error: Type[FramingError] = FramingError,
) -> Optional[bytes]:
    """One frame off an asyncio stream; ``None`` on clean EOF between
    frames.

    EOF *inside* a frame — a torn length prefix or a payload cut short —
    raises ``error``: the stream is unusable from here and the
    connection must be re-established.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise error("connection closed mid-frame") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise error(
            f"frame length {length} exceeds MAX_FRAME_BYTES (desynced peer?)"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise error("connection closed mid-frame") from exc


def parse_json(
    payload: bytes,
    *,
    require_op: bool = True,
    error: Type[FramingError] = FramingError,
) -> dict:
    """Decode a JSON control frame.

    Requests must be op objects; replies (``require_op=False``) are any
    JSON object — ``{"error": ...}`` and ack shapes like ``{"ok": ...}``
    carry no ``op`` key.
    """
    try:
        msg = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise error(f"undecodable control frame: {exc}") from exc
    if not isinstance(msg, dict):
        raise error("control frame is not a JSON object")
    if require_op and "op" not in msg:
        raise error("control frame is not an op object")
    return msg


async def send_json(writer: asyncio.StreamWriter, obj: dict) -> int:
    """Write one JSON frame and drain (backpressure); returns wire bytes."""
    data = encode_frame(json.dumps(obj).encode("utf-8"))
    writer.write(data)
    await writer.drain()
    return len(data)


# ---------------------------------------------------------------------------
# Blocking-socket side (synchronous clients)
# ---------------------------------------------------------------------------

def _recv_exactly(
    sock: socket.socket, n: int, *, error: Type[FramingError]
) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on EOF with zero bytes read.

    ``socket.timeout`` propagates to the caller untouched — the remote
    client maps it onto its deadline accounting.
    """
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise error("connection closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame_sock(
    sock: socket.socket, *, error: Type[FramingError] = FramingError
) -> Optional[bytes]:
    """One frame off a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _LEN.size, error=error)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise error(
            f"frame length {length} exceeds MAX_FRAME_BYTES (desynced peer?)"
        )
    payload = _recv_exactly(sock, length, error=error)
    if payload is None:
        raise error("connection closed mid-frame")
    return payload


def send_frame_sock(sock: socket.socket, payload: bytes) -> int:
    """Write one frame to a blocking socket; returns wire bytes."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


def request_json_sock(
    sock: socket.socket,
    obj: dict,
    *,
    error: Type[FramingError] = FramingError,
) -> dict:
    """One JSON round trip on a blocking socket (request -> reply)."""
    send_frame_sock(sock, json.dumps(obj).encode("utf-8"))
    payload = recv_frame_sock(sock, error=error)
    if payload is None:
        raise error("connection closed before reply")
    return parse_json(payload, require_op=False, error=error)


# ---------------------------------------------------------------------------
# Protocol v2: zero-copy binary probe codec
# ---------------------------------------------------------------------------
# A v2 frame rides inside the same u32 length prefix as the JSON frames;
# the payload starts with a 12-byte header that can never be confused
# with JSON (which always starts with ``{``)::
#
#     magic  4s   b"EFB2"
#     ver    u8   2
#     op     u8   probe / probe-reply / filters / filters-reply
#     flags  u16  bit 0: per-label repetition counts requested/included
#     req    u32  request id, echoed by the reply (pipelining desync check)
#
# Everything after the header is little-endian, column-major numpy
# buffers (``ndarray.tobytes`` on the way out, ``np.frombuffer`` on the
# way in — no per-key Python, no JSON numbers), with small JSON tails
# for the incrementally negotiated string tables.  Decoders validate
# every length against the payload before touching a buffer and raise
# the caller's ``error`` class with a named reason — hostile input
# degrades, it never tracebacks.

V2_MAGIC = b"EFB2"
V2_VERSION = 2

V2_OP_PROBE = 1
V2_OP_PROBE_REPLY = 2
V2_OP_FILTERS = 3
V2_OP_FILTERS_REPLY = 4

V2_FLAG_COUNTS = 1

#: magic + version + op + flags + request id
_V2_HEADER = struct.Struct("<4sBBHI")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def is_v2_frame(payload: bytes) -> bool:
    """Does this frame carry the binary v2 protocol (vs framed JSON)?"""
    return payload[:4] == V2_MAGIC


def v2_header(
    payload: bytes, *, error: Type[FramingError] = FramingError
) -> Tuple[int, int, int, int]:
    """Validate the v2 header; returns ``(op, flags, request_id, body_at)``.

    A frame that opens with the magic but carries the wrong version or
    is too short for the header is a protocol error by name.
    """
    if len(payload) < _V2_HEADER.size:
        raise error(
            f"v2 frame truncated: {len(payload)} bytes is shorter than "
            f"the {_V2_HEADER.size}-byte header"
        )
    magic, version, op, flags, request_id = _V2_HEADER.unpack_from(payload)
    if magic != V2_MAGIC:
        raise error(f"not a v2 frame: bad magic {magic!r}")
    if version != V2_VERSION:
        raise error(
            f"unsupported v2 frame version byte {version} "
            f"(expected {V2_VERSION})"
        )
    return op, flags, request_id, _V2_HEADER.size


def _v2_frame(op: int, flags: int, request_id: int, body: bytes) -> bytes:
    return _V2_HEADER.pack(
        V2_MAGIC, V2_VERSION, op, flags, request_id & 0xFFFFFFFF
    ) + body


def _take(
    payload: bytes, at: int, n: int, what: str,
    *, error: Type[FramingError],
) -> Tuple[memoryview, int]:
    """Bounds-checked slice of ``n`` bytes at ``at``; names the field."""
    if n < 0 or at + n > len(payload):
        raise error(
            f"v2 frame truncated in {what}: need {n} bytes at offset "
            f"{at}, frame is {len(payload)} bytes"
        )
    return memoryview(payload)[at:at + n], at + n


def _take_u32(
    payload: bytes, at: int, what: str, *, error: Type[FramingError]
) -> Tuple[int, int]:
    view, at = _take(payload, at, _U32.size, what, error=error)
    return _U32.unpack(view)[0], at


def _take_u64(
    payload: bytes, at: int, what: str, *, error: Type[FramingError]
) -> Tuple[int, int]:
    view, at = _take(payload, at, _U64.size, what, error=error)
    return _U64.unpack(view)[0], at


def _take_json(
    payload: bytes, at: int, what: str, *, error: Type[FramingError]
):
    n, at = _take_u32(payload, at, f"{what} length", error=error)
    view, at = _take(payload, at, n, what, error=error)
    try:
        return json.loads(bytes(view).decode("utf-8")), at
    except (UnicodeDecodeError, ValueError) as exc:
        raise error(f"undecodable {what}: {exc}") from exc


def _take_array(
    payload: bytes, at: int, dtype: str, count: int, what: str,
    *, error: Type[FramingError],
) -> Tuple[np.ndarray, int]:
    """Zero-copy column read: ``np.frombuffer`` over a validated slice."""
    nbytes = count * np.dtype(dtype).itemsize
    view, at = _take(payload, at, nbytes, what, error=error)
    return np.frombuffer(view, dtype=dtype, count=count), at


def _json_tail(obj) -> bytes:
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return _U32.pack(len(data)) + data


# -- probe request: one shard bucket as columns ------------------------------

def encode_probe_request(
    request_id: int,
    shard: int,
    metric_id: np.ndarray,
    interval_id: np.ndarray,
    node: np.ndarray,
    value: np.ndarray,
    table_ext: Optional[dict] = None,
    counts: bool = False,
) -> bytes:
    """One probe bucket as ``(i32 metric, i32 interval, i64 node, f64
    value)`` columns against the connection's negotiated tables;
    ``table_ext`` appends this request's previously unseen metric /
    interval strings to those tables (in id order)."""
    n = len(node)
    body = b"".join((
        _U32.pack(int(shard)),
        _U32.pack(n),
        _json_tail(table_ext or {}),
        np.ascontiguousarray(metric_id, dtype="<i4").tobytes(),
        np.ascontiguousarray(interval_id, dtype="<i4").tobytes(),
        np.ascontiguousarray(node, dtype="<i8").tobytes(),
        np.ascontiguousarray(value, dtype="<f8").tobytes(),
    ))
    flags = V2_FLAG_COUNTS if counts else 0
    return _v2_frame(V2_OP_PROBE, flags, request_id, body)


def decode_probe_request(
    payload: bytes, *, error: Type[FramingError] = FramingError
) -> dict:
    """Decode a probe request; every length validated before any read."""
    op, flags, request_id, at = v2_header(payload, error=error)
    if op != V2_OP_PROBE:
        raise error(f"expected a probe request, got v2 op {op}")
    shard, at = _take_u32(payload, at, "shard", error=error)
    n, at = _take_u32(payload, at, "key count", error=error)
    ext, at = _take_json(payload, at, "table extension", error=error)
    if not isinstance(ext, dict):
        raise error("table extension is not a JSON object")
    metric_id, at = _take_array(
        payload, at, "<i4", n, "metric id column", error=error
    )
    interval_id, at = _take_array(
        payload, at, "<i4", n, "interval id column", error=error
    )
    node, at = _take_array(payload, at, "<i8", n, "node column", error=error)
    value, at = _take_array(
        payload, at, "<f8", n, "value column", error=error
    )
    if at != len(payload):
        raise error(
            f"probe request length mismatch: {len(payload) - at} trailing "
            f"byte(s) after the value column"
        )
    return {
        "request_id": request_id,
        "shard": shard,
        "counts": bool(flags & V2_FLAG_COUNTS),
        "ext": ext,
        "metric_id": metric_id,
        "interval_id": interval_id,
        "node": node,
        "value": value,
    }


# -- probe reply: CSR label ids against the negotiated label table -----------

def encode_probe_reply(
    request_id: int,
    store_version: int,
    match_counts: np.ndarray,
    label_ids: np.ndarray,
    new_labels: Sequence[str] = (),
    label_counts: Optional[np.ndarray] = None,
) -> bytes:
    """Match-count offsets + CSR label-id arrays; ``new_labels`` appends
    to the connection's label table (ids continue from its size)."""
    body_parts = [
        _U64.pack(int(store_version)),
        _U32.pack(len(match_counts)),
        np.ascontiguousarray(match_counts, dtype="<u4").tobytes(),
        np.ascontiguousarray(label_ids, dtype="<i4").tobytes(),
    ]
    flags = 0
    if label_counts is not None:
        flags |= V2_FLAG_COUNTS
        body_parts.append(
            np.ascontiguousarray(label_counts, dtype="<u8").tobytes()
        )
    body_parts.append(_json_tail(list(new_labels)))
    return _v2_frame(
        V2_OP_PROBE_REPLY, flags, request_id, b"".join(body_parts)
    )


def decode_probe_reply(
    payload: bytes, *, error: Type[FramingError] = FramingError
) -> dict:
    """Decode a probe reply; malformed structure raises by name (the
    client degrades the bucket with the reason, it never tracebacks)."""
    op, flags, request_id, at = v2_header(payload, error=error)
    if op != V2_OP_PROBE_REPLY:
        raise error(f"expected a probe reply, got v2 op {op}")
    store_version, at = _take_u64(payload, at, "store version", error=error)
    n, at = _take_u32(payload, at, "key count", error=error)
    match_counts, at = _take_array(
        payload, at, "<u4", n, "match-count column", error=error
    )
    total = int(match_counts.sum())
    label_ids, at = _take_array(
        payload, at, "<i4", total, "label-id column", error=error
    )
    label_counts = None
    if flags & V2_FLAG_COUNTS:
        label_counts, at = _take_array(
            payload, at, "<u8", total, "label-count column", error=error
        )
    new_labels, at = _take_json(payload, at, "new-label table", error=error)
    if not isinstance(new_labels, list) or any(
        not isinstance(l, str) for l in new_labels
    ):
        raise error("new-label table is not a list of strings")
    if at != len(payload):
        raise error(
            f"probe reply length mismatch: {len(payload) - at} trailing "
            f"byte(s) after the tables"
        )
    return {
        "request_id": request_id,
        "store_version": store_version,
        "match_counts": match_counts,
        "label_ids": label_ids,
        "label_counts": label_counts,
        "new_labels": new_labels,
    }


# -- filters: per-shard Bloom sidecars for the client's mirrors --------------

def encode_filters_request(request_id: int, shards: Sequence[int]) -> bytes:
    body = _U32.pack(len(shards)) + np.asarray(
        sorted(shards), dtype="<u4"
    ).tobytes()
    return _v2_frame(V2_OP_FILTERS, 0, request_id, body)


def decode_filters_request(
    payload: bytes, *, error: Type[FramingError] = FramingError
) -> Tuple[int, List[int]]:
    op, _flags, request_id, at = v2_header(payload, error=error)
    if op != V2_OP_FILTERS:
        raise error(f"expected a filters request, got v2 op {op}")
    n, at = _take_u32(payload, at, "shard count", error=error)
    shards, at = _take_array(
        payload, at, "<u4", n, "shard list", error=error
    )
    if at != len(payload):
        raise error("filters request length mismatch")
    return request_id, [int(s) for s in shards]


def encode_filters_reply(
    request_id: int,
    store_version: int,
    blobs: Sequence[Tuple[int, bytes]],
    tables: dict,
) -> bytes:
    """Per-shard serialized :class:`~repro.engine.keyfilter.KeyFilter`
    blobs plus the interned metric/interval tables they hash against."""
    parts = [_U64.pack(int(store_version)), _U32.pack(len(blobs))]
    for shard, blob in blobs:
        parts.append(_U32.pack(int(shard)))
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)
    parts.append(_json_tail(tables))
    return _v2_frame(V2_OP_FILTERS_REPLY, 0, request_id, b"".join(parts))


def decode_filters_reply(
    payload: bytes, *, error: Type[FramingError] = FramingError
) -> dict:
    op, _flags, request_id, at = v2_header(payload, error=error)
    if op != V2_OP_FILTERS_REPLY:
        raise error(f"expected a filters reply, got v2 op {op}")
    store_version, at = _take_u64(payload, at, "store version", error=error)
    n, at = _take_u32(payload, at, "filter count", error=error)
    blobs: List[Tuple[int, bytes]] = []
    for i in range(n):
        shard, at = _take_u32(payload, at, f"filter {i} shard", error=error)
        size, at = _take_u32(payload, at, f"filter {i} size", error=error)
        blob, at = _take(payload, at, size, f"filter {i} blob", error=error)
        blobs.append((shard, bytes(blob)))
    tables, at = _take_json(payload, at, "filter tables", error=error)
    if not isinstance(tables, dict):
        raise error("filter tables are not a JSON object")
    if at != len(payload):
        raise error("filters reply length mismatch")
    return {
        "request_id": request_id,
        "store_version": store_version,
        "filters": blobs,
        "tables": tables,
    }
