"""u32 length-prefixed frame codec shared by every binary wire protocol.

One frame is a u32 big-endian length prefix followed by the payload.
The codec started life inside :mod:`repro.engine.replicate` and was
extracted verbatim once :mod:`repro.engine.remote` needed the same
framing for shard probes — three hand-rolled copies (replication,
remote probes, test proxies) would be a bug farm.

Both transports are covered:

- **asyncio streams** (:func:`read_frame`, :func:`send_json`) for the
  server side and the replication link;
- **blocking sockets** (:func:`recv_frame_sock`, :func:`send_frame_sock`,
  :func:`request_json_sock`) for the synchronous scatter/gather client
  in :mod:`repro.engine.remote`, where per-call ``settimeout`` budgets
  are the natural deadline primitive.

Every reader distinguishes a *clean* EOF between frames (``None``: the
peer hung up at a frame boundary) from a *torn* one inside a frame (an
exception: the stream is desynced and the connection must be dropped).
Callers pick the exception class via ``error=`` so protocol-specific
subclasses (e.g. ``ReplicationError``) keep working in existing
``except`` clauses.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional, Type

__all__ = [
    "MAX_FRAME_BYTES",
    "FramingError",
    "encode_frame",
    "read_frame",
    "parse_json",
    "send_json",
    "recv_frame_sock",
    "send_frame_sock",
    "request_json_sock",
]

#: u32 big-endian frame length prefix (the NetListener idiom, binary-safe).
_LEN = struct.Struct(">I")

#: Upper bound on one frame; a larger prefix means a desynced or hostile
#: peer, not a big payload (large transfers ship one file per frame).
MAX_FRAME_BYTES = 1 << 30


class FramingError(RuntimeError):
    """A peer sent something the frame codec cannot accept (torn frame,
    oversized frame, undecodable control payload).  Both ends treat it
    as a connection loss: drop the link and let the caller's
    reconnect/retry logic recover."""


def encode_frame(payload: bytes) -> bytes:
    """One wire frame: u32 big-endian length prefix + payload."""
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LEN.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader,
    *,
    error: Type[FramingError] = FramingError,
) -> Optional[bytes]:
    """One frame off an asyncio stream; ``None`` on clean EOF between
    frames.

    EOF *inside* a frame — a torn length prefix or a payload cut short —
    raises ``error``: the stream is unusable from here and the
    connection must be re-established.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise error("connection closed mid-frame") from exc
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise error(
            f"frame length {length} exceeds MAX_FRAME_BYTES (desynced peer?)"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise error("connection closed mid-frame") from exc


def parse_json(
    payload: bytes,
    *,
    require_op: bool = True,
    error: Type[FramingError] = FramingError,
) -> dict:
    """Decode a JSON control frame.

    Requests must be op objects; replies (``require_op=False``) are any
    JSON object — ``{"error": ...}`` and ack shapes like ``{"ok": ...}``
    carry no ``op`` key.
    """
    try:
        msg = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise error(f"undecodable control frame: {exc}") from exc
    if not isinstance(msg, dict):
        raise error("control frame is not a JSON object")
    if require_op and "op" not in msg:
        raise error("control frame is not an op object")
    return msg


async def send_json(writer: asyncio.StreamWriter, obj: dict) -> int:
    """Write one JSON frame and drain (backpressure); returns wire bytes."""
    data = encode_frame(json.dumps(obj).encode("utf-8"))
    writer.write(data)
    await writer.drain()
    return len(data)


# ---------------------------------------------------------------------------
# Blocking-socket side (synchronous clients)
# ---------------------------------------------------------------------------

def _recv_exactly(
    sock: socket.socket, n: int, *, error: Type[FramingError]
) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on EOF with zero bytes read.

    ``socket.timeout`` propagates to the caller untouched — the remote
    client maps it onto its deadline accounting.
    """
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise error("connection closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame_sock(
    sock: socket.socket, *, error: Type[FramingError] = FramingError
) -> Optional[bytes]:
    """One frame off a blocking socket; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _LEN.size, error=error)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise error(
            f"frame length {length} exceeds MAX_FRAME_BYTES (desynced peer?)"
        )
    payload = _recv_exactly(sock, length, error=error)
    if payload is None:
        raise error("connection closed mid-frame")
    return payload


def send_frame_sock(sock: socket.socket, payload: bytes) -> int:
    """Write one frame to a blocking socket; returns wire bytes."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


def request_json_sock(
    sock: socket.socket,
    obj: dict,
    *,
    error: Type[FramingError] = FramingError,
) -> dict:
    """One JSON round trip on a blocking socket (request -> reply)."""
    send_frame_sock(sock, json.dumps(obj).encode("utf-8"))
    payload = recv_frame_sock(sock, error=error)
    if payload is None:
        raise error("connection closed before reply")
    return parse_json(payload, require_op=False, error=error)
