"""Internal utilities shared across :mod:`repro` subpackages.

Nothing in this package is part of the public API; downstream code should
import from :mod:`repro` or its documented subpackages instead.
"""

from repro._util.backoff import BackoffPolicy
from repro._util.hashing import stable_hash, stable_uniform, stable_choice
from repro._util.rng import derive_rng, spawn_rngs
from repro._util.tables import TextTable, format_float
from repro._util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
    check_array_1d,
)

__all__ = [
    "BackoffPolicy",
    "stable_hash",
    "stable_uniform",
    "stable_choice",
    "derive_rng",
    "spawn_rngs",
    "TextTable",
    "format_float",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "check_array_1d",
]
