"""Documentation and example health checker.

Docs rot in two ways this repo can actually detect: markdown
cross-links stop resolving (files move, headings get reworded), and
``examples/*.py`` silently break when the public API shifts.  This
module checks both and is wired into tier-1 via
``tests/test_doccheck.py`` (and the ``make docs-check`` target), so a PR
cannot merge with broken docs::

    python -m repro._util.doccheck            # links + example imports
    python -m repro._util.doccheck --run      # also execute every example

Checks
------
- **Links.** Every relative markdown link/image in ``README.md`` and
  ``docs/**/*.md`` must point at an existing file or directory; a
  ``#fragment`` must match a heading anchor (GitHub slug rules) in the
  target file.  External (``http(s)://``, ``mailto:``) links are not
  fetched — this tool must work offline.
- **Examples.** Each ``examples/*.py`` must compile, and every
  ``import repro...`` / ``from repro... import name`` it performs must
  resolve against the installed package — the cheap proxy for "the
  example still runs" that catches renamed/removed public API.  With
  ``--run``, each example is executed in a subprocess instead
  (slow; not part of tier-1).
"""

from __future__ import annotations

import argparse
import ast
import functools
import importlib
import os
import re
import subprocess
import sys
from typing import Iterable, List, Optional, Sequence, Tuple

_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def repo_root(start: Optional[str] = None) -> str:
    """Nearest ancestor of ``start`` containing README.md (or cwd)."""
    path = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.isfile(os.path.join(path, "README.md")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.path.abspath(start or os.getcwd())
        path = parent


def markdown_files(root: str) -> List[str]:
    """README.md plus every ``docs/**/*.md``, repo-relative order."""
    out = []
    readme = os.path.join(root, "README.md")
    if os.path.isfile(readme):
        out.append(readme)
    docs = os.path.join(root, "docs")
    for base, _, names in sorted(os.walk(docs)):
        for name in sorted(names):
            if name.endswith(".md"):
                out.append(os.path.join(base, name))
    return out


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line's text."""
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@functools.lru_cache(maxsize=None)
def heading_anchors(path: str) -> List[str]:
    """All heading anchors in a markdown file (code fences excluded).

    Cached per path — one target file is typically the destination of
    many fragment links in one check run.
    """
    anchors: List[str] = []
    in_fence = False
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            if _CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = _HEADING_RE.match(line)
            if match:
                anchors.append(github_slug(match.group(1)))
    return anchors


def extract_links(path: str) -> List[Tuple[int, str]]:
    """(line number, target) for every markdown link, fences excluded."""
    links: List[Tuple[int, str]] = []
    in_fence = False
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if _CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in _LINK_RE.finditer(line):
                links.append((lineno, match.group(1)))
    return links


def check_links(root: str) -> List[str]:
    """Problems with relative links/anchors in the repo's markdown."""
    problems: List[str] = []
    for md in markdown_files(root):
        rel_md = os.path.relpath(md, root)
        for lineno, target in extract_links(md):
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md), path_part)
                )
                if not os.path.exists(resolved):
                    problems.append(
                        f"{rel_md}:{lineno}: broken link {target!r} "
                        f"({os.path.relpath(resolved, root)} does not exist)"
                    )
                    continue
            else:
                resolved = md  # same-file anchor
            if fragment:
                if not resolved.endswith(".md") or not os.path.isfile(resolved):
                    continue  # anchors into non-markdown targets: skip
                if fragment not in heading_anchors(resolved):
                    problems.append(
                        f"{rel_md}:{lineno}: broken anchor {target!r} "
                        f"(no heading #{fragment} in "
                        f"{os.path.relpath(resolved, root)})"
                    )
    return problems


def example_files(root: str) -> List[str]:
    examples = os.path.join(root, "examples")
    if not os.path.isdir(examples):
        return []
    return [
        os.path.join(examples, name)
        for name in sorted(os.listdir(examples))
        if name.endswith(".py")
    ]


def _imports_of(tree: ast.AST) -> Iterable[Tuple[str, Optional[str]]]:
    """(module, name-or-None) pairs for every repro import in a tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    yield alias.name, None
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module and node.module.split(".")[0] == "repro":
                for alias in node.names:
                    yield node.module, alias.name


def check_example_imports(path: str) -> List[str]:
    """Compile one example and resolve its ``repro`` imports."""
    rel = os.path.basename(path)
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [f"examples/{rel}: does not compile: {exc}"]
    problems: List[str] = []
    for module, name in _imports_of(tree):
        try:
            mod = importlib.import_module(module)
        except Exception as exc:  # ImportError or module-level crash
            problems.append(
                f"examples/{rel}: import {module} failed: "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        if name is not None and name != "*" and not hasattr(mod, name):
            problems.append(
                f"examples/{rel}: `from {module} import {name}` — "
                f"{module} has no attribute {name!r}"
            )
    return problems


def run_example(path: str, timeout: float = 300.0) -> List[str]:
    """Execute one example in a subprocess; nonzero exit is a problem."""
    rel = os.path.basename(path)
    env = dict(os.environ)
    src = os.path.join(repo_root(os.path.dirname(path)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    try:
        proc = subprocess.run(
            [sys.executable, path],
            capture_output=True, text=True, timeout=timeout, env=env,
        )
    except subprocess.TimeoutExpired:
        return [f"examples/{rel}: timed out after {timeout:.0f}s"]
    if proc.returncode != 0:
        tail = "\n".join(proc.stderr.strip().splitlines()[-3:])
        return [f"examples/{rel}: exited {proc.returncode}: {tail}"]
    return []


def check_examples(root: str, run: bool = False) -> List[str]:
    problems: List[str] = []
    for path in example_files(root):
        problems.extend(check_example_imports(path))
        if run:
            problems.extend(run_example(path))
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro._util.doccheck",
        description="check markdown cross-links and examples health",
    )
    parser.add_argument("--root", default=None,
                        help="repo root (default: nearest README.md)")
    parser.add_argument("--run", action="store_true",
                        help="execute each example (slow) instead of only "
                             "resolving its imports")
    args = parser.parse_args(argv)
    root = repo_root(args.root)
    # Make `import repro` work in a bare checkout.
    src = os.path.join(root, "src")
    if os.path.isdir(src) and src not in sys.path:
        sys.path.insert(0, src)
    problems = check_links(root) + check_examples(root, run=args.run)
    n_md = len(markdown_files(root))
    n_ex = len(example_files(root))
    if problems:
        for problem in problems:
            print(problem)
        print(f"doccheck: {len(problems)} problem(s) across "
              f"{n_md} markdown file(s) and {n_ex} example(s)")
        return 1
    mode = "ran" if args.run else "import-checked"
    print(f"doccheck: OK — {n_md} markdown file(s) link-clean, "
          f"{n_ex} example(s) {mode}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
