"""Argument validation helpers.

These raise early, descriptive errors so that user mistakes surface at the
public API boundary rather than deep inside vectorized NumPy code.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Type, Union

import numpy as np

Number = Union[int, float]


def check_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__} ({value!r})"
        )
    return value


def check_positive(value: Number, name: str) -> Number:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: Number, name: str) -> Number:
    """Raise ``ValueError`` unless ``value`` is >= 0 and finite."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_in_range(
    value: Number,
    name: str,
    low: Optional[Number] = None,
    high: Optional[Number] = None,
    inclusive: bool = True,
) -> Number:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    ok = True
    if low is not None:
        ok = ok and (value >= low if inclusive else value > low)
    if high is not None:
        ok = ok and (value <= high if inclusive else value < high)
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_array_1d(
    values: Sequence, name: str, dtype: Optional[type] = float, min_len: int = 0
) -> np.ndarray:
    """Coerce ``values`` to a 1-D NumPy array, validating shape and length."""
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.shape[0] < min_len:
        raise ValueError(
            f"{name} must have at least {min_len} elements, got {arr.shape[0]}"
        )
    return arr
