"""Capped exponential backoff with full jitter.

One policy shared by every reconnect/retry loop in the tree — the
replication follower's redial (:mod:`repro.engine.replicate`) and the
remote shard client's per-call retries (:mod:`repro.engine.remote`).
Full jitter (delay drawn uniformly from ``[0, min(cap, base * 2^k)]``)
is what keeps a fleet of replicas from hammering a restarting leader in
lockstep: the *ceiling* grows exponentially, the *draw* decorrelates
the herd.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["BackoffPolicy"]


class BackoffPolicy:
    """``delay(attempt) = uniform(0, min(cap, base * 2**attempt))``.

    ``attempt`` counts consecutive failures starting at 0; callers reset
    their counter after a success, which snaps the ceiling back to
    ``base``.  ``rng`` is injectable so tests pin the draw sequence.
    """

    def __init__(
        self,
        base: float,
        cap: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ):
        if base <= 0:
            raise ValueError(f"backoff base must be positive, got {base}")
        self.base = float(base)
        self.cap = float(cap) if cap is not None else self.base * 32.0
        if self.cap < self.base:
            raise ValueError(
                f"backoff cap {self.cap} below base {self.base}"
            )
        self._rng = rng if rng is not None else random.Random()

    def ceiling(self, attempt: int) -> float:
        """The deterministic envelope: ``min(cap, base * 2**attempt)``."""
        return min(self.cap, self.base * (2.0 ** max(int(attempt), 0)))

    def delay(self, attempt: int) -> float:
        """One full-jitter draw for the given consecutive-failure count."""
        return self._rng.uniform(0.0, self.ceiling(attempt))
