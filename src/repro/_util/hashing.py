"""Deterministic, process-independent hashing.

Workload models derive per-(application, input, metric) behaviour
parameters from stable hashes so that the synthetic dataset is fully
reproducible across runs, machines, and Python versions (``hash()`` is
salted per process and therefore unusable here).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

_MASK64 = (1 << 64) - 1


def stable_hash(*parts: object) -> int:
    """Return a deterministic 64-bit hash of ``parts``.

    Parts are joined with an unambiguous separator and hashed with
    BLAKE2b.  Equal inputs hash equally in every process; distinct inputs
    collide with probability ~2**-64.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        token = f"{type(part).__name__}:{part!r}"
        h.update(token.encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "big") & _MASK64


def stable_uniform(*parts: object, low: float = 0.0, high: float = 1.0) -> float:
    """Deterministically map ``parts`` to a float uniform in ``[low, high)``."""
    if not high > low:
        raise ValueError(f"require high > low, got low={low}, high={high}")
    unit = stable_hash(*parts) / float(1 << 64)
    return low + (high - low) * unit


def stable_choice(options: Sequence, *parts: object):
    """Deterministically pick one element of ``options`` from ``parts``."""
    if len(options) == 0:
        raise ValueError("options must be non-empty")
    return options[stable_hash(*parts) % len(options)]


def stable_seed_sequence(*parts: object) -> np.random.SeedSequence:
    """Build a :class:`numpy.random.SeedSequence` from a stable hash."""
    return np.random.SeedSequence(stable_hash(*parts))
