"""Plain-text table rendering for benchmark and experiment reports.

The benchmarks must print the same rows the paper's tables report; this
module provides a small, dependency-free fixed-width table renderer.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_float(value: float, digits: int = 2) -> str:
    """Format ``value`` compactly (paper-style: ``1.0`` not ``1.00``)."""
    if value != value:  # NaN
        return "-"
    text = f"{value:.{digits}f}"
    # Trim trailing zeros but keep at least one decimal ("1.0", "0.95").
    if "." in text:
        text = text.rstrip("0")
        if text.endswith("."):
            text += "0"
    return text


class TextTable:
    """Fixed-width text table with a header row.

    Example
    -------
    >>> t = TextTable(["metric", "F-score"])
    >>> t.add_row(["nr_mapped_vmstat", "1.0"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        if not headers:
            raise ValueError("headers must be non-empty")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [str(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(cells)

    def add_rows(self, rows: Iterable[Iterable[object]]) -> None:
        for row in rows:
            self.add_row(row)

    def _widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        widths = self._widths()
        sep = "+".join("-" * (w + 2) for w in widths)
        sep = f"+{sep}+"

        def fmt(cells: Sequence[str]) -> str:
            inner = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
            return f"| {inner} |"

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(sep)
        lines.append(fmt(self.headers))
        lines.append(sep)
        for row in self.rows:
            lines.append(fmt(row))
        lines.append(sep)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_bar_chart(
    labels: Sequence[str],
    series: Sequence[tuple],
    width: int = 40,
    vmax: float = 1.0,
    title: Optional[str] = None,
) -> str:
    """Render grouped horizontal bars (ASCII stand-in for Figure 2).

    Parameters
    ----------
    labels:
        Group labels (e.g. experiment names).
    series:
        Sequence of ``(series_name, values)`` where ``values[i]`` aligns
        with ``labels[i]``; ``None`` values render as "n/a".
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    name_w = max((len(n) for n, _ in series), default=0)
    for i, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series:
            v = values[i]
            if v is None or v != v:
                lines.append(f"  {name.ljust(name_w)} | n/a")
                continue
            filled = int(round(max(0.0, min(v, vmax)) / vmax * width))
            bar = "#" * filled + "." * (width - filled)
            lines.append(f"  {name.ljust(name_w)} | {bar} {v:.3f}")
    return "\n".join(lines)
