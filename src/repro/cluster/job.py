"""Job descriptor."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.workloads.base import AppModel


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class Job:
    """One batch job: an application, an input size, and a node request.

    The ``app`` the job *actually runs* is intentionally separate from
    any user-declared metadata — recognition exists precisely because job
    scripts can lie about what they execute.
    """

    job_id: int
    app: AppModel
    input_size: str
    n_nodes: int = 4
    submit_time: float = 0.0
    status: JobStatus = JobStatus.PENDING
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    node_ids: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError(f"job_id must be >= 0, got {self.job_id}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.submit_time < 0:
            raise ValueError(f"submit_time must be >= 0, got {self.submit_time}")

    @property
    def duration(self) -> float:
        """Modelled execution duration in seconds."""
        return self.app.duration(self.input_size)

    def mark_running(self, start_time: float, node_ids: List[int]) -> None:
        if self.status is not JobStatus.PENDING:
            raise RuntimeError(f"job {self.job_id} is {self.status.value}, not pending")
        if len(node_ids) != self.n_nodes:
            raise ValueError(
                f"job {self.job_id} requested {self.n_nodes} nodes, got {len(node_ids)}"
            )
        self.status = JobStatus.RUNNING
        self.start_time = float(start_time)
        self.node_ids = list(node_ids)

    def mark_completed(self, end_time: float) -> None:
        if self.status is not JobStatus.RUNNING:
            raise RuntimeError(f"job {self.job_id} is {self.status.value}, not running")
        if self.start_time is not None and end_time < self.start_time:
            raise ValueError("end_time precedes start_time")
        self.status = JobStatus.COMPLETED
        self.end_time = float(end_time)
