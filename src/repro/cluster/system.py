"""Cluster: a set of nodes with contiguous-free allocation."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import Node, NodeSpec


class AllocationError(RuntimeError):
    """Raised when an allocation request cannot be satisfied."""


class Cluster:
    """A homogeneous partition of compute nodes."""

    def __init__(self, n_nodes: int, spec: Optional[NodeSpec] = None):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        spec = spec or NodeSpec()
        self.nodes: List[Node] = [Node(i, spec) for i in range(n_nodes)]

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def free_count(self) -> int:
        return sum(1 for n in self.nodes if n.is_free)

    def free_nodes(self) -> List[int]:
        return [n.node_id for n in self.nodes if n.is_free]

    def allocate(self, job_id: int, count: int) -> List[int]:
        """Allocate ``count`` free nodes to ``job_id``; returns node ids."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        free = self.free_nodes()
        if len(free) < count:
            raise AllocationError(
                f"job {job_id} needs {count} nodes, only {len(free)} free"
            )
        chosen = free[:count]
        for nid in chosen:
            self.nodes[nid].allocate(job_id)
        return chosen

    def release(self, job_id: int) -> List[int]:
        """Release every node held by ``job_id``; returns the node ids."""
        released = []
        for node in self.nodes:
            if node.allocated_to == job_id:
                node.release()
                released.append(node.node_id)
        if not released:
            raise AllocationError(f"job {job_id} holds no nodes")
        return released

    def allocation_map(self) -> Dict[int, List[int]]:
        """``{job_id: [node ids]}`` for currently running jobs."""
        out: Dict[int, List[int]] = {}
        for node in self.nodes:
            if not node.is_free:
                out.setdefault(node.allocated_to, []).append(node.node_id)
        return out
