"""Compute-node model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description shared by a homogeneous partition."""

    cores: int = 32
    mem_gb: int = 128
    nic: str = "aries"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.mem_gb < 1:
            raise ValueError(f"mem_gb must be >= 1, got {self.mem_gb}")


@dataclass
class Node:
    """One compute node with allocation state."""

    node_id: int
    spec: NodeSpec = field(default_factory=NodeSpec)
    allocated_to: int = -1  # job id, or -1 when free

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")

    @property
    def is_free(self) -> bool:
        return self.allocated_to < 0

    def allocate(self, job_id: int) -> None:
        if not self.is_free:
            raise RuntimeError(
                f"node {self.node_id} already allocated to job {self.allocated_to}"
            )
        if job_id < 0:
            raise ValueError(f"job_id must be >= 0, got {job_id}")
        self.allocated_to = job_id

    def release(self) -> None:
        if self.is_free:
            raise RuntimeError(f"node {self.node_id} is not allocated")
        self.allocated_to = -1
