"""Event-driven batch scheduler (FCFS with optional EASY backfill).

The recognition examples use the scheduler to replay a realistic job
stream: jobs arrive, wait, start, emit telemetry, and the EFD recognizes
them two minutes into execution — early enough to act (reschedule,
re-prioritize, kill a miner) while the job is still running.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.job import Job, JobStatus
from repro.cluster.system import Cluster


class SchedulerPolicy(enum.Enum):
    FCFS = "fcfs"
    EASY_BACKFILL = "easy_backfill"


@dataclass(frozen=True)
class ScheduledJob:
    """Final schedule entry for one job."""

    job_id: int
    app_name: str
    input_size: str
    start_time: float
    end_time: float
    node_ids: Tuple[int, ...]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


class Scheduler:
    """Simulates job placement on a :class:`Cluster`.

    The simulation is event-driven over two event kinds: job arrival and
    job completion.  FCFS starts jobs strictly in arrival order; EASY
    backfill lets a shorter job jump the queue when it cannot delay the
    queue head (using the modelled duration as the walltime estimate).
    """

    def __init__(self, cluster: Cluster, policy: SchedulerPolicy = SchedulerPolicy.FCFS):
        self.cluster = cluster
        self.policy = policy

    def run(self, jobs: Sequence[Job]) -> List[ScheduledJob]:
        """Schedule ``jobs``; returns completed schedule sorted by start."""
        for job in jobs:
            if job.status is not JobStatus.PENDING:
                raise ValueError(f"job {job.job_id} is not pending")
            if job.n_nodes > len(self.cluster):
                raise ValueError(
                    f"job {job.job_id} requests {job.n_nodes} nodes, cluster "
                    f"has {len(self.cluster)}"
                )
        queue: List[Job] = []
        arrivals = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        ai = 0
        # (time, seq, job) completion events
        running: List[Tuple[float, int, Job]] = []
        seq = 0
        out: List[ScheduledJob] = []
        now = 0.0

        def try_start(job: Job, at: float) -> bool:
            if self.cluster.free_count < job.n_nodes:
                return False
            nodes = self.cluster.allocate(job.job_id, job.n_nodes)
            job.mark_running(at, nodes)
            nonlocal seq
            heapq.heappush(running, (at + job.duration, seq, job))
            seq += 1
            return True

        def schedule_queue(at: float) -> None:
            # FCFS head-first; EASY backfill may start later jobs that fit
            # without delaying the head's earliest possible start.
            while queue:
                if try_start(queue[0], at):
                    queue.pop(0)
                    continue
                break
            if self.policy is SchedulerPolicy.EASY_BACKFILL and queue:
                head = queue[0]
                shadow_time = _earliest_start(head, running, self.cluster, at)
                i = 1
                while i < len(queue):
                    job = queue[i]
                    fits_now = self.cluster.free_count >= job.n_nodes
                    ends_before_shadow = at + job.duration <= shadow_time
                    if fits_now and ends_before_shadow and try_start(job, at):
                        queue.pop(i)
                    else:
                        i += 1

        while ai < len(arrivals) or queue or running:
            next_arrival = arrivals[ai].submit_time if ai < len(arrivals) else None
            next_completion = running[0][0] if running else None
            if next_completion is None and next_arrival is None:
                break  # pragma: no cover - loop condition prevents this
            if next_arrival is not None and (
                next_completion is None or next_arrival <= next_completion
            ):
                now = next_arrival
                while ai < len(arrivals) and arrivals[ai].submit_time <= now:
                    queue.append(arrivals[ai])
                    ai += 1
            else:
                now = next_completion  # type: ignore[assignment]
                end_time, _, job = heapq.heappop(running)
                job.mark_completed(end_time)
                self.cluster.release(job.job_id)
                out.append(
                    ScheduledJob(
                        job_id=job.job_id,
                        app_name=job.app.name,
                        input_size=job.input_size,
                        start_time=job.start_time or 0.0,
                        end_time=end_time,
                        node_ids=tuple(job.node_ids),
                    )
                )
            schedule_queue(now)
        return sorted(out, key=lambda s: (s.start_time, s.job_id))


def _earliest_start(
    job: Job,
    running: List[Tuple[float, int, Job]],
    cluster: Cluster,
    now: float,
) -> float:
    """Earliest time ``job`` could start given current reservations."""
    free = cluster.free_count
    if free >= job.n_nodes:
        return now
    for end_time, _, r in sorted(running):
        free += r.n_nodes
        if free >= job.n_nodes:
            return end_time
    return float("inf")  # pragma: no cover - job size validated upstream
