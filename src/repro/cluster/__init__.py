"""Simulated HPC system.

Provides the execution substrate the recognition pipeline runs against:
nodes (:mod:`repro.cluster.node`), a cluster with allocation
(:mod:`repro.cluster.system`), jobs (:mod:`repro.cluster.job`), an
execution engine that runs a workload model and produces LDMS telemetry
(:mod:`repro.cluster.execution`), and a small FCFS/backfill scheduler
(:mod:`repro.cluster.scheduler`) used by the streaming examples.
"""

from repro.cluster.node import Node, NodeSpec
from repro.cluster.system import Cluster, AllocationError
from repro.cluster.job import Job, JobStatus
from repro.cluster.execution import ExecutionEngine, ExecutionResult
from repro.cluster.scheduler import Scheduler, SchedulerPolicy, ScheduledJob

__all__ = [
    "Node",
    "NodeSpec",
    "Cluster",
    "AllocationError",
    "Job",
    "JobStatus",
    "ExecutionEngine",
    "ExecutionResult",
    "Scheduler",
    "SchedulerPolicy",
    "ScheduledJob",
]
