"""Execution engine: run a workload model, produce LDMS telemetry.

This is the point where the substrate layers meet: the engine asks the
:class:`~repro.workloads.base.AppModel` for an execution behaviour,
builds per-(metric, node) signal functions, and has per-node
:class:`~repro.telemetry.ldms.LDMSDaemon` instances sample them.  The
result is exactly what a monitoring pipeline would hand to the EFD: one
:class:`~repro.telemetry.timeseries.TimeSeries` per metric per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro._util.rng import RngLike, derive_rng
from repro.telemetry.ldms import LDMSAggregator, LDMSDaemon
from repro.telemetry.metrics import MetricRegistry, MetricSpec, default_registry
from repro.telemetry.noise import NoiseModel
from repro.telemetry.sampler import SamplerConfig
from repro.telemetry.timeseries import TimeSeries
from repro.workloads.base import AppModel, ExecutionBehavior, make_signal


@dataclass
class ExecutionResult:
    """Telemetry and metadata of one completed execution."""

    app_name: str
    input_size: str
    n_nodes: int
    duration: float
    telemetry: Dict[Tuple[str, int], TimeSeries]
    execution_id: int = 0

    @property
    def label(self) -> str:
        """Dataset label: ``app_input`` (e.g. ``"miniAMR_Z"``)."""
        return f"{self.app_name}_{self.input_size}"

    def series(self, metric: str, node: int) -> TimeSeries:
        try:
            return self.telemetry[(metric, node)]
        except KeyError:
            metrics = sorted({m for m, _ in self.telemetry})
            raise KeyError(
                f"no telemetry for metric={metric!r} node={node}; "
                f"collected metrics: {metrics[:8]}{'...' if len(metrics) > 8 else ''}"
            ) from None

    def metrics(self) -> List[str]:
        return sorted({m for m, _ in self.telemetry})

    def nodes(self) -> List[int]:
        return sorted({n for _, n in self.telemetry})


class ExecutionEngine:
    """Runs workload models on simulated nodes and collects telemetry.

    Parameters
    ----------
    metrics:
        Which metrics to monitor.  Accepts metric names or specs; default
        is the paper's headline metric only (monitoring all 562 is
        supported but costs proportionally more to simulate).
    sampler_config:
        LDMS sampling behaviour (cadence, jitter, dropout).
    noise:
        Optional override of the telemetry noise stack; ``None`` uses the
        per-application default.
    """

    def __init__(
        self,
        metrics: Optional[Sequence] = None,
        sampler_config: Optional[SamplerConfig] = None,
        noise: Optional[NoiseModel] = None,
        registry: Optional[MetricRegistry] = None,
    ):
        self.registry = registry or default_registry()
        if metrics is None:
            metrics = ["nr_mapped_vmstat"]
        self.metrics: List[MetricSpec] = [
            m if isinstance(m, MetricSpec) else self.registry.get(m) for m in metrics
        ]
        if not self.metrics:
            raise ValueError("at least one metric must be monitored")
        self.sampler_config = sampler_config or SamplerConfig()
        self.noise = noise

    def run(
        self,
        app: AppModel,
        input_size: str,
        n_nodes: int = 4,
        rng: RngLike = None,
        execution_id: int = 0,
        duration: Optional[float] = None,
    ) -> ExecutionResult:
        """Execute ``app`` with ``input_size`` on ``n_nodes`` nodes."""
        behavior = app.execution_behavior(
            self.metrics, input_size, n_nodes, derive_rng(rng, "behavior")
        )
        run_duration = float(duration) if duration is not None else behavior.duration
        if run_duration <= 0:
            raise ValueError(f"duration must be positive, got {run_duration}")

        signals_per_node: Dict[int, Dict[str, object]] = {}
        for node in range(n_nodes):
            node_signals: Dict[str, object] = {}
            for metric in self.metrics:
                mb = behavior.behaviors[(metric.name, node)]
                node_signals[metric.name] = make_signal(
                    mb,
                    noise=self.noise,
                    rng=derive_rng(rng, "signal", metric.name, node),
                )
            signals_per_node[node] = node_signals

        daemons = [
            LDMSDaemon(
                node,
                config=self.sampler_config,
                rng=derive_rng(rng, "daemon", node),
            )
            for node in range(n_nodes)
        ]
        aggregator = LDMSAggregator()
        telemetry = aggregator.collect_all(daemons, signals_per_node, run_duration)
        return ExecutionResult(
            app_name=app.name,
            input_size=input_size,
            n_nodes=n_nodes,
            duration=run_duration,
            telemetry=telemetry,
            execution_id=execution_id,
        )
