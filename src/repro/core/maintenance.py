"""Dictionary maintenance for long-lived deployments.

A production EFD accumulates fingerprints for months: applications get
recompiled (old fingerprints go stale), rare one-off jobs pollute the
key space, and multi-cluster sites want to federate dictionaries.  The
paper's mechanism makes all of this trivial — keys are self-describing
and values are label/count maps — but a real deployment still needs the
operations spelled out:

- :func:`evict_labels` / :func:`evict_apps` — forget applications or
  specific app_input pairs (retraining after a recompile).
- :func:`prune_rare_keys` — drop keys observed fewer than N times
  (one-off noise artifacts; §5's "measurement variation" keys with a
  single observation).
- :func:`cap_keys_per_app` — bound each application's key budget,
  keeping its most-repeated fingerprints.
- :func:`federate` — merge dictionaries from several clusters/partitions
  into one (counts add; first-seen order follows argument order).
- :func:`diff` — compare two dictionaries (keys added/removed/changed),
  for auditing dictionary drift between maintenance windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.dictionary import ExecutionFingerprintDictionary, app_of_label
from repro.core.fingerprint import Fingerprint


def _rebuild(
    source: ExecutionFingerprintDictionary,
    keep,
) -> ExecutionFingerprintDictionary:
    """Copy ``source`` keeping only (fingerprint, label) pairs where
    ``keep(fingerprint, label, count)`` is true; preserves order/counts."""
    out = ExecutionFingerprintDictionary()
    for label in source.labels():
        # Pre-register so first-seen label order (tie-breaking!) survives
        # even when a label's earliest key is dropped.
        out.register_label(label)
    for fp, _ in source.entries():
        for label, count in source.lookup_counts(fp).items():
            if keep(fp, label, count):
                for _ in range(count):
                    out.add(fp, label)
    return out


def evict_labels(
    efd: ExecutionFingerprintDictionary, labels: Iterable[str]
) -> ExecutionFingerprintDictionary:
    """Return a dictionary without the given ``app_input`` labels."""
    doomed = set(labels)
    if not doomed:
        raise ValueError("labels must be non-empty")
    out = ExecutionFingerprintDictionary()
    for fp, _ in efd.entries():
        for label, count in efd.lookup_counts(fp).items():
            if label not in doomed:
                for _ in range(count):
                    out.add(fp, label)
    return out


def evict_apps(
    efd: ExecutionFingerprintDictionary, apps: Iterable[str]
) -> ExecutionFingerprintDictionary:
    """Return a dictionary without any label of the given applications."""
    doomed = set(apps)
    if not doomed:
        raise ValueError("apps must be non-empty")
    victims = [l for l in efd.labels() if app_of_label(l) in doomed]
    if not victims:
        return evict_labels(efd, ["\x00no-such-label"])  # copy unchanged
    return evict_labels(efd, victims)


def prune_rare_keys(
    efd: ExecutionFingerprintDictionary, min_count: int = 2
) -> ExecutionFingerprintDictionary:
    """Drop (key, label) observations repeated fewer than ``min_count`` times.

    One-shot fingerprints are usually measurement-variation artifacts; a
    key that never repeated cannot help recognize a *repeated* execution.
    """
    if min_count < 1:
        raise ValueError(f"min_count must be >= 1, got {min_count}")
    return _rebuild(efd, lambda fp, label, count: count >= min_count)


def cap_keys_per_app(
    efd: ExecutionFingerprintDictionary, max_keys: int
) -> ExecutionFingerprintDictionary:
    """Bound each application's footprint to its ``max_keys`` strongest keys.

    Strength is total repetition count (ties: earlier insertion wins).
    Controls dictionary growth for applications with high measurement
    variation (the paper's miniAMR_Z case generalized).
    """
    if max_keys < 1:
        raise ValueError(f"max_keys must be >= 1, got {max_keys}")
    # Rank each app's keys by accumulated count.
    strength: Dict[str, List[Tuple[int, int, Fingerprint]]] = {}
    for order, (fp, _) in enumerate(efd.entries()):
        for label, count in efd.lookup_counts(fp).items():
            app = app_of_label(label)
            strength.setdefault(app, []).append((count, order, fp))
    allowed: Dict[str, Set[Fingerprint]] = {}
    for app, ranked in strength.items():
        # Aggregate per fingerprint (an app may reach a key via several
        # input labels).
        per_fp: Dict[Fingerprint, Tuple[int, int]] = {}
        for count, order, fp in ranked:
            total, first = per_fp.get(fp, (0, order))
            per_fp[fp] = (total + count, min(first, order))
        top = sorted(per_fp.items(), key=lambda kv: (-kv[1][0], kv[1][1]))
        allowed[app] = {fp for fp, _ in top[:max_keys]}
    return _rebuild(
        efd,
        lambda fp, label, count: fp in allowed.get(app_of_label(label), ()),
    )


def federate(
    dictionaries: Sequence[ExecutionFingerprintDictionary],
) -> ExecutionFingerprintDictionary:
    """Merge dictionaries from several clusters into one.

    Counts add up; first-seen orders follow the argument order, so the
    first cluster's learning history wins tie-breaks.
    """
    if not dictionaries:
        raise ValueError("need at least one dictionary to federate")
    out = ExecutionFingerprintDictionary()
    for efd in dictionaries:
        out.merge(efd)
    return out


@dataclass(frozen=True)
class DictionaryDiff:
    """Key-level difference between two dictionaries."""

    added: Tuple[Fingerprint, ...]      # in new, not in old
    removed: Tuple[Fingerprint, ...]    # in old, not in new
    relabeled: Tuple[Fingerprint, ...]  # in both, label sets differ

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.relabeled)

    def summary(self) -> str:
        return (
            f"+{len(self.added)} keys, -{len(self.removed)} keys, "
            f"~{len(self.relabeled)} relabeled"
        )


def diff(
    old: ExecutionFingerprintDictionary,
    new: ExecutionFingerprintDictionary,
) -> DictionaryDiff:
    """Audit how a dictionary changed between maintenance windows."""
    old_keys = {fp: set(labels) for fp, labels in old.entries()}
    new_keys = {fp: set(labels) for fp, labels in new.entries()}
    added = tuple(fp for fp in new_keys if fp not in old_keys)
    removed = tuple(fp for fp in old_keys if fp not in new_keys)
    relabeled = tuple(
        fp for fp in old_keys
        if fp in new_keys and old_keys[fp] != new_keys[fp]
    )
    return DictionaryDiff(added=added, removed=removed, relabeled=relabeled)
