"""Deviation detection against learned fingerprints (paper §1, use (b)).

    "If we ... recognize that a job executes a known application, we can
    ... (b) detect deviations from past resource usage (indicating
    anomalies and potential errors)."

Given an execution *claimed or recognized* to be application A, compare
its per-node interval means against A's stored fingerprints.  Distance
is measured in **bucket units** (multiples of the rounding bucket width
at the dictionary's depth), which normalizes across metrics of very
different magnitudes: a node sitting 0-1 buckets from a stored key is
business as usual; several buckets away means the job is not behaving
like past executions of A — degraded node, wrong input deck, or not A
at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.dictionary import ExecutionFingerprintDictionary, app_of_label
from repro.core.fingerprint import DEFAULT_INTERVAL
from repro.core.rounding import bucket_width
from repro.data.dataset import ExecutionRecord


@dataclass(frozen=True)
class NodeDeviation:
    """Deviation of one node from the application's stored fingerprints."""

    node: int
    observed_mean: float
    nearest_key: Optional[float]   # closest stored fingerprint value
    distance_buckets: float        # |observed - nearest| / bucket width

    @property
    def has_reference(self) -> bool:
        return self.nearest_key is not None


@dataclass(frozen=True)
class DeviationReport:
    """Whole-execution deviation verdict."""

    app: str
    metric: str
    interval: Tuple[float, float]
    nodes: Tuple[NodeDeviation, ...]
    threshold_buckets: float

    @property
    def max_distance(self) -> float:
        scored = [n.distance_buckets for n in self.nodes if n.has_reference]
        return max(scored) if scored else float("inf")

    @property
    def is_anomalous(self) -> bool:
        """True when any node strays beyond the threshold (or has no
        reference at all while others do)."""
        if not self.nodes:
            return True
        return self.max_distance > self.threshold_buckets

    def anomalous_nodes(self) -> List[int]:
        return [
            n.node
            for n in self.nodes
            if not n.has_reference or n.distance_buckets > self.threshold_buckets
        ]

    def __str__(self) -> str:
        status = "ANOMALOUS" if self.is_anomalous else "normal"
        return (
            f"DeviationReport(app={self.app}, {status}, "
            f"max={self.max_distance:.1f} buckets, "
            f"threshold={self.threshold_buckets:g})"
        )


class DeviationDetector:
    """Compares executions against one application's learned fingerprints."""

    def __init__(
        self,
        dictionary: ExecutionFingerprintDictionary,
        metric: str = "nr_mapped_vmstat",
        depth: int = 3,
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        threshold_buckets: float = 2.0,
    ):
        if len(dictionary) == 0:
            raise ValueError("cannot detect deviations against an empty dictionary")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if threshold_buckets <= 0:
            raise ValueError(
                f"threshold_buckets must be > 0, got {threshold_buckets}"
            )
        self.dictionary = dictionary
        self.metric = metric
        self.depth = int(depth)
        self.interval = (float(interval[0]), float(interval[1]))
        self.threshold_buckets = float(threshold_buckets)

    def _stored_values(self, app: str, node: int) -> List[float]:
        """Stored fingerprint values of ``app`` for logical ``node``."""
        values = []
        for fp, labels in self.dictionary.entries():
            if fp.metric != self.metric or fp.node != node:
                continue
            if fp.interval != self.interval:
                continue
            if any(app_of_label(label) == app for label in labels):
                values.append(fp.value)
        return values

    def check(self, record: ExecutionRecord, app: Optional[str] = None) -> DeviationReport:
        """Score ``record`` against ``app``'s fingerprints.

        ``app`` defaults to the record's own label — the common flow is
        "job claims to be A; does it behave like past A executions?".
        """
        target = app if app is not None else record.app_name
        known_apps = set(self.dictionary.app_names())
        if target not in known_apps:
            raise KeyError(
                f"application {target!r} has no fingerprints in the "
                f"dictionary; known: {sorted(known_apps)}"
            )
        start, end = self.interval
        nodes: List[NodeDeviation] = []
        for node in range(record.n_nodes):
            observed = record.interval_mean(self.metric, node, start, end)
            if observed != observed:  # NaN: no telemetry in window
                nodes.append(
                    NodeDeviation(node, float("nan"), None, float("inf"))
                )
                continue
            stored = self._stored_values(target, node)
            if not stored:
                nodes.append(NodeDeviation(node, observed, None, float("inf")))
                continue
            stored_arr = np.asarray(stored)
            nearest = float(stored_arr[np.argmin(np.abs(stored_arr - observed))])
            width = bucket_width(nearest if nearest != 0 else observed, self.depth)
            distance = abs(observed - nearest) / width if width > 0 else 0.0
            nodes.append(NodeDeviation(node, observed, nearest, float(distance)))
        return DeviationReport(
            app=target,
            metric=self.metric,
            interval=self.interval,
            nodes=tuple(nodes),
            threshold_buckets=self.threshold_buckets,
        )
