"""Multi-interval fingerprints and temporal alignment (paper §6).

    "The way application execution fingerprints are built allows the
    co-existence of fingerprints for different system metrics and time
    intervals within the same dictionary."

Two extensions live here:

- :class:`MultiIntervalRecognizer` — fingerprints several windows of the
  execution (e.g. [60:120], [120:180], [180:240]) into one dictionary;
  recognition votes across intervals × nodes.  More exclusive than a
  single window and the stepping stone to Shazam-style temporal
  fingerprinting.
- :func:`align_and_match` — recognition when the observation's clock
  offset relative to job start is *unknown* (e.g. monitoring attached
  mid-run): slide the window over candidate offsets and keep the
  best-supported vote, the temporal-alignment aspect of Shazam the paper
  leaves to future work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro._util.rng import RngLike
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint, build_fingerprints
from repro.core.matcher import MatchResult, match_fingerprints
from repro.core.recognizer import RecordsLike, _as_records
from repro.core.rounding import round_depth
from repro.core.tuning import DEFAULT_DEPTH_CANDIDATES, select_rounding_depth
from repro.data.dataset import ExecutionRecord


def default_intervals(
    n: int = 3, width: float = 60.0, start: float = 60.0
) -> List[Tuple[float, float]]:
    """``n`` consecutive windows of ``width`` seconds from ``start``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if width <= 0:
        raise ValueError(f"width must be > 0, got {width}")
    return [(start + i * width, start + (i + 1) * width) for i in range(n)]


class MultiIntervalRecognizer:
    """EFD whose keys span several time intervals of the execution."""

    def __init__(
        self,
        metric: str = "nr_mapped_vmstat",
        intervals: Optional[Sequence[Tuple[float, float]]] = None,
        depth: Optional[int] = None,
        depth_candidates: Sequence[int] = DEFAULT_DEPTH_CANDIDATES,
        tuning_folds: int = 3,
        seed: RngLike = 0,
        unknown_label: str = "unknown",
    ):
        self.metric = metric
        self.intervals = [
            (float(s), float(e)) for s, e in (intervals or default_intervals())
        ]
        for s, e in self.intervals:
            if e <= s:
                raise ValueError(f"interval end must exceed start, got [{s}:{e}]")
        if len(set(self.intervals)) != len(self.intervals):
            raise ValueError("intervals must be unique")
        self.depth = depth
        self.depth_candidates = tuple(depth_candidates)
        self.tuning_folds = tuning_folds
        self.seed = seed
        self.unknown_label = unknown_label

    def fit(self, data: RecordsLike) -> "MultiIntervalRecognizer":
        records = _as_records(data)
        if not records:
            raise ValueError("cannot fit on zero records")
        if self.depth is not None:
            self.depth_ = int(self.depth)
        else:
            # Tune on the first interval; the rounding rule is
            # significant-digit based, so one depth serves all windows.
            self.depth_ = select_rounding_depth(
                records,
                self.metric,
                candidates=self.depth_candidates,
                interval=self.intervals[0],
                k=min(self.tuning_folds, len(records)),
                seed=self.seed,
                unknown_label=self.unknown_label,
            )
        self.dictionary_ = ExecutionFingerprintDictionary()
        for record in records:
            for fp in self._fingerprints(record):
                if fp is not None:
                    self.dictionary_.add(fp, record.label)
        return self

    def _fingerprints(self, record: ExecutionRecord) -> List[Optional[Fingerprint]]:
        out: List[Optional[Fingerprint]] = []
        for interval in self.intervals:
            out.extend(
                build_fingerprints(record, self.metric, self.depth_, interval)
            )
        return out

    def predict_detail(self, record: ExecutionRecord) -> MatchResult:
        self._check_fitted()
        return match_fingerprints(self.dictionary_, self._fingerprints(record))

    def predict_one(self, record: ExecutionRecord) -> str:
        result = self.predict_detail(record)
        return result.prediction if result.prediction else self.unknown_label

    def predict(self, data: Union[ExecutionRecord, RecordsLike]):
        if isinstance(data, ExecutionRecord):
            return self.predict_one(data)
        return [self.predict_one(r) for r in _as_records(data)]

    def _check_fitted(self) -> None:
        if not hasattr(self, "dictionary_"):
            raise RuntimeError(
                "MultiIntervalRecognizer is not fitted; call fit() first"
            )


def align_and_match(
    efd: ExecutionFingerprintDictionary,
    record: ExecutionRecord,
    metric: str,
    depth: int,
    interval: Tuple[float, float],
    max_offset: float = 120.0,
    step: float = 10.0,
) -> Tuple[MatchResult, float]:
    """Recognize a record whose clock offset from job start is unknown.

    Slides the fingerprint window by candidate offsets in
    ``[0, max_offset]`` and returns the (result, offset) whose winning
    application collected the most votes — a minimal form of Shazam's
    temporal alignment.  Offsets are applied to the *observation* window
    while the key's interval stays the dictionary's nominal one (keys
    must line up to match at all).
    """
    if max_offset < 0:
        raise ValueError(f"max_offset must be >= 0, got {max_offset}")
    if step <= 0:
        raise ValueError(f"step must be > 0, got {step}")
    start, end = interval
    best: Optional[MatchResult] = None
    best_offset = 0.0
    offset = 0.0
    while offset <= max_offset + 1e-9:
        fingerprints: List[Optional[Fingerprint]] = []
        for node in range(record.n_nodes):
            mean = record.interval_mean(
                metric, node, start + offset, end + offset
            )
            if mean != mean:
                fingerprints.append(None)
                continue
            fingerprints.append(
                Fingerprint(
                    metric=metric,
                    node=node,
                    interval=(float(start), float(end)),
                    value=round_depth(mean, depth),
                )
            )
        result = match_fingerprints(efd, fingerprints)
        top_votes = result.votes.get(result.prediction, 0) if result.prediction else 0
        best_top = best.votes.get(best.prediction, 0) if best and best.prediction else -1
        if best is None or top_votes > best_top:
            best = result
            best_offset = offset
        offset += step
    assert best is not None  # loop runs at least once (offset 0)
    return best, best_offset
