"""Fingerprint matching and node voting (paper §3, Testing).

    "Fingerprints of each node are looked up in the dictionary, and the
    most matched application name is returned.  If multiple applications
    have the same number of matches (potentially caused by key
    collisions) the EFD cannot distinguish between them and will return
    an array of these application names."

Votes are counted at the application level (recognition is judged on the
application name; input size is carried along as detail).  Each node
fingerprint contributes one vote to every application present in the
matched key's label list.  Zero total matches means the execution is
unknown — the paper's built-in safeguard against unknown applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dictionary import ExecutionFingerprintDictionary, app_of_label
from repro.core.fingerprint import Fingerprint


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one execution against an EFD."""

    ranked: Tuple[str, ...]          # tied-or-winning application names
    votes: Dict[str, int]            # application -> matched node count
    matched_labels: Dict[str, int]   # app_input label -> match count
    n_fingerprints: int              # fingerprints looked up
    n_missing: int                   # nodes without a usable fingerprint

    @property
    def is_unknown(self) -> bool:
        """True when no fingerprint matched anything."""
        return len(self.ranked) == 0

    @property
    def prediction(self) -> Optional[str]:
        """First application of the returned array (evaluation rule)."""
        return self.ranked[0] if self.ranked else None

    @property
    def is_tie(self) -> bool:
        return len(self.ranked) > 1

    def confidence(self) -> float:
        """Fraction of usable fingerprints that voted for the winner."""
        if not self.ranked or self.n_fingerprints == 0:
            return 0.0
        return self.votes[self.ranked[0]] / self.n_fingerprints


def vote(
    lookups: Sequence[Sequence[str]],
    app_order: Optional[Sequence[str]] = None,
    position: Optional[Dict[str, int]] = None,
) -> Tuple[Tuple[str, ...], Dict[str, int]]:
    """Aggregate per-node label lookups into an application ranking.

    ``lookups[i]`` is the label list matched by node i's fingerprint.
    Returns ``(ranked_apps, votes)`` where ``ranked_apps`` contains every
    application with the maximal vote count, ordered by ``app_order``
    (first-seen order of the dictionary) — the paper's returned "array".

    ``position`` is an optional precomputed ``{app: rank}`` map
    equivalent to enumerating ``app_order`` — batch callers pass it once
    instead of rebuilding it per execution.
    """
    votes: Dict[str, int] = {}
    for labels in lookups:
        apps_this_node: Dict[str, None] = {}
        for label in labels:
            apps_this_node.setdefault(app_of_label(label), None)
        for app in apps_this_node:
            votes[app] = votes.get(app, 0) + 1
    if not votes:
        return (), {}
    top = max(votes.values())
    tied = [app for app, count in votes.items() if count == top]
    if position is None and app_order is not None:
        position = {app: i for i, app in enumerate(app_order)}
    if position is not None:
        n = len(position)
        tied.sort(key=lambda a: position.get(a, n))
    return tuple(tied), votes


def match_fingerprints(
    efd: ExecutionFingerprintDictionary,
    fingerprints: Sequence[Optional[Fingerprint]],
) -> MatchResult:
    """Look up an execution's node fingerprints and form the verdict."""
    lookups: List[List[str]] = []
    matched_labels: Dict[str, int] = {}
    n_missing = 0
    n_fingerprints = 0
    for fp in fingerprints:
        if fp is None:
            n_missing += 1
            continue
        n_fingerprints += 1
        labels = efd.lookup(fp)
        lookups.append(labels)
        for label in labels:
            matched_labels[label] = matched_labels.get(label, 0) + 1
    ranked, votes = vote(lookups, app_order=efd.app_names())
    return MatchResult(
        ranked=ranked,
        votes=votes,
        matched_labels=matched_labels,
        n_fingerprints=n_fingerprints,
        n_missing=n_missing,
    )
