"""Online (streaming) recognition.

MODA pipelines receive telemetry sample by sample; waiting for a post-hoc
pass over stored series would forfeit the EFD's low-latency advantage.
:class:`StreamingRecognizer` consumes per-node samples as they arrive,
maintains O(1) running interval sums, and emits a verdict the moment the
fingerprint interval [60 s, 120 s] has passed on every node — i.e. two
minutes into the job, while it is still running.

>>> session = streaming.open_session(n_nodes=4)      # doctest: +SKIP
>>> for t, node, value in live_feed:                 # doctest: +SKIP
...     session.ingest(node, t, value)
...     if session.ready:
...         print(session.verdict().prediction)
...         break
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import DEFAULT_INTERVAL, Fingerprint
from repro.core.matcher import MatchResult, match_fingerprints
from repro.core.rounding import round_depth


class StreamSession:
    """Running interval means for one job's nodes.

    Memory is O(nodes): only a sum, a count, and a high-water timestamp
    per node — never the raw series.  The life cycle is strictly
    ``ingest* -> ready -> verdict``:

    >>> session.ingest(node=0, timestamp=61.0, value=182000.0)  # doctest: +SKIP
    >>> session.ready                                           # doctest: +SKIP
    False

    Sessions are single-use: after :meth:`verdict` concludes one,
    further :meth:`ingest` calls raise.

    Parameters
    ----------
    dictionary:
        The learned EFD to match against — flat or
        :class:`~repro.engine.sharded.ShardedDictionary` (both expose
        the same lookup contract).
    metric / depth / interval:
        Fingerprint configuration: which telemetry metric is streamed,
        the rounding depth the dictionary was built with, and the
        ``[start, end)`` window in seconds since job start.
    n_nodes:
        Node count of the job; every node must pass the interval end
        before the session is :attr:`ready`.
    unknown_label:
        Returned by :meth:`prediction` when the verdict is empty.
    session_id:
        Optional caller-side identity (e.g. a scheduler job id).  Purely
        informational: it tags ``repr()`` and lets services such as
        :class:`repro.serve.IngestService` key error reports, but never
        affects matching.
    """

    def __init__(
        self,
        dictionary: ExecutionFingerprintDictionary,
        metric: str,
        depth: int,
        interval: Tuple[float, float],
        n_nodes: int,
        unknown_label: str = "unknown",
        session_id: Optional[str] = None,
    ):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        start, end = interval
        if end <= start:
            raise ValueError(f"interval end must exceed start, got {interval}")
        self.dictionary = dictionary
        self.metric = metric
        self.depth = int(depth)
        self.interval = (float(start), float(end))
        self.n_nodes = int(n_nodes)
        self.unknown_label = unknown_label
        self.session_id = session_id
        self.n_samples = 0
        # Plain lists, not numpy: the live path touches one scalar per
        # sample, and list indexing is several times cheaper than numpy
        # element access at that granularity.
        self._sums = [0.0] * self.n_nodes
        self._counts = [0] * self.n_nodes
        self._latest = [float("-inf")] * self.n_nodes
        self._n_past_end = 0  # nodes whose clock crossed the interval end
        self._verdict: Optional[MatchResult] = None

    # -- feeding ------------------------------------------------------------
    def ingest(self, node: int, timestamp: float, value: float) -> None:
        """Consume one sample (seconds since job start, metric value).

        O(1): updates the node's running sum/count when the timestamp
        falls inside the fingerprint interval; samples outside it only
        advance the node's clock (which is what eventually flips
        :attr:`ready`).  NaN values (sampler dropout) advance the clock
        but never the sum.  Raises :class:`ValueError` for a node rank
        outside ``[0, n_nodes)`` and :class:`RuntimeError` once the
        session has concluded.
        """
        if node < 0 or node >= self.n_nodes:
            raise ValueError(f"node {node} outside [0, {self.n_nodes})")
        if self._verdict is not None:
            raise RuntimeError("session already concluded; open a new one")
        start, end = self.interval
        latest = self._latest
        if timestamp > latest[node]:
            if latest[node] < end <= timestamp:
                self._n_past_end += 1
            latest[node] = timestamp
        self.n_samples += 1
        if value != value:  # NaN — dropped sample
            return
        if start <= timestamp < end:
            self._sums[node] += value
            self._counts[node] += 1

    def ingest_many(self, node: int, timestamps, values) -> None:
        """Vectorized :meth:`ingest` of one node's sample batch.

        Equivalent to calling :meth:`ingest` per ``(timestamp, value)``
        pair, in one NumPy pass — the fast path when replaying stored
        series into a session.
        """
        timestamps = np.asarray(timestamps, dtype=float)
        values = np.asarray(values, dtype=float)
        if timestamps.shape != values.shape:
            raise ValueError("timestamps and values must align")
        if node < 0 or node >= self.n_nodes:
            raise ValueError(f"node {node} outside [0, {self.n_nodes})")
        if self._verdict is not None:
            raise RuntimeError("session already concluded; open a new one")
        start, end = self.interval
        if timestamps.size:
            top = float(timestamps.max())
            if top > self._latest[node]:
                if self._latest[node] < end <= top:
                    self._n_past_end += 1
                self._latest[node] = top
        self.n_samples += int(timestamps.size)
        mask = (timestamps >= start) & (timestamps < end) & ~np.isnan(values)
        self._sums[node] += float(values[mask].sum())
        self._counts[node] += int(mask.sum())

    # -- state ----------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True when every node's clock has passed the interval end.

        Readiness is monotone (clocks only advance) and is what gates
        :meth:`verdict`; services poll it after each accepted sample —
        which is why it is an O(1) counter compare, not a scan.
        """
        return self._n_past_end == self.n_nodes

    @property
    def concluded(self) -> bool:
        """True once :meth:`verdict` has decided this session."""
        return self._verdict is not None

    def progress(self) -> float:
        """Fraction of nodes whose interval window has fully elapsed."""
        return self._n_past_end / self.n_nodes

    def fingerprints(self) -> List[Optional[Fingerprint]]:
        """Current fingerprints (None for nodes with zero valid samples)."""
        out: List[Optional[Fingerprint]] = []
        for node in range(self.n_nodes):
            if self._counts[node] == 0:
                out.append(None)
                continue
            mean = self._sums[node] / self._counts[node]
            out.append(
                Fingerprint(
                    metric=self.metric,
                    node=node,
                    interval=self.interval,
                    value=round_depth(mean, self.depth),
                )
            )
        return out

    # -- verdict -----------------------------------------------------------------
    def verdict(self, force: bool = False) -> MatchResult:
        """Match the accumulated fingerprints; concludes the session.

        Raises :class:`RuntimeError` unless the interval has elapsed on
        all nodes (:attr:`ready`) — pass ``force=True`` to decide early
        (e.g. the job ended, or a service is evicting the session).  The
        first verdict is cached and returned by every later call;
        batch resolvers
        (:meth:`~repro.engine.batch.BatchRecognizer.recognize_sessions`)
        compute the same result without concluding the session.
        """
        if self._verdict is not None:
            return self._verdict
        if not self.ready and not force:
            raise RuntimeError(
                f"interval {self.interval} not yet complete on all nodes "
                f"({self.progress():.0%}); pass force=True to decide early"
            )
        self._verdict = match_fingerprints(self.dictionary, self.fingerprints())
        return self._verdict

    def prediction(self, force: bool = False) -> str:
        """Application name of the verdict (``unknown_label`` if empty)."""
        result = self.verdict(force=force)
        return result.prediction if result.prediction else self.unknown_label

    def __repr__(self) -> str:
        ident = f"id={self.session_id!r}, " if self.session_id else ""
        return (
            f"StreamSession({ident}nodes={self.n_nodes}, "
            f"metric={self.metric!r}, progress={self.progress():.0%}, "
            f"concluded={self.concluded})"
        )


class StreamingRecognizer:
    """Factory for :class:`StreamSession` bound to one learned EFD.

    Holds the fingerprint configuration once so call sites opening
    thousands of sessions (one per arriving job) only say how many nodes
    the job has::

        streaming = StreamingRecognizer.from_recognizer(recognizer)
        session = streaming.open_session(n_nodes=8, session_id="j-1042")
    """

    def __init__(
        self,
        dictionary: ExecutionFingerprintDictionary,
        metric: str = "nr_mapped_vmstat",
        depth: int = 3,
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        unknown_label: str = "unknown",
    ):
        if len(dictionary) == 0:
            raise ValueError("cannot stream against an empty dictionary")
        self.dictionary = dictionary
        self.metric = metric
        self.depth = depth
        self.interval = interval
        self.unknown_label = unknown_label

    @classmethod
    def from_recognizer(cls, recognizer) -> "StreamingRecognizer":
        """Bind to a fitted :class:`~repro.core.recognizer.EFDRecognizer`."""
        recognizer._check_fitted()
        return cls(
            dictionary=recognizer.dictionary_,
            metric=recognizer.metric,
            depth=recognizer.depth_,
            interval=recognizer.interval,
            unknown_label=recognizer.unknown_label,
        )

    def open_session(
        self, n_nodes: int = 4, session_id: Optional[str] = None
    ) -> StreamSession:
        """Open a fresh session for one ``n_nodes``-node job."""
        return StreamSession(
            dictionary=self.dictionary,
            metric=self.metric,
            depth=self.depth,
            interval=self.interval,
            n_nodes=n_nodes,
            unknown_label=self.unknown_label,
            session_id=session_id,
        )
