"""Online (streaming) recognition.

MODA pipelines receive telemetry sample by sample; waiting for a post-hoc
pass over stored series would forfeit the EFD's low-latency advantage.
:class:`StreamingRecognizer` consumes per-node samples as they arrive,
maintains O(1) running interval sums, and emits a verdict the moment the
fingerprint interval [60 s, 120 s] has passed on every node — i.e. two
minutes into the job, while it is still running.

>>> session = streaming.open_session(n_nodes=4)      # doctest: +SKIP
>>> for t, node, value in live_feed:                 # doctest: +SKIP
...     session.ingest(node, t, value)
...     if session.ready:
...         print(session.verdict().prediction)
...         break
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import DEFAULT_INTERVAL, Fingerprint
from repro.core.matcher import MatchResult, match_fingerprints
from repro.core.rounding import round_depth


class StreamSession:
    """Running interval means for one job's nodes.

    Memory is O(nodes): only a sum, a count, and a high-water timestamp
    per node — never the raw series.
    """

    def __init__(
        self,
        dictionary: ExecutionFingerprintDictionary,
        metric: str,
        depth: int,
        interval: Tuple[float, float],
        n_nodes: int,
        unknown_label: str = "unknown",
    ):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        start, end = interval
        if end <= start:
            raise ValueError(f"interval end must exceed start, got {interval}")
        self.dictionary = dictionary
        self.metric = metric
        self.depth = int(depth)
        self.interval = (float(start), float(end))
        self.n_nodes = int(n_nodes)
        self.unknown_label = unknown_label
        self._sums = np.zeros(n_nodes)
        self._counts = np.zeros(n_nodes, dtype=int)
        self._latest = np.full(n_nodes, -np.inf)
        self._verdict: Optional[MatchResult] = None

    # -- feeding ------------------------------------------------------------
    def ingest(self, node: int, timestamp: float, value: float) -> None:
        """Consume one sample (seconds since job start, metric value).

        Samples outside the fingerprint interval only advance the node's
        clock; NaN samples (dropout) are skipped entirely.
        """
        if node < 0 or node >= self.n_nodes:
            raise ValueError(f"node {node} outside [0, {self.n_nodes})")
        if self._verdict is not None:
            raise RuntimeError("session already concluded; open a new one")
        if timestamp > self._latest[node]:
            self._latest[node] = timestamp
        if value != value:  # NaN — dropped sample
            return
        start, end = self.interval
        if start <= timestamp < end:
            self._sums[node] += value
            self._counts[node] += 1

    def ingest_many(self, node: int, timestamps, values) -> None:
        """Vectorized ingest of one node's sample batch."""
        timestamps = np.asarray(timestamps, dtype=float)
        values = np.asarray(values, dtype=float)
        if timestamps.shape != values.shape:
            raise ValueError("timestamps and values must align")
        if node < 0 or node >= self.n_nodes:
            raise ValueError(f"node {node} outside [0, {self.n_nodes})")
        if self._verdict is not None:
            raise RuntimeError("session already concluded; open a new one")
        if timestamps.size:
            self._latest[node] = max(self._latest[node], float(timestamps.max()))
        start, end = self.interval
        mask = (timestamps >= start) & (timestamps < end) & ~np.isnan(values)
        self._sums[node] += float(values[mask].sum())
        self._counts[node] += int(mask.sum())

    # -- state ----------------------------------------------------------------
    @property
    def ready(self) -> bool:
        """True when every node's clock has passed the interval end."""
        return bool((self._latest >= self.interval[1]).all())

    def progress(self) -> float:
        """Fraction of nodes whose interval window has fully elapsed."""
        return float((self._latest >= self.interval[1]).mean())

    def fingerprints(self) -> List[Optional[Fingerprint]]:
        """Current fingerprints (None for nodes with zero valid samples)."""
        out: List[Optional[Fingerprint]] = []
        for node in range(self.n_nodes):
            if self._counts[node] == 0:
                out.append(None)
                continue
            mean = self._sums[node] / self._counts[node]
            out.append(
                Fingerprint(
                    metric=self.metric,
                    node=node,
                    interval=self.interval,
                    value=round_depth(mean, self.depth),
                )
            )
        return out

    # -- verdict -----------------------------------------------------------------
    def verdict(self, force: bool = False) -> MatchResult:
        """Match the accumulated fingerprints; concludes the session.

        Raises unless the interval has elapsed on all nodes — pass
        ``force=True`` to decide early (e.g. the job ended prematurely).
        """
        if self._verdict is not None:
            return self._verdict
        if not self.ready and not force:
            raise RuntimeError(
                f"interval {self.interval} not yet complete on all nodes "
                f"({self.progress():.0%}); pass force=True to decide early"
            )
        self._verdict = match_fingerprints(self.dictionary, self.fingerprints())
        return self._verdict

    def prediction(self, force: bool = False) -> str:
        result = self.verdict(force=force)
        return result.prediction if result.prediction else self.unknown_label


class StreamingRecognizer:
    """Factory for :class:`StreamSession` bound to one learned EFD."""

    def __init__(
        self,
        dictionary: ExecutionFingerprintDictionary,
        metric: str = "nr_mapped_vmstat",
        depth: int = 3,
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        unknown_label: str = "unknown",
    ):
        if len(dictionary) == 0:
            raise ValueError("cannot stream against an empty dictionary")
        self.dictionary = dictionary
        self.metric = metric
        self.depth = depth
        self.interval = interval
        self.unknown_label = unknown_label

    @classmethod
    def from_recognizer(cls, recognizer) -> "StreamingRecognizer":
        """Bind to a fitted :class:`~repro.core.recognizer.EFDRecognizer`."""
        recognizer._check_fitted()
        return cls(
            dictionary=recognizer.dictionary_,
            metric=recognizer.metric,
            depth=recognizer.depth_,
            interval=recognizer.interval,
            unknown_label=recognizer.unknown_label,
        )

    def open_session(self, n_nodes: int = 4) -> StreamSession:
        return StreamSession(
            dictionary=self.dictionary,
            metric=self.metric,
            depth=self.depth,
            interval=self.interval,
            n_nodes=n_nodes,
            unknown_label=self.unknown_label,
        )
