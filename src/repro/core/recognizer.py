"""High-level EFD recognizer: the library's primary public API.

Wraps the dictionary, fingerprint construction, rounding-depth tuning,
and the voting matcher behind a scikit-learn-style ``fit``/``predict``
pair operating on :class:`~repro.data.dataset.ExecutionRecord` objects:

>>> from repro import EFDRecognizer, generate_dataset
>>> ds = generate_dataset(repetitions=4)              # doctest: +SKIP
>>> rec = EFDRecognizer().fit(ds)                     # doctest: +SKIP
>>> rec.predict(ds[0])                                # doctest: +SKIP
'ft'
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro._util.rng import RngLike
from repro.core.dictionary import DictionaryStats, ExecutionFingerprintDictionary
from repro.core.fingerprint import DEFAULT_INTERVAL, Fingerprint, build_fingerprints
from repro.core.matcher import MatchResult, match_fingerprints
from repro.core.tuning import DEFAULT_DEPTH_CANDIDATES, select_rounding_depth
from repro.data.dataset import ExecutionDataset, ExecutionRecord

RecordsLike = Union[ExecutionDataset, Sequence[ExecutionRecord]]


def _as_records(data: RecordsLike) -> List[ExecutionRecord]:
    if isinstance(data, ExecutionDataset):
        return list(data.records)
    return list(data)


class EFDRecognizer:
    """Execution-Fingerprint-Dictionary application recognizer.

    Parameters
    ----------
    metric:
        The single system metric to fingerprint (paper default:
        ``nr_mapped_vmstat``).
    interval:
        Fingerprint time window in seconds after execution start
        (paper default: ``(60, 120)``).
    depth:
        Rounding depth.  ``None`` (default) selects it by cross-fold
        validation within the training set at ``fit`` time — the paper's
        procedure.  An integer fixes it (Table 4 uses a fixed depth 2 for
        illustration).
    depth_candidates / tuning_folds / seed:
        Depth-selection knobs.
    unknown_label:
        Label returned for executions with zero matching fingerprints.
    """

    def __init__(
        self,
        metric: str = "nr_mapped_vmstat",
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        depth: Optional[int] = None,
        depth_candidates: Sequence[int] = DEFAULT_DEPTH_CANDIDATES,
        tuning_folds: int = 3,
        seed: RngLike = 0,
        unknown_label: str = "unknown",
    ):
        if not metric:
            raise ValueError("metric must be non-empty")
        start, end = interval
        if end <= start:
            raise ValueError(f"interval end must exceed start, got {interval}")
        if depth is not None and depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if tuning_folds < 2:
            raise ValueError(f"tuning_folds must be >= 2, got {tuning_folds}")
        self.metric = metric
        self.interval = (float(start), float(end))
        self.depth = depth
        self.depth_candidates = tuple(depth_candidates)
        self.tuning_folds = tuning_folds
        self.seed = seed
        self.unknown_label = unknown_label

    # -- learning ----------------------------------------------------------
    def fit(self, data: RecordsLike) -> "EFDRecognizer":
        """Learn the dictionary from labeled executions."""
        records = _as_records(data)
        if not records:
            raise ValueError("cannot fit on zero records")
        if self.depth is not None:
            self.depth_ = int(self.depth)
        else:
            self.depth_ = select_rounding_depth(
                records,
                self.metric,
                candidates=self.depth_candidates,
                interval=self.interval,
                k=min(self.tuning_folds, len(records)),
                seed=self.seed,
                unknown_label=self.unknown_label,
            )
        self.dictionary_ = ExecutionFingerprintDictionary()
        for record in records:
            self.dictionary_.add_many(self._fingerprints(record), record.label)
        return self

    def partial_fit(self, record: ExecutionRecord, label: Optional[str] = None) -> "EFDRecognizer":
        """Add one labeled execution to an already-fitted dictionary.

        "Learning new applications is as simple as adding new keys to the
        dictionary" (§6).  ``label`` defaults to the record's own label.
        """
        self._check_fitted()
        self.dictionary_.add_many(
            self._fingerprints(record), label if label is not None else record.label
        )
        return self

    # -- inference ------------------------------------------------------------
    def predict_detail(self, record: ExecutionRecord) -> MatchResult:
        """Full matching detail (votes, ties, matched labels) for one record."""
        self._check_fitted()
        return match_fingerprints(self.dictionary_, self._fingerprints(record))

    def predict_one(self, record: ExecutionRecord) -> str:
        """Application name for one record (first of the tie array)."""
        result = self.predict_detail(record)
        return result.prediction if result.prediction else self.unknown_label

    def predict(self, data: Union[ExecutionRecord, RecordsLike]) -> Union[str, List[str]]:
        """Predict one record (returns ``str``) or many (returns ``list``)."""
        if isinstance(data, ExecutionRecord):
            return self.predict_one(data)
        return [self.predict_one(r) for r in _as_records(data)]

    def score(self, data: RecordsLike, expected: Optional[Sequence[str]] = None) -> float:
        """Application-level accuracy against ``expected`` (or true labels)."""
        records = _as_records(data)
        if expected is None:
            expected = [r.app_name for r in records]
        if len(expected) != len(records):
            raise ValueError(
                f"{len(expected)} expected labels for {len(records)} records"
            )
        if not records:
            raise ValueError("cannot score zero records")
        hits = sum(
            1 for r, e in zip(records, expected) if self.predict_one(r) == e
        )
        return hits / len(records)

    # -- introspection -----------------------------------------------------------
    def stats(self) -> DictionaryStats:
        """Size/selectivity summary of the learned dictionary."""
        self._check_fitted()
        return self.dictionary_.stats()

    def _fingerprints(self, record: ExecutionRecord) -> List[Optional[Fingerprint]]:
        return build_fingerprints(record, self.metric, self.depth_, self.interval)

    def _check_fitted(self) -> None:
        if not hasattr(self, "dictionary_"):
            raise RuntimeError("EFDRecognizer is not fitted; call fit() first")

    def __repr__(self) -> str:
        fitted = hasattr(self, "dictionary_")
        depth = getattr(self, "depth_", self.depth)
        extra = f", keys={len(self.dictionary_)}" if fitted else " (unfitted)"
        return (
            f"EFDRecognizer(metric={self.metric!r}, interval={self.interval}, "
            f"depth={depth}{extra})"
        )
