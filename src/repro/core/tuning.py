"""Rounding-depth selection (paper §3, Pruning).

    "Rounding depth is the only tunable parameter in the EFD.  During
    the learning phase we find the optimal rounding depth through
    cross-fold validation within the training set."

Too little pruning (large depth) leaves precise fingerprints that never
repeat; too much pruning (depth 1) merges distinct applications.  The
selector fits a candidate-depth EFD on inner-fold training data, scores
macro-F on the inner validation fold, and returns the depth with the
best mean score (ties go to the *smaller* depth — more pruning, smaller
dictionary).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RngLike, derive_rng
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import DEFAULT_INTERVAL, build_fingerprints
from repro.core.matcher import match_fingerprints
from repro.data.dataset import ExecutionRecord
from repro.ml.metrics import f1_score

DEFAULT_DEPTH_CANDIDATES: Tuple[int, ...] = (1, 2, 3, 4, 5)


def _evaluate_depth(
    train_records: Sequence[ExecutionRecord],
    val_records: Sequence[ExecutionRecord],
    depth: int,
    metric: str,
    interval: Tuple[float, float],
    unknown_label: str,
) -> float:
    """Macro-F of a depth-``depth`` EFD trained/validated on the given sets."""
    efd = ExecutionFingerprintDictionary()
    for record in train_records:
        efd.add_many(build_fingerprints(record, metric, depth, interval), record.label)
    y_true: List[str] = []
    y_pred: List[str] = []
    for record in val_records:
        result = match_fingerprints(
            efd, build_fingerprints(record, metric, depth, interval)
        )
        y_true.append(record.app_name)
        y_pred.append(result.prediction if result.prediction else unknown_label)
    return f1_score(y_true, y_pred, average="macro")


def _inner_folds(
    records: Sequence[ExecutionRecord], k: int, rng: RngLike
) -> List[Tuple[List[int], List[int]]]:
    """Stratified (by app_input label) inner folds over record positions."""
    generator = derive_rng(rng, "tuning")
    by_label: Dict[str, List[int]] = {}
    for i, r in enumerate(records):
        by_label.setdefault(r.label, []).append(i)
    folds: List[List[int]] = [[] for _ in range(k)]
    offset = 0
    for label in sorted(by_label):
        idx = np.array(by_label[label])
        generator.shuffle(idx)
        for j, i in enumerate(idx):
            folds[(j + offset) % k].append(int(i))
        offset += len(idx) % k
    out = []
    for f in range(k):
        val = sorted(folds[f])
        val_set = set(val)
        train = [i for i in range(len(records)) if i not in val_set]
        if val and train:
            out.append((train, val))
    if not out:
        raise ValueError(
            f"cannot build inner folds from {len(records)} training records"
        )
    return out


def depth_scores(
    records: Sequence[ExecutionRecord],
    metric: str,
    candidates: Sequence[int] = DEFAULT_DEPTH_CANDIDATES,
    interval: Tuple[float, float] = DEFAULT_INTERVAL,
    k: int = 3,
    seed: RngLike = 0,
    unknown_label: str = "unknown",
) -> Dict[int, float]:
    """Mean inner-CV macro-F per candidate rounding depth."""
    if not candidates:
        raise ValueError("candidates must be non-empty")
    if len(records) < k:
        raise ValueError(f"need at least k={k} records, got {len(records)}")
    folds = _inner_folds(records, k, seed)
    scores: Dict[int, float] = {}
    for depth in candidates:
        fold_scores = []
        for train_idx, val_idx in folds:
            fold_scores.append(
                _evaluate_depth(
                    [records[i] for i in train_idx],
                    [records[i] for i in val_idx],
                    depth,
                    metric,
                    interval,
                    unknown_label,
                )
            )
        scores[int(depth)] = float(np.mean(fold_scores))
    return scores


def select_rounding_depth(
    records: Sequence[ExecutionRecord],
    metric: str,
    candidates: Sequence[int] = DEFAULT_DEPTH_CANDIDATES,
    interval: Tuple[float, float] = DEFAULT_INTERVAL,
    k: int = 3,
    seed: RngLike = 0,
    unknown_label: str = "unknown",
) -> int:
    """The optimal rounding depth for ``records`` (in-training CV)."""
    scores = depth_scores(
        records, metric, candidates, interval, k, seed, unknown_label
    )
    # Best score wins; ties go to the smaller depth (more pruning).
    best_depth = min(scores, key=lambda d: (-scores[d], d))
    return best_depth
