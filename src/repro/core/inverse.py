"""Dictionary-in-reverse resource-usage prediction (paper §6).

    "Populating the dictionary with different time intervals could
    enable resource usage prediction, by using the dictionary in
    reverse, namely by looking up applications to report potential
    future resource usage based on resource usage in the past."

Given a recognized application (typically recognized from the *first*
interval), :class:`UsagePredictor` reports the expected metric levels in
*later* intervals from the fingerprints past executions left behind —
repetition-count-weighted means with spread, per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dictionary import ExecutionFingerprintDictionary, app_of_label


@dataclass(frozen=True)
class UsageForecast:
    """Expected usage of one (metric, interval, node) for an application."""

    metric: str
    interval: Tuple[float, float]
    node: int
    expected: float     # repetition-weighted mean of stored key values
    low: float          # min stored key value
    high: float         # max stored key value
    observations: int   # total repetitions behind the estimate


class UsagePredictor:
    """Reverse lookup over an EFD populated with one or more intervals."""

    def __init__(self, dictionary: ExecutionFingerprintDictionary):
        if len(dictionary) == 0:
            raise ValueError("cannot build a predictor over an empty dictionary")
        self.dictionary = dictionary

    def known_applications(self) -> List[str]:
        return self.dictionary.app_names()

    def forecast(
        self,
        app: str,
        metric: Optional[str] = None,
        input_size: Optional[str] = None,
    ) -> List[UsageForecast]:
        """All usage forecasts for ``app`` (optionally one input size).

        Forecasts are grouped per (metric, interval, node) and sorted by
        interval start, then node — i.e. chronological expected usage.
        """
        if app not in self.dictionary.app_names():
            raise KeyError(
                f"application {app!r} not in dictionary; known: "
                f"{self.dictionary.app_names()}"
            )
        wanted_label = f"{app}_{input_size}" if input_size is not None else None
        # (metric, interval, node) -> list of (value, repetitions)
        groups: Dict[Tuple[str, Tuple[float, float], int], List[Tuple[float, int]]] = {}
        for fp, _ in self.dictionary.entries():
            if metric is not None and fp.metric != metric:
                continue
            counts = self.dictionary.lookup_counts(fp)
            reps = 0
            for label, count in counts.items():
                if wanted_label is not None:
                    if label == wanted_label:
                        reps += count
                elif app_of_label(label) == app:
                    reps += count
            if reps == 0:
                continue
            groups.setdefault((fp.metric, fp.interval, fp.node), []).append(
                (fp.value, reps)
            )
        out: List[UsageForecast] = []
        for (m, interval, node), observations in groups.items():
            values = np.array([v for v, _ in observations])
            weights = np.array([r for _, r in observations], dtype=float)
            expected = float(np.average(values, weights=weights))
            out.append(
                UsageForecast(
                    metric=m,
                    interval=interval,
                    node=node,
                    expected=expected,
                    low=float(values.min()),
                    high=float(values.max()),
                    observations=int(weights.sum()),
                )
            )
        out.sort(key=lambda f: (f.metric, f.interval[0], f.node))
        return out

    def forecast_profile(
        self, app: str, metric: str, node: int = 0
    ) -> List[Tuple[Tuple[float, float], float]]:
        """Chronological (interval, expected value) profile for one node."""
        return [
            (f.interval, f.expected)
            for f in self.forecast(app, metric=metric)
            if f.node == node
        ]
