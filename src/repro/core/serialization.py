"""JSON round-trip for dictionaries.

A production EFD is long-lived operational state — it accumulates
fingerprints across months of cluster operation — so it must survive
process restarts.  The format is plain JSON: human-inspectable,
diff-able, and dependency-free.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint

_FORMAT_VERSION = 1


def dictionary_to_json(efd: ExecutionFingerprintDictionary) -> str:
    """Serialize ``efd`` to a JSON string (insertion order preserved)."""
    entries = []
    for fp, _ in efd.entries():
        entries.append(
            {
                "metric": fp.metric,
                "node": fp.node,
                "interval": [fp.interval[0], fp.interval[1]],
                "value": fp.value,
                "labels": efd.lookup_counts(fp),
            }
        )
    return json.dumps(
        {
            "format_version": _FORMAT_VERSION,
            # Global first-seen label order drives tie-breaking ("return
            # the first application of the array"); per-entry label lists
            # alone cannot reconstruct it.
            "label_order": efd.labels(),
            "entries": entries,
        },
        indent=2,
    )


def dictionary_from_json(text: str) -> ExecutionFingerprintDictionary:
    """Rebuild a dictionary serialized by :func:`dictionary_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError("not an EFD JSON document (missing 'entries')")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported EFD format version {version!r} (expected {_FORMAT_VERSION})"
        )
    efd = ExecutionFingerprintDictionary()
    for label in payload.get("label_order", []):
        efd.register_label(label)
    for entry in payload["entries"]:
        fp = Fingerprint(
            metric=entry["metric"],
            node=int(entry["node"]),
            interval=(float(entry["interval"][0]), float(entry["interval"][1])),
            value=float(entry["value"]),
        )
        labels = entry["labels"]
        if not isinstance(labels, dict) or not labels:
            raise ValueError(f"entry for {fp} has no labels")
        for label, count in labels.items():
            if int(count) < 1:
                raise ValueError(f"label {label!r} has non-positive count {count}")
            efd.add_repeated(fp, label, int(count))
    return efd


def save_dictionary(efd: ExecutionFingerprintDictionary, path: str) -> None:
    """Write ``efd`` to ``path`` as JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dictionary_to_json(efd))


def load_dictionary(path: str) -> ExecutionFingerprintDictionary:
    """Load a dictionary written by :func:`save_dictionary`."""
    with open(path, "r", encoding="utf-8") as fh:
        return dictionary_from_json(fh.read())
