"""JSON and columnar round-trips for dictionaries.

A production EFD is long-lived operational state — it accumulates
fingerprints across months of cluster operation — so it must survive
process restarts.  Two codecs share this module:

- **JSON** (:func:`dictionary_to_json` / :func:`dictionary_from_json`):
  human-inspectable, diff-able, dependency-free — the reference format.
- **Columns** (:func:`dictionary_to_columns` /
  :func:`dictionary_from_columns`): one flat EFD as parallel NumPy
  arrays — node ids, rounded values, interned metric/interval ids, and
  CSR-style offsets into a label-id column with repetition counts.
  This is the per-shard payload of the engine's shard codecs — the
  compressed ``.npz`` archival layout and the raw memory-mapped
  ``.mmap`` serving layout (:mod:`repro.engine.columnar` /
  :mod:`repro.engine.mmapstore`); string tables are interned by the
  caller so label ids stay globally consistent across shards.
  :data:`COLUMN_DTYPES` and :func:`column_lengths` pin the wire schema
  both shard codecs share.

Both codecs are lossless: keys, per-key label lists (first-seen order),
repetition counts, and the dictionary's own label registration order
round-trip exactly.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import Fingerprint

_FORMAT_VERSION = 1

#: Parallel arrays of the columnar codec, all mandatory.
COLUMN_NAMES = (
    "node",          # int64[n_keys]      fingerprint node ids
    "value",         # float64[n_keys]    rounded interval means (raw bits)
    "metric_id",     # int64[n_keys]      index into the metric table
    "interval_id",   # int64[n_keys]      index into the interval table
    "label_offsets", # int64[n_keys + 1]  CSR offsets into label_ids/counts
    "label_ids",     # int64[total]       per-key labels, first-seen order
    "label_counts",  # int64[total]       repetition count per label entry
    "label_order",   # int64[n_labels]    this EFD's label registration order
)

#: Canonical little-endian element type per column — the wire dtype of
#: the raw mmap shard layout, and what every reader upcasts/views to.
COLUMN_DTYPES: Dict[str, str] = {
    "node": "<i8",
    "value": "<f8",
    "metric_id": "<i8",
    "interval_id": "<i8",
    "label_offsets": "<i8",
    "label_ids": "<i8",
    "label_counts": "<i8",
    "label_order": "<i8",
}


def column_lengths(
    n_keys: int, n_label_entries: int, n_label_order: int
) -> Dict[str, int]:
    """Element count per column, derived from the three shard scalars.

    Every column's length is a pure function of ``(n_keys,
    n_label_entries, n_label_order)`` — which is what lets the mmap
    shard layout store three scalars in its header instead of a
    per-column table, and lets readers detect truncation by size alone.
    """
    return {
        "node": n_keys,
        "value": n_keys,
        "metric_id": n_keys,
        "interval_id": n_keys,
        "label_offsets": n_keys + 1,
        "label_ids": n_label_entries,
        "label_counts": n_label_entries,
        "label_order": n_label_order,
    }


def fingerprint_to_record(fp: Fingerprint) -> Dict[str, object]:
    """One fingerprint key as a JSON-ready mapping.

    The shared key encoding of the JSON shard codec and the engine's
    mutation delta-log (:mod:`repro.engine.deltalog`): metric, node,
    interval endpoints, and the raw float value, coerced to canonical
    Python types so numpy-typed fingerprints serialize like their plain
    equals.
    """
    return {
        "metric": str(fp.metric),
        "node": int(fp.node),
        "interval": [float(fp.interval[0]), float(fp.interval[1])],
        "value": float(fp.value),
    }


def fingerprint_from_record(record: Dict[str, object]) -> Fingerprint:
    """Rebuild a fingerprint key from :func:`fingerprint_to_record`.

    Raises the underlying :class:`KeyError` / :class:`TypeError` /
    :class:`ValueError` on a malformed record — callers wrap these with
    the offending file/line context.
    """
    interval = record["interval"]
    return Fingerprint(
        metric=str(record["metric"]),
        node=int(record["node"]),
        interval=(float(interval[0]), float(interval[1])),
        value=float(record["value"]),
    )


def dictionary_to_json(efd: ExecutionFingerprintDictionary) -> str:
    """Serialize ``efd`` to a JSON string (insertion order preserved)."""
    entries = []
    for fp, _ in efd.entries():
        record = fingerprint_to_record(fp)
        record["labels"] = efd.lookup_counts(fp)
        entries.append(record)
    return json.dumps(
        {
            "format_version": _FORMAT_VERSION,
            # Global first-seen label order drives tie-breaking ("return
            # the first application of the array"); per-entry label lists
            # alone cannot reconstruct it.
            "label_order": efd.labels(),
            "entries": entries,
        },
        indent=2,
    )


def dictionary_from_json(text: str) -> ExecutionFingerprintDictionary:
    """Rebuild a dictionary serialized by :func:`dictionary_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError("not an EFD JSON document (missing 'entries')")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported EFD format version {version!r} (expected {_FORMAT_VERSION})"
        )
    efd = ExecutionFingerprintDictionary()
    for label in payload.get("label_order", []):
        efd.register_label(label)
    for entry in payload["entries"]:
        try:
            fp = fingerprint_from_record(entry)
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ValueError(f"malformed entry: {exc}") from exc
        labels = entry["labels"]
        if not isinstance(labels, dict) or not labels:
            raise ValueError(f"entry for {fp} has no labels")
        for label, count in labels.items():
            if int(count) < 1:
                raise ValueError(f"label {label!r} has non-positive count {count}")
            efd.add_repeated(fp, label, int(count))
    return efd


def _intern(table: Dict, key) -> int:
    """Id of ``key`` in ``table``, appending it on first sight."""
    found = table.get(key)
    if found is None:
        found = len(table)
        table[key] = found
    return found


def dictionary_to_columns(
    efd: ExecutionFingerprintDictionary,
    label_index: Dict[str, int],
    metric_index: Dict[str, int],
    interval_index: Dict[Tuple[float, float], int],
) -> Dict[str, np.ndarray]:
    """Encode one flat EFD as the parallel arrays of :data:`COLUMN_NAMES`.

    The three ``*_index`` maps intern strings/intervals to ids and are
    extended **in place** in first-seen order, so a caller encoding many
    shards against shared maps gets globally consistent ids (the engine's
    columnar shard codec does exactly this).  Interval keys are
    normalized with ``+ 0.0`` so a ``-0.0`` endpoint interns like
    ``0.0`` — matching :class:`Fingerprint` equality.

    Values are stored as raw float64 bits, so ``-0.0`` keys and
    subnormals round-trip exactly.
    """
    n = len(efd)
    node = np.empty(n, dtype=np.int64)
    value = np.empty(n, dtype=np.float64)
    metric_id = np.empty(n, dtype=np.int64)
    interval_id = np.empty(n, dtype=np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    label_ids: List[int] = []
    label_counts: List[int] = []
    for i, (fp, labels) in enumerate(efd._store.items()):
        node[i] = fp.node
        value[i] = fp.value
        metric_id[i] = _intern(metric_index, str(fp.metric))
        start, end = fp.interval
        interval_id[i] = _intern(
            interval_index, (float(start) + 0.0, float(end) + 0.0)
        )
        for label, count in labels.items():
            if count < 1:
                raise ValueError(
                    f"label {label!r} has non-positive count {count}"
                )
            if count >= 1 << 63:
                raise ValueError(
                    f"label {label!r} count {count} exceeds the codec's "
                    f"int64 range"
                )
            label_ids.append(_intern(label_index, label))
            label_counts.append(count)
        offsets[i + 1] = len(label_ids)
    label_order = np.array(
        [_intern(label_index, label) for label in efd.labels()],
        dtype=np.int64,
    )
    return {
        "node": node,
        "value": value,
        "metric_id": metric_id,
        "interval_id": interval_id,
        "label_offsets": offsets,
        "label_ids": np.array(label_ids, dtype=np.int64),
        "label_counts": np.array(label_counts, dtype=np.int64),
        "label_order": label_order,
    }


def dictionary_from_columns(
    columns: Dict[str, np.ndarray],
    label_table: List[str],
    metric_table: List[str],
    interval_table: List[Tuple[float, float]],
) -> ExecutionFingerprintDictionary:
    """Rebuild a flat EFD from :func:`dictionary_to_columns` output.

    Validates the columnar invariants (all columns present, CSR offsets
    monotone, ids inside their tables, counts positive, at least one
    label per key) and raises :class:`ValueError` on any violation — the
    engine wraps these with the offending shard's file name.
    """
    for name in COLUMN_NAMES:
        if name not in columns:
            raise ValueError(f"missing column {name!r}")
    node = np.asarray(columns["node"], dtype=np.int64)
    value = np.asarray(columns["value"], dtype=np.float64)
    metric_id = np.asarray(columns["metric_id"], dtype=np.int64)
    interval_id = np.asarray(columns["interval_id"], dtype=np.int64)
    offsets = np.asarray(columns["label_offsets"], dtype=np.int64)
    label_ids = np.asarray(columns["label_ids"], dtype=np.int64)
    label_counts = np.asarray(columns["label_counts"], dtype=np.int64)
    label_order = np.asarray(columns["label_order"], dtype=np.int64)
    n = len(node)
    if not (
        len(value) == len(metric_id) == len(interval_id) == n
        and len(offsets) == n + 1
        and len(label_ids) == len(label_counts)
    ):
        raise ValueError("column lengths are inconsistent")
    if n and (offsets[0] != 0 or offsets[-1] != len(label_ids)):
        raise ValueError("label_offsets do not span the label columns")
    if np.any(np.diff(offsets) < 1):
        raise ValueError("a key has no labels (offsets not increasing)")
    if len(label_ids) and (
        label_ids.min() < 0 or label_ids.max() >= len(label_table)
    ):
        raise ValueError("label id outside the label table")
    if np.any(label_counts < 1):
        raise ValueError("non-positive repetition count")
    if n:
        if metric_id.min() < 0 or metric_id.max() >= len(metric_table):
            raise ValueError("metric id outside the metric table")
        if interval_id.min() < 0 or interval_id.max() >= len(interval_table):
            raise ValueError("interval id outside the interval table")
        if node.min() < 0:
            raise ValueError("negative node id")
        if np.any(value != value):
            raise ValueError("NaN fingerprint value")
    if len(label_order) and (
        label_order.min() < 0 or label_order.max() >= len(label_table)
    ):
        raise ValueError("label_order id outside the label table")
    efd = ExecutionFingerprintDictionary()
    for lid in label_order:
        efd.register_label(label_table[lid])
    for i in range(n):
        start, end = interval_table[interval_id[i]]
        fp = Fingerprint(
            metric=metric_table[metric_id[i]],
            node=int(node[i]),
            interval=(float(start), float(end)),
            value=float(value[i]),
        )
        for j in range(offsets[i], offsets[i + 1]):
            efd.add_repeated(
                fp, label_table[label_ids[j]], int(label_counts[j])
            )
    return efd


def save_dictionary(efd: ExecutionFingerprintDictionary, path: str) -> None:
    """Write ``efd`` to ``path`` as JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dictionary_to_json(efd))


def load_dictionary(path: str) -> ExecutionFingerprintDictionary:
    """Load a dictionary written by :func:`save_dictionary`."""
    with open(path, "r", encoding="utf-8") as fh:
        return dictionary_from_json(fh.read())
