"""The Execution Fingerprint Dictionary (EFD) — the paper's contribution.

Learning stores key-value pairs mapping *execution fingerprints* (metric
name, node id, time interval, rounded interval mean) to application +
input-size labels; testing looks up the fingerprints of an unlabeled
execution and returns the most-matched application.  Rounding depth — the
position of the significant digit the mean is rounded to — is the only
tunable parameter and is selected by cross-validation inside the
training set.

Modules
-------
- :mod:`repro.core.rounding` — the rounding-depth mechanism (Table 1).
- :mod:`repro.core.fingerprint` — fingerprint keys and construction.
- :mod:`repro.core.dictionary` — the key-value store itself (Table 4).
- :mod:`repro.core.matcher` — lookup, node voting, ties, unknowns.
- :mod:`repro.core.tuning` — rounding-depth selection via in-training CV.
- :mod:`repro.core.recognizer` — the high-level fit/predict API.
- :mod:`repro.core.multimetric` / :mod:`repro.core.temporal` — the
  paper's future-work extensions (combinatorial and multi-interval
  fingerprints).
- :mod:`repro.core.inverse` — dictionary-in-reverse resource-usage
  prediction (§6).
- :mod:`repro.core.serialization` — JSON round-trip.
"""

from repro.core.rounding import round_depth, round_depth_array, bucket_width
from repro.core.fingerprint import Fingerprint, build_fingerprints, DEFAULT_INTERVAL
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.matcher import MatchResult, match_fingerprints, vote
from repro.core.tuning import select_rounding_depth, depth_scores
from repro.core.recognizer import EFDRecognizer
from repro.core.multimetric import MultiMetricRecognizer
from repro.core.temporal import MultiIntervalRecognizer, align_and_match
from repro.core.inverse import UsagePredictor
from repro.core.streaming import StreamingRecognizer, StreamSession
from repro.core.anomaly import DeviationDetector, DeviationReport, NodeDeviation
from repro.core.maintenance import (
    cap_keys_per_app,
    diff,
    evict_apps,
    evict_labels,
    federate,
    prune_rare_keys,
)
from repro.core.serialization import dictionary_to_json, dictionary_from_json

__all__ = [
    "round_depth",
    "round_depth_array",
    "bucket_width",
    "Fingerprint",
    "build_fingerprints",
    "DEFAULT_INTERVAL",
    "ExecutionFingerprintDictionary",
    "MatchResult",
    "match_fingerprints",
    "vote",
    "select_rounding_depth",
    "depth_scores",
    "EFDRecognizer",
    "MultiMetricRecognizer",
    "MultiIntervalRecognizer",
    "align_and_match",
    "UsagePredictor",
    "StreamingRecognizer",
    "StreamSession",
    "DeviationDetector",
    "DeviationReport",
    "NodeDeviation",
    "evict_labels",
    "evict_apps",
    "prune_rare_keys",
    "cap_keys_per_app",
    "federate",
    "diff",
    "dictionary_to_json",
    "dictionary_from_json",
]
