"""The rounding-depth mechanism (paper §3, Table 1).

    "Rounding depth defines the position of a non-zero digit, counting
    from the left, to which we will round."

The crucial property is that a measurement's rounding is decided *before
seeing it* — the depth refers to significant digits, not absolute
decimal places, so the same rule applies across metrics whose magnitudes
differ by orders of magnitude.  Reproduces Table 1 exactly:

    value     depth 1   depth 2   depth 3   depth 4
    1358.0    1000.0    1400.0    1360.0    1358.0
    5.28      5.0       5.3       5.28      5.28
    0.038     0.04      0.038     0.038     0.038
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np


def _check_depth(depth: int) -> None:
    """Shared depth validation: raises before *any* coercion work, with
    identical error text on the scalar and the vectorized path — callers
    (and the cascade's coarse/fine depth pair) rely on catching one
    message."""
    if depth < 1:
        raise ValueError(f"rounding depth must be >= 1, got {depth}")


#: Largest ``k`` for which ``10.0 ** k`` is a finite double.  Scaling a
#: subnormal up to the units position needs shifts beyond this (down to
#: ``5e-324`` the shift reaches ``depth + 323``), so those are applied
#: in two finite steps instead of overflowing to ``inf``.
_MAX_POW10 = 308

#: Depth at which rounding any double is the identity: the quantum
#: ``10**(magnitude - depth + 1)`` is then at least ~200x below half an
#: ulp, so the nearest double to the rounded real value is the input
#: itself.  Short-circuiting here also keeps the scaled magnitude
#: (``< 10**depth``) comfortably finite on both paths.
_IDENTITY_DEPTH = 19


def round_depth(value: float, depth: int) -> float:
    """Round ``value`` to ``depth`` significant digits.

    Depth 1 keeps only the left-most non-zero digit's position; larger
    depths keep more.  Zero rounds to zero at every depth; NaN and
    infinities propagate (a missing or saturated interval mean must not
    silently become a fingerprint).
    """
    _check_depth(depth)
    if value != value:  # NaN
        return float("nan")
    if value == 0.0:
        return 0.0
    if math.isinf(value):
        return value
    if depth >= _IDENTITY_DEPTH:
        return value
    magnitude = math.floor(math.log10(abs(value)))
    # Scale so the target digit sits at the units position, round to the
    # nearest integer (ties to even, as NumPy does), and scale back.
    # Dividing by a positive power of ten on the way back keeps large
    # magnitudes exact (10**k is exact for k >= 0; 10**-k is not).  The
    # vectorized path applies _round_at_shift per shift group so both
    # paths share the exact same power-of-ten constants and operation
    # order — ``10.0 ** k`` and ``np.power(10.0, k)`` differ by an ulp
    # at large ``k``, enough to break bit-for-bit agreement.
    return _round_at_shift(value, depth - 1 - magnitude, round)


def _round_at_shift(value, shift: int, round_fn):
    """Round ``value`` (scalar or ndarray) at an integral decimal shift.

    With ``depth < _IDENTITY_DEPTH`` the shift is bounded to
    ``[-291, 341]`` and the scaled magnitude to ``< 10**18``, so the
    only possible overflow is a value legitimately rounding up past the
    largest double (to ``inf``) on the way back down.
    """
    if shift >= 0:
        if shift > _MAX_POW10:
            lo = 10.0 ** _MAX_POW10
            hi = 10.0 ** (shift - _MAX_POW10)
            return round_fn(value * lo * hi) / hi / lo
        scale = 10.0 ** shift
        return round_fn(value * scale) / scale
    # shift >= depth - 1 - 308 here, so 10.0 ** (-shift) never overflows.
    scale = 10.0 ** (-shift)
    return round_fn(value / scale) * scale


def round_depth_array(values, depth: int) -> np.ndarray:
    """Vectorized :func:`round_depth` over an array.

    Agrees with the scalar path bit-for-bit on every input (NaN results
    are canonicalized the same way the scalar path's ``float("nan")``
    is) — a property-tested contract, see ``tests/test_family_cascade``.
    """
    _check_depth(depth)
    values = np.asarray(values, dtype=float)
    out = np.array(values, dtype=float, copy=True)
    out[values == 0.0] = 0.0  # scalar path maps -0.0 to +0.0 too
    out[np.isnan(values)] = float("nan")  # canonical NaN, like the scalar
    if depth >= _IDENTITY_DEPTH:
        return out
    finite = np.isfinite(values) & (values != 0.0)
    if not finite.any():
        return out
    v = values[finite]
    magnitude = np.floor(np.log10(np.abs(v)))
    shift = (depth - 1 - magnitude).astype(np.int64)
    rounded = np.empty_like(v)
    # Group by shift so each group scales by the same Python-float
    # power of ten the scalar path would use.  Telemetry arrays span a
    # handful of decades, so the group count stays tiny.
    # Rounding the very top of the double range up past the largest
    # representable value overflows to inf on both paths; the scalar one
    # does so silently, so suppress NumPy's warning for the same case.
    with np.errstate(over="ignore"):
        for s in np.unique(shift):
            group = shift == s
            rounded[group] = _round_at_shift(v[group], int(s), np.round)
    out[finite] = rounded
    return out


def bucket_width(value: float, depth: int) -> float:
    """Width of the rounding bucket ``value`` falls into at ``depth``.

    Useful for reasoning about pruning: fingerprints within half a bucket
    of each other collapse onto the same key.
    """
    _check_depth(depth)
    if value == 0.0 or value != value:
        return 0.0
    magnitude = math.floor(math.log10(abs(value)))
    return 10.0 ** (magnitude - depth + 1)


def significant_digits(value: float) -> int:
    """Number of significant digits in ``value``'s shortest decimal form.

    Table 1 marks depths beyond a value's precision with "-": rounding at
    or past this depth leaves the value unchanged.
    """
    if value == 0.0:
        return 1
    if value != value or math.isinf(value):
        raise ValueError(f"value must be finite, got {value}")
    text = np.format_float_positional(abs(value), trim="-")
    digits = text.replace(".", "").lstrip("0")
    digits = digits.rstrip("0") or "0"
    return max(len(digits), 1)
