"""The rounding-depth mechanism (paper §3, Table 1).

    "Rounding depth defines the position of a non-zero digit, counting
    from the left, to which we will round."

The crucial property is that a measurement's rounding is decided *before
seeing it* — the depth refers to significant digits, not absolute
decimal places, so the same rule applies across metrics whose magnitudes
differ by orders of magnitude.  Reproduces Table 1 exactly:

    value     depth 1   depth 2   depth 3   depth 4
    1358.0    1000.0    1400.0    1360.0    1358.0
    5.28      5.0       5.3       5.28      5.28
    0.038     0.04      0.038     0.038     0.038
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np


def round_depth(value: float, depth: int) -> float:
    """Round ``value`` to ``depth`` significant digits.

    Depth 1 keeps only the left-most non-zero digit's position; larger
    depths keep more.  Zero rounds to zero at every depth; NaN propagates
    (a missing interval mean must not silently become a fingerprint).
    """
    if depth < 1:
        raise ValueError(f"rounding depth must be >= 1, got {depth}")
    if value != value:  # NaN
        return float("nan")
    if value == 0.0:
        return 0.0
    magnitude = math.floor(math.log10(abs(value)))
    shift = depth - 1 - magnitude
    # Scale so the target digit sits at the units position, round to the
    # nearest integer (ties to even, as NumPy does), and scale back.
    # Dividing by a positive power of ten on the way back keeps large
    # magnitudes exact (10**k is exact for k >= 0; 10**-k is not).
    if shift >= 0:
        scale = 10.0 ** shift
        return round(value * scale) / scale
    scale = 10.0 ** (-shift)
    return round(value / scale) * scale


def round_depth_array(values, depth: int) -> np.ndarray:
    """Vectorized :func:`round_depth` over an array."""
    if depth < 1:
        raise ValueError(f"rounding depth must be >= 1, got {depth}")
    values = np.asarray(values, dtype=float)
    out = np.array(values, dtype=float, copy=True)
    out[values == 0.0] = 0.0  # scalar path maps -0.0 to +0.0 too
    finite = np.isfinite(values) & (values != 0.0)
    if not finite.any():
        return out
    v = values[finite]
    magnitude = np.floor(np.log10(np.abs(v)))
    shift = depth - 1 - magnitude
    # Mirror the scalar path exactly: multiply for non-negative shifts,
    # divide for negative ones, so both functions agree bit-for-bit.
    up = np.power(10.0, np.maximum(shift, 0.0))
    down = np.power(10.0, np.maximum(-shift, 0.0))
    out[finite] = np.round(v * up / down) / up * down
    return out


def bucket_width(value: float, depth: int) -> float:
    """Width of the rounding bucket ``value`` falls into at ``depth``.

    Useful for reasoning about pruning: fingerprints within half a bucket
    of each other collapse onto the same key.
    """
    if depth < 1:
        raise ValueError(f"rounding depth must be >= 1, got {depth}")
    if value == 0.0 or value != value:
        return 0.0
    magnitude = math.floor(math.log10(abs(value)))
    return 10.0 ** (magnitude - depth + 1)


def significant_digits(value: float) -> int:
    """Number of significant digits in ``value``'s shortest decimal form.

    Table 1 marks depths beyond a value's precision with "-": rounding at
    or past this depth leaves the value unchanged.
    """
    if value == 0.0:
        return 1
    if value != value or math.isinf(value):
        raise ValueError(f"value must be finite, got {value}")
    text = np.format_float_positional(abs(value), trim="-")
    digits = text.replace(".", "").lstrip("0")
    digits = digits.rstrip("0") or "0"
    return max(len(digits), 1)
