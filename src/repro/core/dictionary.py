"""The Execution Fingerprint Dictionary store (paper §3, Table 4).

A mapping from :class:`~repro.core.fingerprint.Fingerprint` keys to
application + input-size labels.  Three properties matter:

- **Keys are unique**; rounding ("pruning") collapses similar
  measurements onto one key, which is what keeps the dictionary small.
- **Values preserve first-seen order** and repetition counts.  The paper
  returns an *array* of application names on ties and evaluates the
  first entry; first-seen order makes that deterministic and
  reproducible (Table 4 lists "sp X, ..., bt X" — the insertion order of
  the learning phase).
- **Lookups are O(1)** — "a straightforward mechanism of recognition";
  no distance computations at test time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.fingerprint import Fingerprint


@dataclass(frozen=True)
class DictionaryStats:
    """Size/selectivity summary of an EFD."""

    n_keys: int
    n_insertions: int
    n_labels: int
    n_colliding_keys: int  # keys whose labels span >1 application
    max_labels_per_key: int

    @property
    def pruning_ratio(self) -> float:
        """Fraction of insertions absorbed by existing keys."""
        if self.n_insertions == 0:
            return 0.0
        return 1.0 - self.n_keys / self.n_insertions


@lru_cache(maxsize=65536)
def app_of_label(label: str) -> str:
    """Application name of an ``app_input`` label (input is the suffix).

    Memoized: the distinct label population is tiny (apps x inputs) but
    this function sits on every hot path that touches labels — ``stats``,
    ``collisions``, lookup-index construction, and ``vote`` tie-breaking
    all re-derive the same splits on every call.  The cache is bounded so
    a hostile label stream cannot grow it without limit.
    """
    if "_" not in label:
        return label
    return label.rsplit("_", 1)[0]


class ExecutionFingerprintDictionary:
    """Key-value store of execution fingerprints."""

    def __init__(self) -> None:
        # fingerprint -> {label: repetition count}, both insertion-ordered.
        self._store: Dict[Fingerprint, Dict[str, int]] = {}
        self._insertions = 0
        # First-seen orders, maintained incrementally so that lookups and
        # tie-breaking stay O(1) in the dictionary size.
        self._label_order: Dict[str, None] = {}
        self._app_order: Dict[str, None] = {}
        # Mutation counter: lets caches (e.g. the batch engine's lookup
        # index) detect staleness without content comparison.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic counter, bumped on every mutation."""
        return self._version

    # -- writing -----------------------------------------------------------
    def add(self, fingerprint: Fingerprint, label: str) -> None:
        """Insert one (fingerprint, label) observation."""
        if not label:
            raise ValueError("label must be non-empty")
        labels = self._store.setdefault(fingerprint, {})
        labels[label] = labels.get(label, 0) + 1
        self._insertions += 1
        self._version += 1
        self.register_label(label)

    def add_repeated(self, fingerprint: Fingerprint, label: str, count: int) -> None:
        """Insert ``count`` repetitions of one observation in O(1).

        Equivalent to calling :meth:`add` ``count`` times; used by
        (de)serialization and the sharded store, where repetition counts
        are already aggregated and expanding them would make loading
        O(insertions) instead of O(keys).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not label:
            raise ValueError("label must be non-empty")
        labels = self._store.setdefault(fingerprint, {})
        labels[label] = labels.get(label, 0) + count
        self._insertions += count
        self._version += 1
        self.register_label(label)

    def register_label(self, label: str) -> None:
        """Record ``label`` in the first-seen orders without an insertion.

        Used by deserialization to restore the global learning order that
        tie-breaking depends on; harmless if the label is already known.
        """
        if not label:
            raise ValueError("label must be non-empty")
        if label not in self._label_order:
            self._version += 1
        self._label_order.setdefault(label, None)
        self._app_order.setdefault(app_of_label(label), None)

    def add_many(
        self, fingerprints: Sequence[Optional[Fingerprint]], label: str
    ) -> int:
        """Insert all non-``None`` fingerprints; returns how many."""
        n = 0
        for fp in fingerprints:
            if fp is not None:
                self.add(fp, label)
                n += 1
        return n

    def merge(self, other) -> None:
        """Fold another dictionary's observations into this one.

        ``other`` may be any storage backend satisfying
        :class:`repro.engine.backend.DictionaryBackend` — another flat
        dictionary, a sharded store, or a columnar directory — consumed
        through the protocol surface (``labels``/``entries``/
        ``lookup_counts``), never through its internals.  The other
        store's label registration order is replayed first: string-table
        order is part of the contract (tie-breaking evaluates "the first
        application of the array"), so a merge must preserve it even for
        labels no key references yet.

        Built on :meth:`add_repeated`, so the mutation counter advances
        once per (key, label) entry — not once per absorbed observation,
        which at production repetition counts would make every merge
        needlessly invalidate caches millions of times over.
        """
        for label in other.labels():
            self.register_label(label)
        for fp, _ in other.entries():
            for label, count in other.lookup_counts(fp).items():
                self.add_repeated(fp, label, count)

    # -- reading ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, fingerprint: Fingerprint) -> bool:
        return fingerprint in self._store

    def lookup(self, fingerprint: Optional[Fingerprint]) -> List[str]:
        """Labels linked to ``fingerprint``, first-seen order; [] if absent."""
        if fingerprint is None:
            return []
        labels = self._store.get(fingerprint)
        return list(labels) if labels else []

    def lookup_counts(self, fingerprint: Optional[Fingerprint]) -> Dict[str, int]:
        """Labels with repetition counts; {} if absent."""
        if fingerprint is None:
            return {}
        return dict(self._store.get(fingerprint, {}))

    def lookup_many(
        self, fingerprints: Sequence[Fingerprint]
    ) -> Optional[List[List[str]]]:
        """One label list per fingerprint (the batch-session entry point).

        The flat store has no vectorized path, but it always reflects
        its live state, so this never returns ``None`` — backends whose
        batch index can go stale (see
        :meth:`repro.engine.columnar.ColumnarDictionary.lookup_many`)
        return ``None`` to send callers to the per-key path.
        """
        return [self.lookup(fp) for fp in fingerprints]

    def entries(self) -> Iterator[Tuple[Fingerprint, List[str]]]:
        """All (key, labels) pairs in insertion order (Table 4 layout)."""
        for fp, labels in self._store.items():
            yield fp, list(labels)

    def labels(self) -> List[str]:
        """Every distinct stored label, first-seen order."""
        return list(self._label_order)

    def app_names(self) -> List[str]:
        """Every distinct application name, first-seen order."""
        return list(self._app_order)

    def metrics(self) -> List[str]:
        seen: Dict[str, None] = {}
        for fp in self._store:
            seen.setdefault(fp.metric, None)
        return list(seen)

    def intervals(self) -> List[Tuple[float, float]]:
        seen: Dict[Tuple[float, float], None] = {}
        for fp in self._store:
            seen.setdefault(fp.interval, None)
        return list(seen)

    # -- analysis -------------------------------------------------------------
    def stats(self) -> DictionaryStats:
        colliding = 0
        max_labels = 0
        all_labels: Dict[str, None] = {}
        for labels in self._store.values():
            apps = {app_of_label(l) for l in labels}
            if len(apps) > 1:
                colliding += 1
            max_labels = max(max_labels, len(labels))
            for label in labels:
                all_labels.setdefault(label, None)
        return DictionaryStats(
            n_keys=len(self._store),
            n_insertions=self._insertions,
            n_labels=len(all_labels),
            n_colliding_keys=colliding,
            max_labels_per_key=max_labels,
        )

    def collisions(self) -> List[Tuple[Fingerprint, List[str]]]:
        """Keys whose labels span more than one application (e.g. SP/BT)."""
        out = []
        for fp, labels in self._store.items():
            apps = {app_of_label(l) for l in labels}
            if len(apps) > 1:
                out.append((fp, list(labels)))
        return out

    def fingerprints_for(self, label_prefix: str) -> List[Fingerprint]:
        """Keys whose labels include any label starting with ``label_prefix``.

        Supports both exact ``app_input`` labels and bare application
        names (used by the reverse-lookup predictor).
        """
        out = []
        for fp, labels in self._store.items():
            for label in labels:
                if label == label_prefix or label.startswith(label_prefix + "_") \
                        or app_of_label(label) == label_prefix:
                    out.append(fp)
                    break
        return out
