"""Execution fingerprints (paper §3).

    "Fingerprints consist of: (a) metric name, (b) node ID, (c) time
    interval, and (d) rounded mean.  An example fingerprint might look
    like this: [nr_mapped_vmstat, 0, [60:120], 6000.0]."

A fingerprint is the *key* of the EFD; the linked value is application +
input-size information.  Keys from different metrics and different time
intervals can co-exist in one dictionary because metric name and
interval are part of the key (paper §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.rounding import round_depth
from repro.data.dataset import ExecutionRecord

#: The paper's fingerprint interval: [60 s, 120 s] after execution start,
#: chosen "to avoid the perturbations in the initialization phase while
#: still reporting results relatively early during an execution".
DEFAULT_INTERVAL: Tuple[float, float] = (60.0, 120.0)


@dataclass(frozen=True)
class Fingerprint:
    """One execution fingerprint (a dictionary key)."""

    metric: str
    node: int
    interval: Tuple[float, float]
    value: float

    def __post_init__(self) -> None:
        if not self.metric:
            raise ValueError("metric name must be non-empty")
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        start, end = self.interval
        if end <= start:
            raise ValueError(
                f"interval end must exceed start, got [{start}:{end}]"
            )
        if self.value != self.value:
            raise ValueError("fingerprint value must not be NaN")
        object.__setattr__(self, "_hash", hash(
            (self.metric, self.node, self.interval, self.value)
        ))

    def __hash__(self) -> int:
        # Cached at construction: fingerprints are dictionary keys, and
        # the hot paths (store probes, client-side dedup/route/merge)
        # hash the same key several times per probe.
        try:
            return self._hash
        except AttributeError:  # unpickled (see __getstate__)
            h = hash((self.metric, self.node, self.interval, self.value))
            object.__setattr__(self, "_hash", h)
            return h

    def __getstate__(self):
        # str hashes are salted per process: never ship the cache.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __str__(self) -> str:
        start, end = self.interval
        return (
            f"[{self.metric}, {self.node}, [{start:g}:{end:g}], {self.value:g}]"
        )


def build_fingerprints(
    record: ExecutionRecord,
    metric: str,
    depth: int,
    interval: Tuple[float, float] = DEFAULT_INTERVAL,
) -> List[Optional[Fingerprint]]:
    """Fingerprints of one execution, one entry per node.

    A node whose interval mean is unavailable (sampler produced no valid
    samples in the window) yields ``None`` — recognition simply has one
    fewer vote, mirroring how a production pipeline degrades.
    """
    if metric not in {m for m, _ in record.telemetry}:
        raise KeyError(
            f"record {record.record_id} ({record.label}) has no telemetry "
            f"for metric {metric!r}"
        )
    start, end = interval
    out: List[Optional[Fingerprint]] = []
    for node in range(record.n_nodes):
        mean = record.interval_mean(metric, node, start, end)
        if mean != mean:  # NaN — no valid samples in the interval
            out.append(None)
            continue
        out.append(
            Fingerprint(
                metric=metric,
                node=node,
                interval=(float(start), float(end)),
                value=round_depth(mean, depth),
            )
        )
    return out
