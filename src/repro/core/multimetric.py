"""Combinatorial multi-metric fingerprints (paper §5/§6 future work).

    "Going forward, we can make fingerprints more exclusive by combining
    multiple system metrics and / or multiple time intervals from the
    execution time window."

Two composition modes:

- ``mode="vote"`` — one EFD per metric; an execution's votes are summed
  over all metrics and nodes.  Robust: a single noisy metric cannot veto
  recognition.
- ``mode="combine"`` — a node's fingerprint is the *tuple* of its
  per-metric rounded means, encoded into a single synthetic key.  Far
  more exclusive (the Shazam-combinatorial analogue): unknown
  applications almost never collide on every metric simultaneously,
  which is exactly what the hard-unknown experiment rewards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro._util.rng import RngLike
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import DEFAULT_INTERVAL, Fingerprint, build_fingerprints
from repro.core.matcher import MatchResult, match_fingerprints
from repro.core.recognizer import EFDRecognizer, RecordsLike, _as_records
from repro.core.rounding import round_depth
from repro.core.tuning import DEFAULT_DEPTH_CANDIDATES, select_rounding_depth
from repro.data.dataset import ExecutionRecord


class MultiMetricRecognizer:
    """EFD over several system metrics at once."""

    def __init__(
        self,
        metrics: Sequence[str],
        interval: Tuple[float, float] = DEFAULT_INTERVAL,
        depth: Optional[int] = None,
        mode: str = "vote",
        depth_candidates: Sequence[int] = DEFAULT_DEPTH_CANDIDATES,
        tuning_folds: int = 3,
        seed: RngLike = 0,
        unknown_label: str = "unknown",
    ):
        if not metrics:
            raise ValueError("metrics must be non-empty")
        if len(set(metrics)) != len(metrics):
            raise ValueError("metrics must be unique")
        if mode not in ("vote", "combine"):
            raise ValueError(f"mode must be 'vote' or 'combine', got {mode!r}")
        self.metrics = list(metrics)
        self.interval = (float(interval[0]), float(interval[1]))
        if self.interval[1] <= self.interval[0]:
            raise ValueError(f"interval end must exceed start, got {interval}")
        self.depth = depth
        self.mode = mode
        self.depth_candidates = tuple(depth_candidates)
        self.tuning_folds = tuning_folds
        self.seed = seed
        self.unknown_label = unknown_label

    # -- learning ----------------------------------------------------------
    def fit(self, data: RecordsLike) -> "MultiMetricRecognizer":
        records = _as_records(data)
        if not records:
            raise ValueError("cannot fit on zero records")
        self.depths_: Dict[str, int] = {}
        for metric in self.metrics:
            if self.depth is not None:
                self.depths_[metric] = int(self.depth)
            else:
                self.depths_[metric] = select_rounding_depth(
                    records,
                    metric,
                    candidates=self.depth_candidates,
                    interval=self.interval,
                    k=min(self.tuning_folds, len(records)),
                    seed=self.seed,
                    unknown_label=self.unknown_label,
                )
        self.dictionary_ = ExecutionFingerprintDictionary()
        for record in records:
            for fp in self._fingerprints(record):
                if fp is not None:
                    self.dictionary_.add(fp, record.label)
        return self

    # -- fingerprint construction ----------------------------------------------
    def _fingerprints(self, record: ExecutionRecord) -> List[Optional[Fingerprint]]:
        if self.mode == "vote":
            out: List[Optional[Fingerprint]] = []
            for metric in self.metrics:
                out.extend(
                    build_fingerprints(
                        record, metric, self.depths_[metric], self.interval
                    )
                )
            return out
        # mode == "combine": one synthetic key per node whose "metric"
        # encodes the metric set and whose value encodes the tuple of
        # rounded means.  A node missing any component mean yields None —
        # combinatorial keys are all-or-nothing by design.
        start, end = self.interval
        combined_name = "+".join(self.metrics)
        out = []
        for node in range(record.n_nodes):
            parts: List[str] = []
            ok = True
            for metric in self.metrics:
                mean = record.interval_mean(record_metric(metric), node, start, end)
                if mean != mean:
                    ok = False
                    break
                parts.append(repr(round_depth(mean, self.depths_[metric])))
            if not ok:
                out.append(None)
                continue
            out.append(
                Fingerprint(
                    metric=f"{combined_name}|{'|'.join(parts)}",
                    node=node,
                    interval=self.interval,
                    value=0.0,
                )
            )
        return out

    # -- inference ------------------------------------------------------------
    def predict_detail(self, record: ExecutionRecord) -> MatchResult:
        self._check_fitted()
        return match_fingerprints(self.dictionary_, self._fingerprints(record))

    def predict_one(self, record: ExecutionRecord) -> str:
        result = self.predict_detail(record)
        return result.prediction if result.prediction else self.unknown_label

    def predict(self, data: Union[ExecutionRecord, RecordsLike]):
        if isinstance(data, ExecutionRecord):
            return self.predict_one(data)
        return [self.predict_one(r) for r in _as_records(data)]

    # -- family cascade --------------------------------------------------------
    def family_cascade(self, spec=None, coarse_depth: int = 1):
        """A :class:`~repro.family.FamilyCascade` over the fitted
        dictionary, so multi-metric verdicts carry the family/variant
        distinction and the ``near-family`` outcome.

        The fine depth is the deepest per-metric tuned depth — every
        stored key is representable there, shallower metrics' keys just
        project onto themselves sooner.  In ``mode="combine"`` the
        cascade degenerates gracefully: synthetic keys all carry value
        0.0, so the coarse tier only distinguishes what the synthetic
        metric string already distinguishes and ``near-family`` never
        fires — combinatorial keys are all-or-nothing by design.
        """
        from repro.family import FamilyCascade

        self._check_fitted()
        return FamilyCascade(
            self.dictionary_,
            spec=spec,
            coarse_depth=coarse_depth,
            fine_depth=max(max(self.depths_.values()), coarse_depth),
        )

    def predict_family(self, record: ExecutionRecord, spec=None,
                       coarse_depth: int = 1):
        """Cascade one execution: a :class:`~repro.family.FamilyVerdict`
        whose ``match`` equals :meth:`predict_detail`."""
        cascade = self.family_cascade(spec=spec, coarse_depth=coarse_depth)
        return cascade.cascade_match([self._fingerprints(record)])[0]

    def _check_fitted(self) -> None:
        if not hasattr(self, "dictionary_"):
            raise RuntimeError(
                "MultiMetricRecognizer is not fitted; call fit() first"
            )


def record_metric(metric: str) -> str:
    """Identity hook kept for symmetry/testing of combined-key encoding."""
    return metric
