"""Brute-force k-nearest-neighbours classifier."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y


class KNeighborsClassifier(BaseClassifier):
    """Majority vote among the k closest training rows (L2 distance)."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ValueError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y_raw = check_X_y(X, y)
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds {X.shape[0]} "
                f"training samples"
            )
        self.classes_, self._y = np.unique(y_raw, return_inverse=True)
        self._X = X
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self._X.shape[1])
        # Pairwise squared distances via the expansion trick — one matmul
        # instead of a Python loop.
        d2 = (
            (X ** 2).sum(axis=1, keepdims=True)
            - 2.0 * X @ self._X.T
            + (self._X ** 2).sum(axis=1)
        )
        np.maximum(d2, 0.0, out=d2)
        k = self.n_neighbors
        nn = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
        out = np.zeros((X.shape[0], len(self.classes_)))
        for i in range(X.shape[0]):
            neighbours = nn[i]
            if self.weights == "distance":
                dist = np.sqrt(d2[i, neighbours])
                w = 1.0 / np.maximum(dist, 1e-12)
            else:
                w = np.ones(k)
            np.add.at(out[i], self._y[neighbours], w)
        out /= out.sum(axis=1, keepdims=True)
        return out

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
