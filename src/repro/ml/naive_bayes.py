"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseClassifier, check_X, check_X_y


class GaussianNB(BaseClassifier):
    """Per-class independent Gaussians with smoothed variances."""

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self.var_smoothing = var_smoothing

    def fit(self, X, y) -> "GaussianNB":
        X, y_raw = check_X_y(X, y)
        self.classes_, y_enc = np.unique(y_raw, return_inverse=True)
        k = len(self.classes_)
        d = X.shape[1]
        self.theta_ = np.zeros((k, d))
        self.var_ = np.zeros((k, d))
        self.class_prior_ = np.zeros(k)
        for c in range(k):
            rows = X[y_enc == c]
            self.theta_[c] = rows.mean(axis=0)
            self.var_[c] = rows.var(axis=0)
            self.class_prior_[c] = len(rows) / X.shape[0]
        # Smooth with a fraction of the largest feature variance so that
        # constant features do not produce zero-variance likelihoods.
        eps = self.var_smoothing * max(X.var(axis=0).max(), 1e-12)
        self.var_ += eps
        self.n_features_ = d
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        out = np.empty((X.shape[0], len(self.classes_)))
        for c in range(len(self.classes_)):
            diff = X - self.theta_[c]
            log_pdf = -0.5 * (
                np.log(2.0 * np.pi * self.var_[c]) + diff ** 2 / self.var_[c]
            ).sum(axis=1)
            out[:, c] = np.log(self.class_prior_[c]) + log_pdf
        return out

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self.n_features_)
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        proba = np.exp(jll)
        return proba / proba.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
