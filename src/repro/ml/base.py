"""Estimator base classes (scikit-learn-compatible surface)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np


class BaseClassifier:
    """Minimal classifier contract: ``fit``, ``predict``, ``score``.

    Subclasses must set ``self.classes_`` (sorted unique labels) during
    ``fit`` and implement ``predict``; ``predict_proba`` is optional.
    """

    classes_: np.ndarray

    def fit(self, X, y) -> "BaseClassifier":
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        raise NotImplementedError

    def predict_proba(self, X) -> np.ndarray:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement predict_proba"
        )

    def score(self, X, y) -> float:
        """Mean accuracy on ``(X, y)``."""
        y = np.asarray(y)
        pred = self.predict(X)
        if len(y) == 0:
            raise ValueError("cannot score an empty test set")
        return float((pred == y).mean())

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    def get_params(self) -> Dict[str, Any]:
        """Constructor parameters (attributes without trailing underscore)."""
        return {
            k: v
            for k, v in vars(self).items()
            if not k.endswith("_") and not k.startswith("_")
        }


def check_X_y(X, y) -> tuple:
    """Validate and coerce a training pair."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
        )
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty training set")
    if np.isnan(X).any():
        raise ValueError("X contains NaN; impute or drop before fitting")
    return X, y


def check_X(X, n_features: Optional[int] = None) -> np.ndarray:
    """Validate and coerce a prediction matrix."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if n_features is not None and X.shape[1] != n_features:
        raise ValueError(
            f"X has {X.shape[1]} features, model was fitted with {n_features}"
        )
    return X
