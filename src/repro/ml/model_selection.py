"""Cross-validation iterators and helpers."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RngLike, derive_rng


class KFold:
    """K consecutive (optionally shuffled) folds."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state: RngLike = None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            derive_rng(self.random_state, "kfold").shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield np.sort(train), np.sort(test)
            start += size


class StratifiedKFold:
    """K folds preserving per-class proportions."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: RngLike = None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n = len(y)
        if len(X) != n:
            raise ValueError(f"X has {len(X)} rows but y has {n}")
        rng = derive_rng(self.random_state, "stratified")
        folds: List[List[int]] = [[] for _ in range(self.n_splits)]
        offset = 0
        for lab in np.unique(y):
            idx = np.where(y == lab)[0]
            if self.shuffle:
                rng.shuffle(idx)
            for j, i in enumerate(idx):
                folds[(j + offset) % self.n_splits].append(int(i))
            offset += len(idx) % self.n_splits
        for k in range(self.n_splits):
            test = np.array(sorted(folds[k]), dtype=int)
            if len(test) == 0:
                raise ValueError(
                    f"fold {k} is empty; reduce n_splits={self.n_splits}"
                )
            test_set = set(test.tolist())
            train = np.array(
                [i for i in range(n) if i not in test_set], dtype=int
            )
            yield train, test


def cross_val_score(
    estimator_factory: Callable[[], object],
    X,
    y,
    cv: Optional[object] = None,
    scoring: Optional[Callable] = None,
) -> np.ndarray:
    """Scores of a freshly constructed estimator over CV folds.

    ``estimator_factory`` builds a new, unfitted estimator per fold
    (avoids state leaking between folds — a real hazard with mutable
    estimators).  ``scoring(fitted, X_test, y_test)`` defaults to the
    estimator's own ``score``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    splitter = cv if cv is not None else StratifiedKFold(5, shuffle=True, random_state=0)
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        est = estimator_factory()
        est.fit(X[train_idx], y[train_idx])
        if scoring is None:
            scores.append(est.score(X[test_idx], y[test_idx]))
        else:
            scores.append(scoring(est, X[test_idx], y[test_idx]))
    return np.asarray(scores, dtype=float)


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    random_state: RngLike = None,
    stratify=None,
):
    """Split arrays into random train/test subsets."""
    if not arrays:
        raise ValueError("at least one array required")
    n = len(arrays[0])
    for a in arrays:
        if len(a) != n:
            raise ValueError("all arrays must share the same length")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    rng = derive_rng(random_state, "tts")
    n_test = max(int(round(n * test_size)), 1)
    if stratify is not None:
        strat = np.asarray(stratify)
        if len(strat) != n:
            raise ValueError("stratify must align with the arrays")
        test_idx: List[int] = []
        for lab in np.unique(strat):
            idx = np.where(strat == lab)[0]
            rng.shuffle(idx)
            k = max(int(round(len(idx) * test_size)), 1)
            test_idx.extend(idx[:k].tolist())
        test = np.array(sorted(test_idx), dtype=int)
    else:
        perm = rng.permutation(n)
        test = np.sort(perm[:n_test])
    test_set = set(test.tolist())
    train = np.array([i for i in range(n) if i not in test_set], dtype=int)
    out = []
    for a in arrays:
        arr = np.asarray(a)
        out.append(arr[train])
        out.append(arr[test])
    return tuple(out)
