"""Random-forest classifier (bagged CART trees).

Taxonomist's published results use ensembles of decision trees over
statistical features; this is the comparison classifier for Figure 2.
``predict_proba`` averages tree class distributions, which also provides
the confidence score Taxonomist thresholds to flag unknown applications.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro._util.rng import RngLike, derive_rng
from repro.ml.base import BaseClassifier, check_X, check_X_y
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated decision trees with feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 50,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[None, int, float, str] = "sqrt",
        bootstrap: bool = True,
        random_state: RngLike = None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y_raw = check_X_y(X, y)
        self.classes_ = np.unique(y_raw)
        self.n_features_ = X.shape[1]
        class_index = {c: i for i, c in enumerate(self.classes_.tolist())}
        y_enc = np.array([class_index[v] for v in y_raw.tolist()], dtype=int)
        n = X.shape[0]
        self.estimators_: List[DecisionTreeClassifier] = []
        for t in range(self.n_estimators):
            rng = derive_rng(self.random_state, "forest", t)
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=derive_rng(self.random_state, "tree-seed", t),
            )
            tree.fit(X[idx], y_enc[idx])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self.n_features_)
        out = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Trees may have seen only a subset of classes in their
            # bootstrap sample; scatter their columns into the full space.
            for local, cls_code in enumerate(tree.classes_.tolist()):
                out[:, int(cls_code)] += proba[:, local]
        out /= len(self.estimators_)
        return out

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def confidence(self, X) -> np.ndarray:
        """Max class probability per row (Taxonomist's unknown signal)."""
        return self.predict_proba(X).max(axis=1)
