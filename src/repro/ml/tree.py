"""CART decision-tree classifier.

A standard top-down greedy induction with Gini impurity or entropy,
vectorized split search (one sort + cumulative class counts per
candidate feature per node), and the usual regularizers (``max_depth``,
``min_samples_split``, ``min_samples_leaf``, ``max_features``).

Sized for this project's workloads (hundreds to a few thousand samples,
tens to hundreds of features) — induction is O(features · n log n) per
node with NumPy doing the heavy lifting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro._util.rng import RngLike, derive_rng
from repro.ml.base import BaseClassifier, check_X, check_X_y


@dataclass
class _Node:
    """Tree node; leaves carry a class distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    counts: Optional[np.ndarray] = None  # class histogram at this node

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _impurity_gain(
    left_counts: np.ndarray,
    right_counts: np.ndarray,
    criterion: str,
) -> np.ndarray:
    """Weighted child impurity for every candidate split (lower = better).

    ``left_counts``/``right_counts`` have shape (n_splits, n_classes).
    """
    nl = left_counts.sum(axis=1, keepdims=True)
    nr = right_counts.sum(axis=1, keepdims=True)
    total = nl + nr
    with np.errstate(divide="ignore", invalid="ignore"):
        pl = np.where(nl > 0, left_counts / nl, 0.0)
        pr = np.where(nr > 0, right_counts / nr, 0.0)
        if criterion == "gini":
            il = 1.0 - (pl ** 2).sum(axis=1)
            ir = 1.0 - (pr ** 2).sum(axis=1)
        elif criterion == "entropy":
            log_pl = np.log2(pl, where=pl > 0, out=np.zeros_like(pl))
            log_pr = np.log2(pr, where=pr > 0, out=np.zeros_like(pr))
            il = -(pl * log_pl).sum(axis=1)
            ir = -(pr * log_pr).sum(axis=1)
        else:
            raise ValueError(f"criterion must be 'gini' or 'entropy', got {criterion!r}")
    return (nl[:, 0] * il + nr[:, 0] * ir) / total[:, 0]


class DecisionTreeClassifier(BaseClassifier):
    """Greedy binary classification tree."""

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[None, int, float, str] = None,
        random_state: RngLike = None,
    ):
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"criterion must be 'gini' or 'entropy', got {criterion!r}")
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------
    def _n_candidate_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError(f"max_features fraction must be in (0, 1], got {mf}")
            return max(1, int(mf * n_features))
        if isinstance(mf, int):
            if not 1 <= mf <= n_features:
                raise ValueError(
                    f"max_features must be in [1, {n_features}], got {mf}"
                )
            return mf
        raise ValueError(f"unsupported max_features: {mf!r}")

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        """Best (feature, threshold) over candidate ``features``."""
        n, _ = X.shape
        k = len(self.classes_)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        best: Optional[Tuple[int, float]] = None
        best_score = np.inf
        min_leaf = self.min_samples_leaf
        for f in features:
            col = X[:, f]
            order = np.argsort(col, kind="stable")
            sorted_col = col[order]
            # Candidate boundaries: positions where the value changes.
            diff = np.diff(sorted_col)
            valid = diff > 0
            if not valid.any():
                continue
            cums = np.cumsum(onehot[order], axis=0)  # (n, k)
            split_pos = np.nonzero(valid)[0]  # split after index p
            split_pos = split_pos[
                (split_pos + 1 >= min_leaf) & (n - split_pos - 1 >= min_leaf)
            ]
            if len(split_pos) == 0:
                continue
            left = cums[split_pos]
            right = cums[-1] - left
            scores = _impurity_gain(left, right, self.criterion)
            best_local = int(np.argmin(scores))
            if scores[best_local] < best_score - 1e-12:
                p = split_pos[best_local]
                threshold = 0.5 * (sorted_col[p] + sorted_col[p + 1])
                best_score = float(scores[best_local])
                best = (int(f), threshold)
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng) -> int:
        """Recursively grow the tree; returns the node index."""
        counts = np.bincount(y, minlength=len(self.classes_)).astype(float)
        node_index = len(self._nodes)
        self._nodes.append(_Node(counts=counts))
        n = len(y)
        pure = counts.max() == n
        too_deep = self.max_depth is not None and depth >= self.max_depth
        if pure or too_deep or n < self.min_samples_split:
            return node_index
        n_features = X.shape[1]
        n_cand = self._n_candidate_features(n_features)
        if n_cand < n_features:
            features = rng.choice(n_features, size=n_cand, replace=False)
        else:
            features = np.arange(n_features)
        split = self._best_split(X, y, features)
        if split is None:
            return node_index
        feature, threshold = split
        mask = X[:, feature] <= threshold
        if mask.all() or not mask.any():  # numerically degenerate split
            return node_index
        node = self._nodes[node_index]
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node_index

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y_raw = check_X_y(X, y)
        self.classes_, y_enc = np.unique(y_raw, return_inverse=True)
        self.n_features_ = X.shape[1]
        self._nodes: List[_Node] = []
        rng = derive_rng(self.random_state, "tree")
        self._build(X, y_enc, depth=0, rng=rng)
        return self

    def _leaf_counts(self, X: np.ndarray) -> np.ndarray:
        """Class histograms of the leaves each row lands in."""
        out = np.empty((X.shape[0], len(self.classes_)))
        for i in range(X.shape[0]):
            node = self._nodes[0]
            while not node.is_leaf:
                if X[i, node.feature] <= node.threshold:
                    node = self._nodes[node.left]
                else:
                    node = self._nodes[node.right]
            out[i] = node.counts
        return out

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted()
        X = check_X(X, self.n_features_)
        counts = self._leaf_counts(X)
        totals = counts.sum(axis=1, keepdims=True)
        return counts / totals

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def node_count(self) -> int:
        self._check_fitted()
        return len(self._nodes)

    @property
    def depth(self) -> int:
        self._check_fitted()

        def walk(i: int) -> int:
            node = self._nodes[i]
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(0)
