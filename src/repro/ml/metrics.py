"""Classification metrics.

The paper evaluates with the F-score ("harmonic mean of precision and
recall") computed by scikit-learn; these are drop-in equivalents with
explicit averaging semantics.  ``zero_division`` follows scikit-learn's
convention: an undefined ratio (no predicted / no true samples for a
class) contributes the given value, default 0.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.tables import TextTable


def _resolve_labels(
    y_true: np.ndarray, y_pred: np.ndarray, labels: Optional[Sequence] = None
) -> np.ndarray:
    if labels is not None:
        out = np.asarray(list(labels))
        if len(set(out.tolist())) != len(out):
            raise ValueError("labels must be unique")
        return out
    return np.unique(np.concatenate([np.unique(y_true), np.unique(y_pred)]))


def confusion_matrix(
    y_true, y_pred, labels: Optional[Sequence] = None
) -> np.ndarray:
    """``C[i, j]`` = number of samples with true label i predicted as j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} differ in shape"
        )
    label_arr = _resolve_labels(y_true, y_pred, labels)
    index = {lab: i for i, lab in enumerate(label_arr.tolist())}
    n = len(label_arr)
    out = np.zeros((n, n), dtype=int)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        ti = index.get(t)
        pi = index.get(p)
        if ti is None or pi is None:
            # Labels outside the requested set are ignored, matching
            # scikit-learn's behaviour with an explicit `labels=` list.
            continue
        out[ti, pi] += 1
    return out


def accuracy_score(y_true, y_pred) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between y_true and y_pred")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float((y_true == y_pred).mean())


def precision_recall_fscore(
    y_true,
    y_pred,
    labels: Optional[Sequence] = None,
    average: Optional[str] = None,
    zero_division: float = 0.0,
) -> Tuple:
    """Per-class or averaged (precision, recall, F1, support).

    ``average`` is ``None`` (per-class arrays), ``"macro"``, ``"micro"``
    or ``"weighted"``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between y_true and y_pred")
    label_arr = _resolve_labels(y_true, y_pred, labels)
    # Counts are computed directly (not via the label-restricted confusion
    # matrix): a prediction outside `labels` must still count against its
    # true class's recall — exactly scikit-learn's semantics.
    k = len(label_arr)
    tp = np.zeros(k)
    pred_count = np.zeros(k)
    true_count = np.zeros(k)
    for i, lab in enumerate(label_arr.tolist()):
        true_mask = y_true == lab
        pred_mask = y_pred == lab
        tp[i] = float(np.count_nonzero(true_mask & pred_mask))
        pred_count[i] = float(np.count_nonzero(pred_mask))
        true_count[i] = float(np.count_nonzero(true_mask))

    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_count > 0, tp / pred_count, zero_division)
        recall = np.where(true_count > 0, tp / true_count, zero_division)
        denom = precision + recall
        f1 = np.where(denom > 0, 2 * precision * recall / denom, 0.0)
    support = true_count.astype(int)

    if average is None:
        return precision, recall, f1, support
    if average == "macro":
        return (
            float(precision.mean()),
            float(recall.mean()),
            float(f1.mean()),
            int(support.sum()),
        )
    if average == "micro":
        tp_total = tp.sum()
        p = tp_total / pred_count.sum() if pred_count.sum() > 0 else zero_division
        r = tp_total / true_count.sum() if true_count.sum() > 0 else zero_division
        f = 2 * p * r / (p + r) if (p + r) > 0 else 0.0
        return float(p), float(r), float(f), int(support.sum())
    if average == "weighted":
        total = support.sum()
        if total == 0:
            raise ValueError("no samples to compute weighted average over")
        w = support / total
        return (
            float((precision * w).sum()),
            float((recall * w).sum()),
            float((f1 * w).sum()),
            int(total),
        )
    raise ValueError(
        f"average must be None, 'macro', 'micro' or 'weighted', got {average!r}"
    )


def f1_score(
    y_true,
    y_pred,
    labels: Optional[Sequence] = None,
    average: str = "macro",
    zero_division: float = 0.0,
) -> float:
    """Averaged F1 (the paper's headline number uses macro averaging)."""
    _, _, f1, _ = precision_recall_fscore(
        y_true, y_pred, labels=labels, average=average, zero_division=zero_division
    )
    return float(f1)


def classification_report(
    y_true, y_pred, labels: Optional[Sequence] = None, digits: int = 3
) -> str:
    """Human-readable per-class report (plus macro/weighted summaries)."""
    label_arr = _resolve_labels(np.asarray(y_true), np.asarray(y_pred), labels)
    precision, recall, f1, support = precision_recall_fscore(
        y_true, y_pred, labels=label_arr
    )
    table = TextTable(["class", "precision", "recall", "f1", "support"])
    for i, lab in enumerate(label_arr.tolist()):
        table.add_row(
            [
                lab,
                f"{precision[i]:.{digits}f}",
                f"{recall[i]:.{digits}f}",
                f"{f1[i]:.{digits}f}",
                support[i],
            ]
        )
    for avg in ("macro", "weighted"):
        p, r, f, s = precision_recall_fscore(
            y_true, y_pred, labels=label_arr, average=avg
        )
        table.add_row(
            [f"({avg} avg)", f"{p:.{digits}f}", f"{r:.{digits}f}", f"{f:.{digits}f}", s]
        )
    return table.render()
