"""Label encoding and feature standardization."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class LabelEncoder:
    """Maps arbitrary hashable labels to contiguous integers."""

    def fit(self, y) -> "LabelEncoder":
        y = np.asarray(y)
        if y.size == 0:
            raise ValueError("cannot fit LabelEncoder on empty input")
        self.classes_ = np.unique(y)
        self._index = {lab: i for i, lab in enumerate(self.classes_.tolist())}
        return self

    def transform(self, y) -> np.ndarray:
        self._check_fitted()
        out = np.empty(len(y), dtype=int)
        for i, lab in enumerate(np.asarray(y).tolist()):
            try:
                out[i] = self._index[lab]
            except KeyError:
                raise ValueError(
                    f"unseen label {lab!r}; known: {self.classes_.tolist()[:10]}"
                ) from None
        return out

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        self._check_fitted()
        codes = np.asarray(codes, dtype=int)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError(
                f"codes outside [0, {len(self.classes_)}): "
                f"[{codes.min()}, {codes.max()}]"
            )
        return self.classes_[codes]

    def _check_fitted(self) -> None:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder is not fitted; call fit() first")


class StandardScaler:
    """Removes per-feature mean and scales to unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit StandardScaler on empty input")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            # Constant features scale by 1 so they pass through unchanged.
            self.scale_ = np.where(std > 0, std, 1.0)
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.mean_):
            raise ValueError(
                f"X shape {X.shape} incompatible with fitted "
                f"({len(self.mean_)} features)"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_
