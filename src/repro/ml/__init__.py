"""From-scratch machine-learning substrate.

The paper implements F-score and cross-fold validation with scikit-learn
and compares against Taxonomist's supervised classifier.  scikit-learn is
not available in this environment, so this subpackage provides NumPy
implementations of everything the reproduction needs:

- :mod:`repro.ml.metrics` — confusion matrices, precision/recall/F-score
  with binary/macro/micro/weighted averaging, classification reports.
- :mod:`repro.ml.model_selection` — K-fold and stratified K-fold
  iterators, ``cross_val_score``, ``train_test_split``.
- :mod:`repro.ml.preprocessing` — label encoding and standardization.
- :mod:`repro.ml.tree` / :mod:`repro.ml.forest` — CART decision trees and
  random forests (the Taxonomist baseline's classifier family).
- :mod:`repro.ml.knn`, :mod:`repro.ml.naive_bayes` — simple alternative
  classifiers for the baseline ablation.

The API deliberately mirrors scikit-learn (``fit``/``predict``/
``predict_proba``) so readers can map code to the paper directly.
"""

from repro.ml.base import BaseClassifier
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    precision_recall_fscore,
    f1_score,
    classification_report,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.naive_bayes import GaussianNB

__all__ = [
    "BaseClassifier",
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_fscore",
    "f1_score",
    "classification_report",
    "KFold",
    "StratifiedKFold",
    "cross_val_score",
    "train_test_split",
    "LabelEncoder",
    "StandardScaler",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "KNeighborsClassifier",
    "GaussianNB",
]
