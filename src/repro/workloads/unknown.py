"""Unknown-application generator.

The paper's soft/hard *unknown* experiments test whether the EFD
wrongfully recognizes applications it has never seen.  Beyond the
leave-one-out protocol on the eleven dataset applications, this module
can synthesize arbitrary never-seen applications whose metric levels are
drawn from the same ranges as real workloads — the honest adversary for
robustness studies (used by ``examples/unknown_detection.py`` and the
robustness benches).
"""

from __future__ import annotations

from typing import Optional

from repro._util.hashing import stable_uniform
from repro.workloads.base import AppModel


def make_unknown_app(
    name: str,
    *,
    seed_salt: object = 0,
    near_app_level: Optional[float] = None,
) -> AppModel:
    """Create a synthetic application outside the canonical set.

    Parameters
    ----------
    name:
        Label for the new application (must not collide with the dataset
        applications to keep experiments honest).
    seed_salt:
        Extra entropy so multiple distinct unknowns can share a name
        prefix.
    near_app_level:
        If given, pins the ``nr_mapped_vmstat`` level close to this value
        — used to construct *adversarial* unknowns that sit on top of a
        known application's fingerprint.
    """
    if not name:
        raise ValueError("name must be non-empty")
    calibrated = {}
    if near_app_level is not None:
        if near_app_level <= 0:
            raise ValueError("near_app_level must be positive")
        calibrated["nr_mapped_vmstat"] = {"*": [float(near_app_level)] * 4}
    else:
        # Draw a stable level in the same range the real workloads span,
        # so collisions with known fingerprints occur at a realistic rate.
        level = stable_uniform(name, seed_salt, "unk-level", low=3000.0, high=13000.0)
        calibrated["nr_mapped_vmstat"] = {"*": [level] * 4}
    coupling = stable_uniform(name, seed_salt, "unk-coupling", low=0.1, high=0.9)
    duration = stable_uniform(name, seed_salt, "unk-dur", low=220.0, high=360.0)
    init = stable_uniform(name, seed_salt, "unk-init", low=30.0, high=50.0)
    return AppModel(
        name,
        calibrated_levels=calibrated,
        input_coupling=coupling,
        init_duration=init,
        base_duration=duration,
    )
