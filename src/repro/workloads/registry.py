"""Workload registry: the dataset's eleven applications in one place."""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional

from repro.workloads.base import AppModel, CANONICAL_APP_ORDER
from repro.workloads.inputs import BASE_INPUTS, EXTENDED_INPUTS
from repro.workloads.nas import make_nas_app
from repro.workloads.proxies import make_proxy_app

#: All eleven application names, in the paper's Table 2 order.
APP_NAMES: List[str] = [
    "ft", "mg", "sp", "lu", "bt", "cg",
    "CoMD", "miniGhost", "miniAMR", "miniMD", "kripke",
]

#: Applications for which the extra input size L exists (the starred
#: entries of Table 2).
STARRED_APPS: List[str] = ["miniGhost", "miniAMR", "miniMD", "kripke"]

assert APP_NAMES == CANONICAL_APP_ORDER  # keep lattice + registry aligned


class WorkloadRegistry:
    """Name-indexed collection of :class:`AppModel`."""

    def __init__(self, models: Mapping[str, AppModel]):
        for name, model in models.items():
            if name != model.name:
                raise ValueError(
                    f"registry key {name!r} != model name {model.name!r}"
                )
        self._models: Dict[str, AppModel] = dict(models)

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[AppModel]:
        return iter(self._models.values())

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def names(self) -> List[str]:
        return list(self._models)

    def get(self, name: str) -> AppModel:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(
                f"unknown application {name!r}; known: {list(self._models)}"
            ) from None

    def inputs_for(self, name: str) -> List[str]:
        """Input sizes available for application ``name`` (Table 2)."""
        self.get(name)
        return list(EXTENDED_INPUTS if name in STARRED_APPS else BASE_INPUTS)

    def app_input_pairs(self) -> List[tuple]:
        """All (application, input) pairs of the dataset."""
        pairs = []
        for name in self._models:
            for inp in self.inputs_for(name):
                pairs.append((name, inp))
        return pairs

    def with_apps(self, names) -> "WorkloadRegistry":
        """Sub-registry restricted to ``names`` (order preserved)."""
        return WorkloadRegistry({n: self.get(n) for n in names})

    def extended(self, model: AppModel) -> "WorkloadRegistry":
        """Registry with one extra model appended (e.g. an unknown app)."""
        if model.name in self._models:
            raise ValueError(f"application {model.name!r} already registered")
        merged = dict(self._models)
        merged[model.name] = model
        return WorkloadRegistry(merged)


def default_workloads() -> WorkloadRegistry:
    """The eleven evaluation applications of Table 2."""
    models: Dict[str, AppModel] = {}
    for name in APP_NAMES:
        if name in ("ft", "mg", "sp", "lu", "bt", "cg"):
            models[name] = make_nas_app(name)
        else:
            models[name] = make_proxy_app(name)
    return WorkloadRegistry(models)
