"""Input size definitions.

The dataset uses abstract input sizes X, Y, Z for every application plus
a larger L available only for a subset (Table 2).  Models treat an input
size as a problem-scale factor; whether a given metric's level actually
*moves* with that factor is controlled per (application, metric) — the
paper's §5 observes that some applications (e.g. miniAMR) have strongly
input-dependent fingerprints while others (e.g. FT under nr_mapped)
repeat the same fingerprint across inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class InputSize:
    """One named problem size."""

    name: str
    scale: float  # relative problem-size factor (X == 1.0)
    runtime_factor: float  # relative execution-duration factor

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("input size name must be non-empty")
        if self.scale <= 0 or self.runtime_factor <= 0:
            raise ValueError("scale and runtime_factor must be positive")


#: The four input sizes of the evaluation dataset.
INPUT_SIZES: Dict[str, InputSize] = {
    "X": InputSize("X", scale=1.0, runtime_factor=1.0),
    "Y": InputSize("Y", scale=1.7, runtime_factor=1.15),
    "Z": InputSize("Z", scale=2.9, runtime_factor=1.3),
    "L": InputSize("L", scale=5.2, runtime_factor=1.5),
}

BASE_INPUTS: List[str] = ["X", "Y", "Z"]
EXTENDED_INPUTS: List[str] = ["X", "Y", "Z", "L"]


def get_input(name: str) -> InputSize:
    try:
        return INPUT_SIZES[name]
    except KeyError:
        raise KeyError(
            f"unknown input size {name!r}; known: {sorted(INPUT_SIZES)}"
        ) from None


def input_scale(name: str) -> float:
    """Problem-scale factor of a named input size."""
    return get_input(name).scale
