"""NAS Parallel Benchmark application models: FT, MG, SP, LU, BT, CG.

The ``nr_mapped_vmstat`` levels are calibrated directly against the
paper's published example EFD (Table 4):

- ft  -> 6000 on all nodes, identical across inputs,
- mg  -> 6100 on all nodes,
- sp/bt -> the famous depth-2 collision: node 0 near 7600, nodes 1-2 near
  7500, node 3 near 7100, with SP and BT only ~80 pages apart so that
  rounding depth 3 separates them ("Rounding depth 3 avoids this
  collision and also recognizes BT", §5),
- lu  -> node 0 near 8400, remaining nodes near 8300.

All six use their ``nr_mapped`` footprint independently of input size
(Table 4 lists every input per key), which is what makes the paper's
soft/hard *input* experiments partially succeed.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import AppModel

_FOUR = 4  # dataset node count


def _flat(level: float) -> Dict[str, list]:
    return {"*": [level] * _FOUR}


def make_nas_app(name: str) -> AppModel:
    """Build the model for one NAS benchmark by short name."""
    name = name.lower()
    if name == "ft":
        return AppModel(
            "ft",
            calibrated_levels={"nr_mapped_vmstat": _flat(6000.0)},
            input_coupling=0.10,
            init_duration=38.0,
            base_duration=240.0,
        )
    if name == "mg":
        return AppModel(
            "mg",
            calibrated_levels={"nr_mapped_vmstat": _flat(6110.0)},
            input_coupling=0.15,
            init_duration=36.0,
            base_duration=230.0,
        )
    if name == "cg":
        return AppModel(
            "cg",
            calibrated_levels={"nr_mapped_vmstat": _flat(6810.0)},
            input_coupling=0.40,
            init_duration=34.0,
            base_duration=220.0,
        )
    if name == "sp":
        return AppModel(
            "sp",
            calibrated_levels={
                "nr_mapped_vmstat": {"*": [7590.0, 7540.0, 7540.0, 7120.0]}
            },
            input_coupling=0.20,
            init_duration=42.0,
            base_duration=300.0,
            node0_bias=0.007,
        )
    if name == "bt":
        return AppModel(
            "bt",
            calibrated_levels={
                "nr_mapped_vmstat": {"*": [7620.0, 7460.0, 7460.0, 7080.0]}
            },
            input_coupling=0.20,
            init_duration=42.0,
            base_duration=310.0,
            node0_bias=0.010,
        )
    if name == "lu":
        return AppModel(
            "lu",
            calibrated_levels={
                "nr_mapped_vmstat": {"*": [8370.0, 8330.0, 8330.0, 8330.0]}
            },
            input_coupling=0.20,
            init_duration=40.0,
            base_duration=320.0,
            node0_bias=0.005,
        )
    raise ValueError(f"unknown NAS benchmark {name!r}; known: ft mg cg sp bt lu")


#: The six NAS models keyed by name.
NAS_APPS: Dict[str, AppModel] = {
    n: make_nas_app(n) for n in ("ft", "mg", "sp", "lu", "bt", "cg")
}
