"""Application behaviour models.

The paper's dataset contains repeated executions of eleven HPC
applications: six NAS Parallel Benchmarks (FT, MG, SP, LU, BT, CG) and
five proxy/mini applications (CoMD, miniGhost, miniAMR, miniMD, Kripke).
This subpackage models how each of them drives the monitored system
metrics: per-metric base levels (calibrated against the paper's example
EFD in Table 4), initialization phases, compute-phase temporal shapes,
per-node asymmetries (e.g. the rank-0 effects visible for SP/BT/LU), and
per-execution measurement variation.

The models produce *signal functions* that the LDMS sampler simulation
(:mod:`repro.telemetry`) observes; they never fabricate fingerprints
directly, so the whole recognition pipeline is exercised end to end.
"""

from repro.workloads.base import AppModel, ExecutionBehavior, MetricBehavior
from repro.workloads.inputs import InputSize, INPUT_SIZES, input_scale
from repro.workloads.nas import NAS_APPS, make_nas_app
from repro.workloads.proxies import PROXY_APPS, make_proxy_app
from repro.workloads.registry import (
    WorkloadRegistry,
    default_workloads,
    APP_NAMES,
    STARRED_APPS,
)
from repro.workloads.unknown import make_unknown_app
from repro.workloads.cryptominer import make_cryptominer
from repro.workloads.versions import (
    VersionedAppModel,
    make_versioned_app,
    make_version_family,
    versioned_workloads,
)

__all__ = [
    "AppModel",
    "ExecutionBehavior",
    "MetricBehavior",
    "InputSize",
    "INPUT_SIZES",
    "input_scale",
    "NAS_APPS",
    "make_nas_app",
    "PROXY_APPS",
    "make_proxy_app",
    "WorkloadRegistry",
    "default_workloads",
    "APP_NAMES",
    "STARRED_APPS",
    "make_unknown_app",
    "make_cryptominer",
    "VersionedAppModel",
    "make_versioned_app",
    "make_version_family",
    "versioned_workloads",
]
