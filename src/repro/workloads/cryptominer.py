"""Cryptocurrency-miner workload model.

The paper motivates application recognition partly by allocation abuse:
"deviate from allocation purpose (e.g. cryptocurrency mining)".  This
model lets examples and tests exercise that scenario: a miner has an
unusually small, extremely stable memory footprint, saturated CPU, and
near-zero interconnect traffic — a fingerprint far from any of the
legitimate HPC applications, so an EFD trained on the production mix
flags it as unknown, while an EFD that has *learned* the miner's
fingerprint recognizes recurring abuse immediately.
"""

from __future__ import annotations

from repro.workloads.base import AppModel


def make_cryptominer(name: str = "xmr_miner") -> AppModel:
    """Model of a CPU cryptocurrency miner (e.g. RandomX-style)."""
    return AppModel(
        name,
        calibrated_levels={
            # Tiny, rock-steady resident footprint: miners allocate a
            # fixed scratchpad and never grow it.
            "nr_mapped_vmstat": {"*": [2140.0, 2140.0, 2140.0, 2140.0]},
            # No MPI traffic: NIC counters idle at protocol noise level.
            "AMO_PKTS_metric_set_nic": {"*": [180.0, 180.0, 180.0, 180.0]},
        },
        input_coupling=0.0,  # miners ignore "problem size"
        exec_sigma_overrides={("nr_mapped_vmstat", "X"): 0.001},
        init_duration=10.0,  # near-instant start, no MPI_Init phase
        base_duration=300.0,
    )
