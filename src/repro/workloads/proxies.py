"""Proxy / mini-application models: CoMD, miniGhost, miniAMR, miniMD, Kripke.

Calibration highlights (all against the paper's Table 4 and §5
discussion):

- **miniAMR** is the paper's canonical *input-dependent* application: its
  ``nr_mapped`` footprint moves with input size (7800 / 8000 / ~10 600)
  and input Z additionally shows large per-execution variation — Table 4
  records both a 11000 and a 10000 fingerprint for miniAMR_Z.  We model
  that with an enlarged per-execution sigma on (nr_mapped, Z).
- **miniMD** and **Kripke** are also input-dependent (they, like miniAMR
  and miniGhost, have the extra L input in Table 2); their per-input
  levels are distinct so that the *hard input* experiment degrades, as
  the paper reports.
- **CoMD** and **miniGhost** keep input-independent footprints.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.base import AppModel

_FOUR = 4


def _flat(level: float) -> Dict[str, list]:
    return {"*": [level] * _FOUR}


def _per_input(levels: Dict[str, float]) -> Dict[str, list]:
    return {k: [v] * _FOUR for k, v in levels.items()}


def make_proxy_app(name: str) -> AppModel:
    """Build the model for one proxy application by canonical name."""
    if name == "CoMD":
        return AppModel(
            "CoMD",
            calibrated_levels={"nr_mapped_vmstat": _flat(8810.0)},
            input_coupling=0.35,
            init_duration=40.0,
            base_duration=280.0,
        )
    if name == "miniGhost":
        return AppModel(
            "miniGhost",
            calibrated_levels={"nr_mapped_vmstat": _flat(7890.0)},
            input_coupling=0.25,
            init_duration=38.0,
            base_duration=260.0,
        )
    if name == "miniAMR":
        return AppModel(
            "miniAMR",
            calibrated_levels={
                "nr_mapped_vmstat": _per_input(
                    {"X": 7790.0, "Y": 8010.0, "Z": 10600.0, "L": 12600.0}
                )
            },
            input_coupling=0.90,
            exec_sigma_overrides={("nr_mapped_vmstat", "Z"): 0.020},
            init_duration=44.0,
            base_duration=340.0,
            node_correlation=0.45,
        )
    if name == "miniMD":
        return AppModel(
            "miniMD",
            calibrated_levels={
                "nr_mapped_vmstat": _per_input(
                    {"X": 9310.0, "Y": 9460.0, "Z": 9720.0, "L": 9880.0}
                )
            },
            input_coupling=0.50,
            init_duration=36.0,
            base_duration=270.0,
        )
    if name == "kripke":
        return AppModel(
            "kripke",
            calibrated_levels={
                "nr_mapped_vmstat": _per_input(
                    {"X": 5610.0, "Y": 5760.0, "Z": 6310.0, "L": 6560.0}
                )
            },
            input_coupling=0.60,
            init_duration=36.0,
            base_duration=250.0,
        )
    raise ValueError(
        f"unknown proxy application {name!r}; known: CoMD miniGhost miniAMR "
        f"miniMD kripke"
    )


#: The five proxy models keyed by canonical name.
PROXY_APPS: Dict[str, AppModel] = {
    n: make_proxy_app(n)
    for n in ("CoMD", "miniGhost", "miniAMR", "miniMD", "kripke")
}
