"""Application behaviour model base classes.

An :class:`AppModel` answers one question for the telemetry substrate:
*what does metric m look like on node i when application a runs input s?*
The answer has three deterministic layers plus one stochastic layer:

1. **Base level** — a stable per-(app, input, metric, node) value.  For
   the paper-calibrated metrics (``nr_mapped_vmstat`` etc.) the levels
   are hand-set from the published example EFD (Table 4); for the other
   ~550 metrics they are derived from a collision-aware lattice so that
   highly discriminative metrics separate all applications while weaker
   metrics merge similar applications onto the same level.
2. **Phase envelope** — a startup ramp over ``init_duration`` seconds
   (the perturbation the paper avoids by fingerprinting [60 s, 120 s]),
   then a steady compute phase, then a short teardown.
3. **Shape archetype** — the compute-phase temporal texture
   (:mod:`repro.workloads.archetypes`).
4. **Execution variation** — a per-execution, per-node level offset
   ("measurement variation, potentially caused by system perturbations
   and noise", §5) sampled from the execution's RNG; this is what makes
   distinct executions of one application produce one *or several*
   nearby fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.hashing import stable_hash, stable_uniform
from repro._util.rng import RngLike, derive_rng
from repro.telemetry.metrics import MetricSpec
from repro.telemetry.noise import NoiseModel, default_noise
from repro.workloads.archetypes import DEFAULT_AMPLITUDE, PERIOD_RANGE, make_shape
from repro.workloads.inputs import get_input

SignalFn = Callable[[np.ndarray], np.ndarray]

#: Canonical global application order; the level lattice hangs off it.
CANONICAL_APP_ORDER: List[str] = [
    "ft", "mg", "sp", "lu", "bt", "cg",
    "CoMD", "miniGhost", "miniAMR", "miniMD", "kripke",
]

#: Pairs of applications with genuinely similar behaviour, and the
#: strength of that similarity.  SP and BT share a fingerprint at coarse
#: rounding depths in the paper (Table 4); LU is a weaker relative.
SIMILARITY_PAIRS: List[Tuple[str, str, float]] = [
    ("sp", "bt", 0.9),
    ("sp", "lu", 0.25),
    ("bt", "lu", 0.25),
    ("CoMD", "miniMD", 0.35),
    ("mg", "miniGhost", 0.2),
]


@dataclass(frozen=True)
class MetricBehavior:
    """Fully resolved behaviour of one metric for one execution/node."""

    level: float          # per-execution level (base + execution offset)
    base_level: float     # deterministic base level
    amp: float            # shape modulation amplitude
    period: float         # shape modulation period (seconds)
    phase: float          # shape phase offset (radians)
    archetype: str
    init_duration: float  # seconds of startup ramp
    init_floor: float     # relative level at t=0
    noise_scale: float    # absolute scale handed to the noise stack


@dataclass(frozen=True)
class ExecutionBehavior:
    """Behaviour of a whole execution: duration + per-(metric,node) signals."""

    app: str
    input_size: str
    n_nodes: int
    duration: float
    behaviors: Mapping[Tuple[str, int], MetricBehavior]


class AppModel:
    """Behaviour model for one application.

    Parameters
    ----------
    name:
        Application name as it appears in dataset labels (e.g. ``"ft"``).
    calibrated_levels:
        ``{metric_name: {input_name_or_'*': [level_node0, ...]}}`` —
        explicit per-node levels for paper-calibrated metrics.  The key
        ``'*'`` marks input-independent levels.
    input_coupling:
        Application-wide tendency of metric levels to scale with problem
        size, in [0, 1].  Actual per-metric coupling is the product of
        this and the metric's ``input_sensitivity``.
    exec_sigma_overrides:
        ``{(metric_name, input_name): rel_sigma}`` — larger per-execution
        level variation for specific metric/input pairs (e.g. the paper's
        miniAMR_Z double fingerprint).
    init_duration / base_duration:
        Startup-phase length and input-X execution duration in seconds.
    node0_bias:
        Relative level bias of node 0 (MPI rank 0 effects) applied to
        derived (non-calibrated) levels.
    """

    def __init__(
        self,
        name: str,
        *,
        calibrated_levels: Optional[Mapping[str, Mapping[str, Sequence[float]]]] = None,
        input_coupling: float = 0.3,
        exec_sigma_overrides: Optional[Mapping[Tuple[str, str], float]] = None,
        init_duration: float = 40.0,
        base_duration: float = 260.0,
        node0_bias: float = 0.0,
        node_correlation: float = 0.5,
    ):
        if not name:
            raise ValueError("application name must be non-empty")
        if not 0.0 <= input_coupling <= 1.0:
            raise ValueError("input_coupling must be in [0, 1]")
        if init_duration <= 0 or base_duration <= init_duration:
            raise ValueError(
                "require 0 < init_duration < base_duration, got "
                f"init={init_duration}, base={base_duration}"
            )
        if not 0.0 <= node_correlation <= 1.0:
            raise ValueError("node_correlation must be in [0, 1]")
        self.name = name
        self.calibrated_levels = {
            m: {k: list(v) for k, v in per_input.items()}
            for m, per_input in (calibrated_levels or {}).items()
        }
        self.input_coupling = float(input_coupling)
        self.exec_sigma_overrides = dict(exec_sigma_overrides or {})
        self.init_duration = float(init_duration)
        self.base_duration = float(base_duration)
        self.node0_bias = float(node0_bias)
        self.node_correlation = float(node_correlation)

    def __repr__(self) -> str:
        return f"AppModel({self.name!r})"

    # ------------------------------------------------------------------
    # Level derivation
    # ------------------------------------------------------------------
    def _collision_partner(self, metric: MetricSpec) -> Optional[str]:
        """The application this app merges with on ``metric``, if any."""
        for a, b, strength in SIMILARITY_PAIRS:
            if self.name not in (a, b):
                continue
            p_collide = strength * (1.0 - metric.discriminative)
            if stable_uniform(metric.name, "collide", a, b) < p_collide:
                return a if self.name == b else b
        return None

    def _lattice_level(self, metric: MetricSpec, app_key: str) -> float:
        """Deterministic well-separated level from the global app lattice.

        Applications occupy permuted slots of an 11-point lattice spanning
        [0.4, 1.6] x magnitude, guaranteeing ~11 % relative separation
        between non-colliding applications — comfortably more than one
        rounding bucket at the paper's operating depths.
        """
        n = len(CANONICAL_APP_ORDER)
        try:
            rank = CANONICAL_APP_ORDER.index(app_key)
        except ValueError:
            # Applications outside the canonical set (unknown apps,
            # cryptominers) draw a uniform level in the same range.
            u = stable_uniform(metric.name, "level-unknown", app_key)
            return metric.magnitude * (0.4 + 1.2 * u)
        # Affine permutation of lattice slots; 11 is prime so any
        # multiplier in [1, 10] is a bijection.
        a = 1 + stable_hash(metric.name, "perm-a") % (n - 1)
        b = stable_hash(metric.name, "perm-b") % n
        slot = (rank * a + b) % n
        jitter = stable_uniform(metric.name, "jit", app_key, low=-0.25, high=0.25)
        frac = (slot + 0.5 + jitter) / n
        return metric.magnitude * (0.4 + 1.2 * frac)

    def base_level(
        self,
        metric: MetricSpec,
        input_name: str,
        node: int,
        n_nodes: int,
    ) -> float:
        """Deterministic base level for ``metric`` on logical ``node``."""
        if node < 0 or node >= n_nodes:
            raise ValueError(f"node {node} outside [0, {n_nodes})")
        calibrated = self.calibrated_levels.get(metric.name)
        if calibrated is not None:
            per_input = calibrated.get(input_name, calibrated.get("*"))
            if per_input is None:
                raise KeyError(
                    f"{self.name}: no calibrated {metric.name} level for input "
                    f"{input_name!r} and no '*' default"
                )
            return float(per_input[node % len(per_input)])

        if metric.discriminative == 0.0:
            # Application-independent metrics (MemTotal, ...) sit at a
            # fixed system level.
            return metric.magnitude

        partner = self._collision_partner(metric)
        app_key = self.name if partner is None else min(self.name, partner)
        level = self._lattice_level(metric, app_key)

        coupling = metric.input_sensitivity * self.input_coupling
        level *= get_input(input_name).scale ** coupling

        if node == 0 and self.node0_bias != 0.0:
            level *= 1.0 + self.node0_bias
        # Mild deterministic per-node imbalance for non-rank-0 nodes.
        wiggle = stable_uniform(metric.name, self.name, "node", node,
                                low=-0.002, high=0.002)
        return level * (1.0 + wiggle)

    # ------------------------------------------------------------------
    # Execution-time behaviour
    # ------------------------------------------------------------------
    def duration(self, input_name: str) -> float:
        """Execution duration in seconds for ``input_name``."""
        return self.base_duration * get_input(input_name).runtime_factor

    def exec_sigma(self, metric: MetricSpec, input_name: str) -> float:
        """Relative per-execution level variation for ``metric``."""
        return self.exec_sigma_overrides.get(
            (metric.name, input_name), metric.noise_rel
        )

    def execution_behavior(
        self,
        metrics: Sequence[MetricSpec],
        input_name: str,
        n_nodes: int,
        rng: RngLike = None,
    ) -> ExecutionBehavior:
        """Sample one execution's behaviour for all ``metrics`` and nodes."""
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        generator = derive_rng(rng)
        get_input(input_name)  # validate early
        # Startup length varies between executions (filesystem load, MPI
        # wire-up, node health): the reason early fingerprint windows are
        # unreliable and the paper's interval starts at 60 s.
        init_duration = self.init_duration * float(generator.uniform(0.85, 1.2))
        behaviors: Dict[Tuple[str, int], MetricBehavior] = {}
        for metric in metrics:
            sigma_rel = self.exec_sigma(metric, input_name)
            # Common (whole-job) wander plus per-node independent wander:
            # rho controls how correlated node fingerprints are within one
            # execution (Table 4's miniAMR_Z rows show partial coupling).
            rho = self.node_correlation
            common = generator.normal(0.0, 1.0)
            # Whole-execution outlier perturbations (noisy neighbours,
            # degraded nodes): the less discriminative a metric, the more
            # often an execution's level shifts wholesale.  This is the
            # mechanism behind the sub-1.0 entries of Table 3.
            out_factor = 1.0
            p_out = 0.6 * (1.0 - metric.discriminative)
            if p_out > 0.0 and generator.random() < min(p_out, 0.35):
                magnitude = generator.uniform(0.04, 0.15)
                sign = 1.0 if generator.random() < 0.5 else -1.0
                out_factor = 1.0 + sign * magnitude
            amp = DEFAULT_AMPLITUDE[metric.archetype]
            period_lo, period_hi = PERIOD_RANGE[metric.archetype]
            period = float(
                period_lo
                + (period_hi - period_lo)
                * stable_uniform(metric.name, self.name, "period")
            )
            for node in range(n_nodes):
                base = self.base_level(metric, input_name, node, n_nodes)
                own = generator.normal(0.0, 1.0)
                eps = (rho * common + (1.0 - rho) * own) * sigma_rel * base
                level = max((base + eps) * out_factor, 0.0)
                behaviors[(metric.name, node)] = MetricBehavior(
                    level=level,
                    base_level=base,
                    amp=amp,
                    period=period,
                    phase=float(generator.uniform(0.0, 2.0 * np.pi)),
                    archetype=metric.archetype,
                    init_duration=init_duration,
                    init_floor=0.25,
                    noise_scale=metric.noise_rel * max(base, 1e-12),
                )
        return ExecutionBehavior(
            app=self.name,
            input_size=input_name,
            n_nodes=n_nodes,
            duration=self.duration(input_name),
            behaviors=behaviors,
        )


def make_signal(
    behavior: MetricBehavior,
    noise: Optional[NoiseModel] = None,
    rng: RngLike = None,
) -> SignalFn:
    """Build the vectorized signal function for one (metric, node) series.

    The returned function evaluates ``envelope * level * shape + noise``
    at arbitrary observation times.  The noise stream is drawn from
    ``rng`` at call time; the LDMS sampler calls the signal exactly once
    per series, so reproducibility is governed by the sampler's seed
    discipline.
    """
    noise_model = noise if noise is not None else default_noise(behavior.init_duration)
    generator = derive_rng(rng)
    shape = make_shape(
        behavior.archetype,
        amp=behavior.amp,
        period=behavior.period,
        phase=behavior.phase,
    )
    init = behavior.init_duration
    floor = behavior.init_floor

    def signal(times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        # Startup ramp: smoothstep from `floor` to 1.0 over the init phase.
        x = np.clip(times / init, 0.0, 1.0)
        envelope = floor + (1.0 - floor) * (x * x * (3.0 - 2.0 * x))
        values = envelope * behavior.level * shape(times)
        values = values + noise_model.sample(times, behavior.noise_scale, generator)
        return np.maximum(values, 0.0)

    return signal
