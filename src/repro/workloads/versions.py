"""Versioned application variants: the family cascade's workload side.

A new release of an application shifts its metric working set a little —
a refactored allocator maps a few more pages, a new kernel loop nudges
instruction mix — but does not move it to a different operating point.
:class:`VersionedAppModel` models exactly that: it wraps a base
:class:`~repro.workloads.base.AppModel` and multiplies every base level
by ``1 + drift``, leaving phases, shapes, durations, and execution
variation identical.

The drift magnitude is the whole point.  For the calibrated
``nr_mapped_vmstat`` levels (4-digit values around 2000–8000), a
relative shift of a few tenths of a percent moves the value to a *new
key at rounding depth 3* while staying inside the *same bucket at depth
2* on most nodes — so a versioned variant is exactly what the family
cascade's ``near-family`` verdict exists for: full-depth miss, coarse
hit.  Drifts derived by :func:`make_versioned_app` stay in
``±[0.0025, 0.0045]``, below the tightest depth-2 half-bucket of the
calibrated levels (the cryptominer's 2140 tolerates < 0.467 %) while
clearing the depth-3 quantum (> 0.234 % at 2140).  Values with five
calibrated digits (miniAMR's 10600+) need fine depth 4 to separate —
the same Table 1 precision caveat the flat dictionary has.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro._util.hashing import stable_hash
from repro.telemetry.metrics import MetricSpec
from repro.workloads.base import AppModel
from repro.workloads.registry import WorkloadRegistry, default_workloads

#: Drift magnitude window: above the depth-3 quantum of the smallest
#: calibrated level, below the tightest depth-2 half-bucket.
DRIFT_RANGE = (0.0025, 0.0045)

#: Well-separated drift slots.  Consecutive versions of one family take
#: consecutive slots (see :func:`make_version_family`), so the first two
#: versions drift in *opposite* directions with the widest available
#: separation (0.72 % relative) — comfortably more than the per-execution
#: level jitter of the calibrated metrics (±2σ ≈ 0.3 %), so two versions
#: never share a depth-3 key even across noisy executions, while every
#: slot stays inside the depth-2 half-bucket of the calibrated levels
#: (the miner's 2140 tolerates < 0.467 %).
DRIFT_SLOTS = (+0.0027, -0.0045, -0.0027, +0.0045)


class VersionedAppModel(AppModel):
    """A version/variant of an existing application model.

    The variant's name is ``"<base>-<version>"`` — the dash-digit suffix
    :func:`repro.family.split_version` parses — and its levels are the
    base model's levels scaled by ``1 + drift``.  Level derivation
    delegates to the *base* model (under the base application's name),
    so a variant stays on its family's lattice slot for derived metrics
    instead of drawing a fresh unrelated level, and inherits calibrated
    levels verbatim before the drift is applied.
    """

    def __init__(self, base: AppModel, version: str, drift: float):
        if not version:
            raise ValueError("version must be non-empty")
        if not version[0].isdigit() and not (
            version[0] == "v" and len(version) > 1 and version[1].isdigit()
        ):
            raise ValueError(
                f"version must start with a digit (or 'v' + digit) so the "
                f"family heuristic can parse it back, got {version!r}"
            )
        if not -0.02 <= drift <= 0.02:
            raise ValueError(f"drift must be in [-0.02, 0.02], got {drift}")
        super().__init__(
            f"{base.name}-{version}",
            calibrated_levels=base.calibrated_levels,
            input_coupling=base.input_coupling,
            exec_sigma_overrides=base.exec_sigma_overrides,
            init_duration=base.init_duration,
            base_duration=base.base_duration,
            node0_bias=base.node0_bias,
            node_correlation=base.node_correlation,
        )
        self.base = base
        self.version = version
        self.drift = float(drift)

    def base_level(
        self,
        metric: MetricSpec,
        input_name: str,
        node: int,
        n_nodes: int,
    ) -> float:
        """The base application's level, shifted by the version drift."""
        return self.base.base_level(metric, input_name, node, n_nodes) * (
            1.0 + self.drift
        )

    def __repr__(self) -> str:
        return (
            f"VersionedAppModel({self.base.name!r}, version={self.version!r}, "
            f"drift={self.drift:+.4f})"
        )


def _resolve_base(base: Union[AppModel, str]) -> AppModel:
    if isinstance(base, AppModel):
        return base
    registry = default_workloads()
    if base in registry:
        return registry.get(base)
    if base == "xmr_miner":
        from repro.workloads.cryptominer import make_cryptominer

        return make_cryptominer()
    raise KeyError(
        f"unknown base application {base!r}; known: "
        f"{registry.names() + ['xmr_miner']}"
    )


def make_versioned_app(
    base: Union[AppModel, str],
    version: str,
    drift: Optional[float] = None,
) -> VersionedAppModel:
    """Build a versioned variant of ``base`` (a model or a known name).

    When ``drift`` is None a deterministic signed drift is derived from
    ``(base, version)`` inside :data:`DRIFT_RANGE`, so distinct versions
    of one application land on distinct fine keys, reproducibly.
    """
    model = _resolve_base(base)
    if drift is None:
        slot = stable_hash(model.name, version, "drift-slot") % len(DRIFT_SLOTS)
        drift = DRIFT_SLOTS[slot]
    return VersionedAppModel(model, version, drift)


def make_version_family(
    base: Union[AppModel, str],
    versions: Sequence[str],
) -> List[VersionedAppModel]:
    """Variants of one application, one per version string.

    Drift slots are assigned round-robin in ``versions`` order — unlike
    hash-derived drifts this cannot put two versions of one family on
    the same slot (up to ``len(DRIFT_SLOTS)`` versions), so every
    variant is a distinct depth-3 fingerprint of the same family."""
    model = _resolve_base(base)
    return [
        VersionedAppModel(model, v, DRIFT_SLOTS[i % len(DRIFT_SLOTS)])
        for i, v in enumerate(versions)
    ]


def versioned_workloads(
    families: Optional[Sequence[str]] = None,
    versions: Sequence[str] = ("1.0", "2.0"),
) -> WorkloadRegistry:
    """A registry of versioned variants for the family-cascade scenario.

    Each named family (default: ``ft``, ``mg``, ``sp``, plus the
    ``xmrig`` miner) contributes one variant per version string —
    ``ft-1.0``, ``ft-2.0``, ... — ready for
    :class:`~repro.family.FamilySpec.from_apps` to regroup.
    """
    names = list(families) if families is not None else ["ft", "mg", "sp", "xmr_miner"]
    models = {}
    for name in names:
        for variant in make_version_family(name, versions):
            models[variant.name] = variant
    return WorkloadRegistry(models)
