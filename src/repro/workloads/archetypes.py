"""Temporal shape archetypes for metric signals.

Every metric's compute-phase signal is its base level multiplied by a
shape archetype.  Shapes are multiplicative modulations around 1.0 so
that the *interval mean* stays close to the base level (the EFD's
feature), while the full-window series keeps realistic texture for the
Taxonomist baseline's richer statistical features.

All functions are vectorized over the time grid.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

ShapeFn = Callable[[np.ndarray], np.ndarray]


def plateau(times: np.ndarray, *, amp: float, period: float, phase: float) -> np.ndarray:
    """Nearly flat level with a faint slow oscillation.

    Memory-footprint metrics (nr_mapped, Committed_AS, ...) settle onto a
    stable plateau once the working set is allocated — the property the
    EFD exploits.
    """
    return 1.0 + amp * np.sin(2.0 * np.pi * times / period + phase)


def periodic(times: np.ndarray, *, amp: float, period: float, phase: float) -> np.ndarray:
    """Pronounced iteration-driven oscillation (communication counters)."""
    base = np.sin(2.0 * np.pi * times / period + phase)
    second = 0.35 * np.sin(4.0 * np.pi * times / period + 2.1 * phase)
    return 1.0 + amp * (base + second)


def bursty(times: np.ndarray, *, amp: float, period: float, phase: float) -> np.ndarray:
    """On/off burst pattern (I/O flushes, halo exchanges).

    A smoothed square wave: value sits near ``1 - amp/2`` between bursts
    and ``1 + amp/2`` during bursts, preserving a mean near 1.
    """
    carrier = np.sin(2.0 * np.pi * times / period + phase)
    square = np.tanh(6.0 * carrier)
    return 1.0 + 0.5 * amp * square


def ramp(times: np.ndarray, *, amp: float, period: float, phase: float) -> np.ndarray:
    """Slow monotone growth (e.g. page-cache fill, AMR refinement).

    Normalized so the modulation passes 1.0 mid-window of ``period``.
    """
    frac = np.clip(times / max(period * 8.0, 1e-9), 0.0, 1.0)
    return 1.0 + amp * (frac - 0.5)


def noisy_flat(times: np.ndarray, *, amp: float, period: float, phase: float) -> np.ndarray:
    """Flat with deterministic high-frequency texture (CPU-time rates)."""
    fast = np.sin(2.0 * np.pi * times / max(period / 7.0, 1.0) + phase)
    slow = np.sin(2.0 * np.pi * times / (period * 3.0) + 0.7 * phase)
    return 1.0 + amp * (0.6 * fast + 0.4 * slow)


SHAPES: Dict[str, ShapeFn] = {
    "plateau": plateau,
    "periodic": periodic,
    "bursty": bursty,
    "ramp": ramp,
    "noisy_flat": noisy_flat,
}

#: Default modulation amplitude per archetype.  Plateau metrics stay
#: within a fraction of a percent of their level; communication counters
#: swing by tens of percent.
DEFAULT_AMPLITUDE: Dict[str, float] = {
    "plateau": 0.004,
    "periodic": 0.10,
    "bursty": 0.30,
    "ramp": 0.05,
    "noisy_flat": 0.10,
}

#: Per-archetype modulation period ranges in seconds.  Periodic
#: (iteration-driven) counters oscillate fast enough that a 60 s interval
#: mean averages the cycle out — the property that keeps NIC fingerprints
#: repeatable in Table 3; slower shapes may wander over tens of seconds.
PERIOD_RANGE: Dict[str, tuple] = {
    "plateau": (20.0, 60.0),
    "periodic": (6.0, 16.0),
    "bursty": (10.0, 30.0),
    "ramp": (20.0, 60.0),
    "noisy_flat": (10.0, 40.0),
}


def make_shape(
    archetype: str,
    *,
    amp: float,
    period: float,
    phase: float,
) -> ShapeFn:
    """Bind an archetype's parameters into a unary time function."""
    try:
        fn = SHAPES[archetype]
    except KeyError:
        raise ValueError(
            f"unknown archetype {archetype!r}; known: {sorted(SHAPES)}"
        ) from None
    if amp < 0:
        raise ValueError(f"amp must be >= 0, got {amp}")
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")

    def shape(times: np.ndarray) -> np.ndarray:
        return fn(times, amp=amp, period=period, phase=phase)

    return shape
