"""Command-line interface: ``efd`` (or ``python -m repro``).

Subcommands
-----------
- ``efd generate --out data.npz`` — build a synthetic Taxonomist-style
  dataset.
- ``efd fit --data data.npz --out efd.json`` — learn a dictionary.
- ``efd recognize --efd efd.json --data data.npz`` — recognize
  executions.
- ``efd experiment --name normal_fold`` — run one of the paper's five
  experiments end to end.
- ``efd tables`` — render the paper's Tables 1/2/4.
- ``efd info`` — registry and configuration overview.
- ``efd engine ...`` — the sharded/batch recognition engine: ``selftest``
  (smoke-check shard/batch/columnar equivalence), ``shard`` (partition a
  flat dictionary JSON into a shard directory, ``--format json|columnar``),
  ``compact``/``expand`` (convert a shard directory between the JSON and
  columnar npz layouts, in place or to ``--out``; ``compact`` also folds
  a columnar directory's pending delta-log, and ``expand`` refuses one),
  ``reshard`` (rewrite a directory at a new shard count without a
  relearn), ``recognize`` (batch recognition against a shard directory,
  either layout), ``info`` (shard occupancy, layout, and pending
  delta-log records, plus ``--stats`` to render a service counter
  snapshot).
- ``efd serve`` — async live-session recognition: NDJSON telemetry
  samples in (stdin, file, or — with ``--listen``/``--uds`` — many
  concurrent network producers), per-job verdicts out, with
  bounded-queue backpressure, optional ``--retention-*`` auto-pruning,
  and graceful drain on SIGTERM; ``--demo`` runs a self-contained
  synthetic stream.
- ``efd replay`` — the producer half: stream a JSONL sample file to a
  listening ``efd serve`` over TCP (``--connect``) or a Unix socket
  (``--uds``), optionally split across ``--producers`` concurrent
  connections.

Every subcommand is documented with examples in ``docs/cli.md``; the
network protocol and serving operations guide live in
``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("--out", required=True, help="output .npz path")
    p.add_argument("--metrics", nargs="+", default=["nr_mapped_vmstat"])
    p.add_argument("--repetitions", type=int, default=10)
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--duration-cap", type=float, default=None)


def _add_fit(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("fit", help="learn an EFD from a dataset")
    p.add_argument("--data", required=True, help="dataset .npz path")
    p.add_argument("--out", required=True, help="output dictionary JSON path")
    p.add_argument("--metric", default="nr_mapped_vmstat")
    p.add_argument("--depth", type=int, default=None,
                   help="fixed rounding depth (default: tuned by CV)")
    p.add_argument("--interval", nargs=2, type=float, default=[60.0, 120.0])


def _add_recognize(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("recognize", help="recognize executions with an EFD")
    p.add_argument("--efd", required=True, help="dictionary JSON path")
    p.add_argument("--data", required=True, help="dataset .npz path")
    p.add_argument("--metric", default="nr_mapped_vmstat")
    p.add_argument("--depth", type=int, required=True,
                   help="rounding depth the dictionary was built with")
    p.add_argument("--interval", nargs=2, type=float, default=[60.0, 120.0])


def _add_experiment(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("experiment", help="run one of the paper's experiments")
    p.add_argument(
        "--name",
        required=True,
        choices=["normal_fold", "soft_input", "soft_unknown",
                 "hard_input", "hard_unknown", "figure2"],
    )
    p.add_argument("--repetitions", type=int, default=6)
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--metric", default="nr_mapped_vmstat")
    p.add_argument("--folds", type=int, default=5)


def _add_tables(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("tables", help="render the paper's tables")
    p.add_argument("--which", nargs="+", default=["1", "2", "4"],
                   choices=["1", "2", "4"])
    p.add_argument("--repetitions", type=int, default=4)
    p.add_argument("--seed", type=int, default=2021)


def _add_info(sub: argparse._SubParsersAction) -> None:
    sub.add_parser("info", help="registry and configuration overview")


def _add_engine(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("engine", help="sharded / batch recognition engine")
    esub = p.add_subparsers(dest="engine_command", required=True)

    selftest = esub.add_parser(
        "selftest",
        help="smoke-check shard/batch/columnar equivalence against the "
             "flat path",
    )
    selftest.add_argument("--shards", type=int, default=4)
    selftest.add_argument("--seed", type=int, default=7)

    shard = esub.add_parser(
        "shard", help="partition a flat dictionary JSON into a shard directory"
    )
    shard.add_argument("--efd", required=True, help="flat dictionary JSON path")
    shard.add_argument("--out", required=True, help="output shard directory")
    shard.add_argument("--shards", type=int, default=8)
    shard.add_argument("--format", default="json",
                       choices=["json", "columnar", "mmap"],
                       help="on-disk layout: diffable JSON shards, the "
                            "columnar npz codec (smaller, faster to load), "
                            "or columnar with raw memory-mapped shards "
                            "(query-ready instantly, page-cache shared)")

    compact = esub.add_parser(
        "compact",
        help="convert a JSON shard directory to the columnar layout, "
             "fold a columnar directory's pending delta-log into its "
             "base, or switch the columnar storage (--layout)",
    )
    compact.add_argument("--dir", required=True, dest="directory",
                         help="JSON shard directory to convert, or a "
                              "columnar directory with a pending delta-log "
                              "or a different --layout")
    compact.add_argument("--out", default=None,
                         help="write here instead of converting in place")
    compact.add_argument("--layout", default=None,
                         choices=["npz", "mmap"],
                         help="columnar storage: compressed npz archives "
                              "(archival) or raw memory-mapped files "
                              "(serving; shared page-cache copy). Default: "
                              "npz for a JSON source, keep the current "
                              "storage for a columnar one")

    expand = esub.add_parser(
        "expand",
        help="convert a columnar directory back to the JSON shard layout "
             "(refused while a delta-log segment is unfolded)",
    )
    expand.add_argument("--dir", required=True, dest="directory",
                        help="columnar shard directory to convert")
    expand.add_argument("--out", default=None,
                        help="write here instead of converting in place")

    reshard = esub.add_parser(
        "reshard",
        help="rewrite a shard directory at a new shard count without a "
             "relearn (layout preserved; only keys whose stable hash "
             "changes assignment move)",
    )
    reshard.add_argument("--dir", required=True, dest="directory",
                         help="shard directory (JSON or columnar layout)")
    reshard.add_argument("--shards", type=int, required=True,
                         help="new shard count")
    reshard.add_argument("--out", default=None,
                         help="write here instead of resharding in place")

    recognize = esub.add_parser(
        "recognize",
        help="batch-recognize a dataset against a shard directory "
             "(JSON or columnar layout, auto-detected)",
    )
    recognize.add_argument("--efd-dir", required=True, help="shard directory")
    recognize.add_argument("--data", required=True, help="dataset .npz path")
    recognize.add_argument("--metric", default="nr_mapped_vmstat")
    recognize.add_argument("--depth", type=int, required=True,
                           help="rounding depth the dictionary was built with")
    recognize.add_argument("--interval", nargs=2, type=float,
                           default=[60.0, 120.0])
    recognize.add_argument("--backend", default="thread",
                           choices=["serial", "thread", "process"])
    recognize.add_argument("--workers", type=int, default=None)

    info = esub.add_parser(
        "info",
        help="shard directory layout/occupancy, and/or render an "
             "EngineStats snapshot (--stats)",
    )
    info.add_argument("--efd-dir", default=None, help="shard directory")
    info.add_argument("--format", default="auto",
                      choices=["auto", "json", "columnar"],
                      help="expected directory layout (auto-detected by "
                           "default; a mismatch is an error)")
    info.add_argument("--stats", default=None, metavar="JSON",
                      help="render an EngineStats snapshot written by "
                           "`efd serve --stats-out`")


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="async live-session recognition from JSONL sample streams "
             "(file, stdin, or TCP/UDS network producers)",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--efd", help="flat dictionary JSON path")
    src.add_argument("--efd-dir", help="sharded dictionary directory")
    src.add_argument("--demo", action="store_true",
                     help="self-contained demo: learn a small EFD and replay "
                          "a synthetic interleaved multi-job stream")
    src.add_argument("--remote", action="append", default=None,
                     metavar="SHARDS@HOST:PORT",
                     help="recognize against remote shard servers (`efd "
                          "shardserve`); repeatable, one spec per host — "
                          "SHARDS is a comma list of shard indexes or "
                          "'all', the endpoint HOST:PORT or unix:PATH. "
                          "Requires --remote-shards and --depth.")
    p.add_argument("--remote-shards", type=int, default=None, metavar="N",
                   help="total shard count of the remote dictionary "
                        "(required with --remote)")
    p.add_argument("--remote-deadline", type=float, default=2.0,
                   help="wall-clock budget in seconds per remote "
                        "scatter/gather batch")
    p.add_argument("--remote-try-timeout", type=float, default=0.5,
                   help="per-attempt socket timeout on one remote call")
    p.add_argument("--remote-retries", type=int, default=2,
                   help="bounded retries per remote request")
    p.add_argument("--remote-backoff-base", type=float, default=0.05,
                   help="base seconds of the full-jitter retry backoff")
    p.add_argument("--remote-backoff-cap", type=float, default=1.0,
                   help="ceiling seconds of the retry backoff envelope")
    p.add_argument("--remote-hedge-delay", type=float, default=0.05,
                   help="floor seconds before a quiet primary host is "
                        "hedged to the shard's next replica")
    p.add_argument("--remote-hedge-percentile", type=float, default=0.95,
                   help="latency percentile of recent calls past which a "
                        "hedge launches")
    p.add_argument("--remote-breaker-failures", type=int, default=3,
                   help="consecutive failures that trip a host's circuit "
                        "breaker open")
    p.add_argument("--remote-breaker-reset", type=float, default=1.0,
                   help="seconds an open breaker waits before one "
                        "half-open probe call")
    p.add_argument("--remote-pool-size", type=int, default=4,
                   help="persistent connections kept per shard host")
    p.add_argument("--remote-pipeline-chunk", type=int, default=4096,
                   help="keys per binary v2 probe frame; larger buckets "
                        "pipeline multiple frames per connection")
    p.add_argument("--remote-no-filter-mirrors", action="store_true",
                   help="disable the client-side Bloom filter mirrors "
                        "(every probe then crosses the wire)")
    p.add_argument("--remote-protocol", choices=("auto", "json"),
                   default="auto",
                   help="'auto' negotiates binary protocol v2 (falling "
                        "back to JSON against v1 servers); 'json' pins v1")
    p.add_argument("--input", default="-",
                   help="JSONL sample stream: a file path, or '-' for stdin "
                        "(ignored with --demo/--listen/--uds)")
    p.add_argument("--listen", default=None, metavar="HOST:PORT",
                   help="accept NDJSON producers over TCP (port 0 binds an "
                        "ephemeral port; may be combined with --uds)")
    p.add_argument("--uds", default=None, metavar="PATH",
                   help="accept NDJSON producers over a Unix domain socket")
    p.add_argument("--publish", default=None, metavar="HOST:PORT",
                   help="publish this columnar --efd-dir to replication "
                        "followers over TCP (port 0 binds an ephemeral "
                        "port; requires --efd-dir)")
    p.add_argument("--publish-uds", default=None, metavar="PATH",
                   help="publish to replication followers over a Unix "
                        "domain socket (may be combined with --publish)")
    p.add_argument("--follow", default=None, metavar="HOST:PORT",
                   help="serve as a replica of the leader publishing at "
                        "this TCP endpoint (requires --efd-dir; the "
                        "directory is bootstrapped if absent)")
    p.add_argument("--follow-uds", default=None, metavar="PATH",
                   help="serve as a replica of the leader publishing at "
                        "this Unix-domain-socket path")
    p.add_argument("--retention-age", type=float, default=None,
                   metavar="SECONDS",
                   help="auto-forget completed sessions this long after "
                        "their verdict (default: retain forever)")
    p.add_argument("--retention-max-done", type=int, default=None,
                   metavar="N",
                   help="retain at most N completed sessions; oldest "
                        "verdicts are forgotten first")
    p.add_argument("--metric", default="nr_mapped_vmstat")
    p.add_argument("--depth", type=int, default=None,
                   help="rounding depth the dictionary was built with "
                        "(required unless --demo)")
    p.add_argument("--interval", nargs=2, type=float, default=[60.0, 120.0])
    p.add_argument("--nodes", type=int, default=4,
                   help="node count for jobs whose samples omit 'nodes'")
    p.add_argument("--queue-size", type=int, default=4096,
                   help="bounded ingest queue capacity")
    p.add_argument("--policy", default="block", choices=["block", "shed"],
                   help="backpressure when the queue is full")
    p.add_argument("--max-sessions", type=int, default=10_000)
    p.add_argument("--batch-size", type=int, default=64,
                   help="max sessions per recognition micro-batch")
    p.add_argument("--batch-delay", type=float, default=0.01,
                   help="seconds to wait for a micro-batch to fill")
    p.add_argument("--session-timeout", type=float, default=None,
                   help="evict sessions idle this many seconds (default: never)")
    p.add_argument("--evict", default="force", choices=["force", "drop"],
                   help="eviction outcome: early verdict, or error")
    p.add_argument("--backend", default="serial",
                   choices=["serial", "thread", "process"],
                   help="engine shard fan-out backend")
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--family", action="store_true",
                   help="serve family-cascade verdicts: a coarse family "
                        "tier at --family-coarse-depth screens probes "
                        "before the full-depth dictionary, and 'same app, "
                        "new version' is reported as near-family instead "
                        "of unknown")
    p.add_argument("--family-coarse-depth", type=int, default=1,
                   help="rounding depth of the coarse family tier "
                        "(must be <= --depth)")
    p.add_argument("--family-spec", default=None, metavar="SPEC.json",
                   help="family spec from `efd family build` (default: "
                        "derive families from version suffixes of the "
                        "dictionary's app names)")
    p.add_argument("--no-compact-on-close", action="store_true",
                   help="leave a columnar dictionary's pending delta-log "
                        "unfolded at shutdown (records replay on next load)")
    p.add_argument("--stats-out", default=None, metavar="JSON",
                   help="write the final EngineStats snapshot here")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-verdict lines")
    p.add_argument("--demo-jobs", type=int, default=12,
                   help="concurrent jobs in the --demo stream")
    p.add_argument("--seed", type=int, default=7,
                   help="--demo dataset seed")


def _add_shardserve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "shardserve",
        help="serve a slice of a dictionary's shard space to remote "
             "probe clients (`efd serve --remote`)",
    )
    p.add_argument("--dir", required=True, dest="directory",
                   help="sharded/columnar dictionary directory to serve")
    p.add_argument("--shards", default=None, metavar="A,B,C",
                   help="comma list of shard indexes this host owns "
                        "(default: every shard — a full replica)")
    p.add_argument("--n-shards", type=int, default=None, metavar="N",
                   help="total shard count of the logical dictionary "
                        "(default: the store's own shard count)")
    ep = p.add_mutually_exclusive_group(required=True)
    ep.add_argument("--listen", default=None, metavar="HOST:PORT",
                    help="accept probe clients over TCP (port 0 binds an "
                         "ephemeral port)")
    ep.add_argument("--uds", default=None, metavar="PATH",
                    help="accept probe clients over a Unix domain socket")
    p.add_argument("--stats-out", default=None, metavar="JSON",
                   help="write the final EngineStats snapshot here")


def _add_promote(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "promote",
        help="failover: elect the most-advanced replica among the "
             "candidates, promote it to leader, re-point the rest at it",
    )
    p.add_argument("--candidates", nargs="+", required=True,
                   metavar="HOST:PORT|unix:PATH",
                   help="replication endpoints (`efd serve --publish` "
                        "addresses) of the surviving replicas")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="seconds to wait on each control round-trip")


def _add_replay(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "replay",
        help="stream a JSONL sample file to a listening `efd serve` "
             "over TCP or a Unix socket",
    )
    p.add_argument("--input", required=True,
                   help="JSONL sample file, or '-' for stdin")
    dst = p.add_mutually_exclusive_group(required=True)
    dst.add_argument("--connect", default=None, metavar="HOST:PORT",
                     help="TCP endpoint of the listening server")
    dst.add_argument("--uds", default=None, metavar="PATH",
                     help="Unix-domain-socket path of the listening server")
    p.add_argument("--producers", type=int, default=1,
                   help="split the stream by job id across this many "
                        "concurrent connections")
    p.add_argument("--batch-lines", type=int, default=256,
                   help="lines written between producer-side drain calls")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the per-connection summary lines")


def _add_family(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "family",
        help="hierarchical recognition: group labels into app families, "
             "cascade coarse family tier -> full-depth variant tier",
    )
    fsub = p.add_subparsers(dest="family_command", required=True)

    build = fsub.add_parser(
        "build",
        help="derive a family hierarchy from a dictionary's label->app "
             "mapping (or an explicit spec) and write it as JSON",
    )
    src = build.add_mutually_exclusive_group(required=True)
    src.add_argument("--efd", help="flat dictionary JSON path")
    src.add_argument("--efd-dir", help="sharded dictionary directory")
    build.add_argument("--depth", type=int, required=True,
                       help="rounding depth the dictionary was built with "
                            "(the cascade's fine depth)")
    build.add_argument("--coarse-depth", type=int, default=1,
                       help="rounding depth of the coarse family tier")
    build.add_argument("--map", action="append", default=None,
                       metavar="APP=FAMILY",
                       help="explicit family assignment (repeatable); "
                            "unmapped apps fall back to the version-suffix "
                            "heuristic (app-1.2 -> family 'app')")
    build.add_argument("--out", default=None, metavar="SPEC.json",
                       help="write the family spec JSON here")

    report = fsub.add_parser(
        "report",
        help="cascade a dataset: distinguish 'same app, new version' "
             "(near-family) from 'unknown app' per execution",
    )
    src = report.add_mutually_exclusive_group(required=True)
    src.add_argument("--efd", help="flat dictionary JSON path")
    src.add_argument("--efd-dir", help="sharded dictionary directory")
    report.add_argument("--data", required=True, help="dataset .npz path")
    report.add_argument("--depth", type=int, required=True,
                        help="rounding depth the dictionary was built with")
    report.add_argument("--coarse-depth", type=int, default=1,
                        help="rounding depth of the coarse family tier "
                             "(overridden by --spec's recorded depth)")
    report.add_argument("--spec", default=None, metavar="SPEC.json",
                        help="family spec from `efd family build` "
                             "(default: derive families from version "
                             "suffixes of the dictionary's app names)")
    report.add_argument("--metric", default="nr_mapped_vmstat")
    report.add_argument("--interval", nargs=2, type=float,
                        default=[60.0, 120.0])
    report.add_argument("--backend", default="serial",
                        choices=["serial", "thread", "process"])
    report.add_argument("--workers", type=int, default=None)
    report.add_argument("--quiet", action="store_true",
                        help="suppress per-execution verdict lines")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="efd",
        description="Execution Fingerprint Dictionary for HPC application "
                    "recognition (CLUSTER 2021 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_fit(sub)
    _add_recognize(sub)
    _add_experiment(sub)
    _add_tables(sub)
    _add_info(sub)
    _add_engine(sub)
    _add_family(sub)
    _add_serve(sub)
    _add_shardserve(sub)
    _add_promote(sub)
    _add_replay(sub)
    return parser


# ---------------------------------------------------------------------------
# Command implementations (imports deferred so `--help` stays snappy)
# ---------------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data.io import save_dataset
    from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator

    config = DatasetConfig(
        metrics=tuple(args.metrics),
        repetitions=args.repetitions,
        seed=args.seed,
        duration_cap=args.duration_cap,
    )
    dataset = TaxonomistDatasetGenerator(config).generate()
    save_dataset(dataset, args.out)
    summary = dataset.summary()
    print(
        f"wrote {summary['executions']} executions "
        f"({summary['pairs']} app-input pairs x {args.repetitions} reps, "
        f"{summary['metrics']} metric(s)) to {args.out}"
    )
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.core.recognizer import EFDRecognizer
    from repro.core.serialization import save_dictionary
    from repro.data.io import load_dataset

    dataset = load_dataset(args.data)
    recognizer = EFDRecognizer(
        metric=args.metric,
        interval=(args.interval[0], args.interval[1]),
        depth=args.depth,
    ).fit(dataset)
    save_dictionary(recognizer.dictionary_, args.out)
    stats = recognizer.stats()
    print(
        f"learned EFD: depth={recognizer.depth_}, keys={stats.n_keys}, "
        f"insertions={stats.n_insertions}, "
        f"pruning_ratio={stats.pruning_ratio:.2f} -> {args.out}"
    )
    return 0


def _cmd_recognize(args: argparse.Namespace) -> int:
    from repro.core.fingerprint import build_fingerprints
    from repro.core.matcher import match_fingerprints
    from repro.core.serialization import load_dictionary
    from repro.data.io import load_dataset

    efd = load_dictionary(args.efd)
    dataset = load_dataset(args.data)
    interval = (args.interval[0], args.interval[1])
    correct = 0
    for record in dataset:
        fps = build_fingerprints(record, args.metric, args.depth, interval)
        result = match_fingerprints(efd, fps)
        prediction = result.prediction or "unknown"
        marker = "OK " if prediction == record.app_name else "MISS"
        if prediction == record.app_name:
            correct += 1
        print(
            f"{marker} record {record.record_id:4d} true={record.label:14s} "
            f"predicted={prediction:12s} votes={dict(result.votes)}"
        )
    total = len(dataset)
    print(f"accuracy: {correct}/{total} = {correct / total:.3f}" if total else
          "empty dataset")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
    from repro.experiments.figures import figure2_series, render_figure2
    from repro.experiments.protocol import make_efd_factory, run_experiment

    config = DatasetConfig(
        metrics=(args.metric,), repetitions=args.repetitions, seed=args.seed
    )
    dataset = TaxonomistDatasetGenerator(config).generate()
    if args.name == "figure2":
        series = figure2_series(dataset, efd_metric=args.metric, k=args.folds,
                                seed=args.seed)
        print(render_figure2(series))
        return 0
    result = run_experiment(
        args.name, dataset, make_efd_factory(metric=args.metric, seed=args.seed),
        k=args.folds, seed=args.seed,
    )
    print(result)
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
    from repro.experiments.tables import (
        example_efd,
        render_table1,
        render_table2,
        render_table4,
    )

    if "1" in args.which:
        print(render_table1())
        print()
    if "2" in args.which or "4" in args.which:
        config = DatasetConfig(repetitions=args.repetitions, seed=args.seed)
        dataset = TaxonomistDatasetGenerator(config).generate()
        if "2" in args.which:
            print(render_table2(dataset))
            print()
        if "4" in args.which:
            from repro.experiments.tables import render_table4 as _render4

            print(_render4(example_efd(dataset)))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.telemetry.metrics import default_registry, TABLE3_METRICS
    from repro.workloads.registry import APP_NAMES, STARRED_APPS, default_workloads

    registry = default_registry()
    workloads = default_workloads()
    print(f"repro {__version__} — EFD reproduction (CLUSTER 2021)")
    print(f"metric registry : {len(registry)} metrics in groups {registry.groups()}")
    print(f"paper metrics   : {list(TABLE3_METRICS)[:4]} ...")
    print(f"applications    : {APP_NAMES}")
    print(f"with input L    : {STARRED_APPS}")
    print(f"app-input pairs : {len(workloads.app_input_pairs())}")
    return 0


def _cmd_engine_selftest(args: argparse.Namespace) -> int:
    import tempfile

    from repro.core.fingerprint import build_fingerprints
    from repro.core.matcher import match_fingerprints
    from repro.core.recognizer import EFDRecognizer
    from repro.core.streaming import StreamingRecognizer
    from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
    from repro.engine import (
        BatchRecognizer,
        ShardedDictionary,
        load_sharded,
        save_sharded,
    )

    config = DatasetConfig(
        metrics=("nr_mapped_vmstat",),
        repetitions=3,
        seed=args.seed,
        duration_cap=150.0,
        apps=("ft", "mg", "lu", "CoMD"),
    )
    dataset = TaxonomistDatasetGenerator(config).generate()
    recognizer = EFDRecognizer(depth=2).fit(dataset)
    flat = recognizer.dictionary_
    records = list(dataset)
    sequential = [
        match_fingerprints(
            flat, build_fingerprints(r, "nr_mapped_vmstat", 2)
        )
        for r in records
    ]
    failures = []

    sharded = ShardedDictionary.from_flat(flat, args.shards)
    for record in records:
        fps = build_fingerprints(record, "nr_mapped_vmstat", 2)
        if match_fingerprints(sharded, fps) != match_fingerprints(flat, fps):
            failures.append(f"sharded lookup mismatch on record {record.record_id}")
            break
    engine = None
    for backend in ("serial", "thread", "process"):
        engine = BatchRecognizer(
            sharded, depth=2, backend=backend, n_workers=2
        )
        if engine.recognize_records(records) != sequential:
            failures.append(f"batch mismatch on backend {backend!r}")

    streaming = StreamingRecognizer.from_recognizer(recognizer)
    sessions = []
    for record in records[:8]:
        session = streaming.open_session(n_nodes=record.n_nodes)
        for node in range(record.n_nodes):
            series = record.series("nr_mapped_vmstat", node)
            session.ingest_many(node, series.times, series.values)
        sessions.append(session)
    batch_verdicts = BatchRecognizer(
        sharded, depth=2, backend="serial"
    ).recognize_sessions(sessions, force=True)
    if batch_verdicts != [s.verdict(force=True) for s in sessions]:
        failures.append("session batch mismatch")

    with tempfile.TemporaryDirectory() as tmp:
        save_sharded(sharded, tmp)
        restored = load_sharded(tmp)
        for record in records:
            fps = build_fingerprints(record, "nr_mapped_vmstat", 2)
            if restored.lookup(fps[0]) != flat.lookup(fps[0]):
                failures.append("round-trip lookup mismatch")
                break

    from repro.engine import load_columnar, save_columnar

    with tempfile.TemporaryDirectory() as tmp:
        save_columnar(sharded, tmp)
        columnar = load_columnar(tmp)
        engine = BatchRecognizer(columnar, depth=2)
        if engine.recognize_records(records) != sequential:
            failures.append("columnar batch mismatch")
        if list(columnar.entries()) != list(flat.entries()):
            failures.append("columnar round-trip entries mismatch")

    print(
        f"engine selftest: {len(records)} executions, "
        f"{len(flat)} keys across {args.shards} shard(s) "
        f"{sharded.shard_sizes()}"
    )
    if engine is not None:
        print(engine.stats.render())
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("PASS: sharded/batch/streaming/round-trip all equivalent")
    return 0


def _cmd_engine_shard(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_dictionary
    from repro.engine import ShardedDictionary, save_columnar, save_sharded

    flat = load_dictionary(args.efd)
    sharded = ShardedDictionary.from_flat(flat, args.shards)
    if args.format in ("columnar", "mmap"):
        save_columnar(
            sharded, args.out,
            storage="mmap" if args.format == "mmap" else "npz",
        )
    else:
        save_sharded(sharded, args.out)
    print(
        f"sharded {len(flat)} keys into {args.shards} shard(s) "
        f"[{args.format}] {sharded.shard_sizes()} -> {args.out}"
    )
    return 0


def _cmd_engine_compact(args: argparse.Namespace) -> int:
    from repro.engine import compact_shards

    try:
        summary = compact_shards(
            args.directory, out=args.out, layout=args.layout
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"engine compact: {exc}", file=sys.stderr)
        return 2
    if "folded_records" in summary:
        print(
            f"folded {summary['folded_records']} delta-log record(s) into "
            f"{summary['n_keys']} keys across {summary['n_shards']} "
            f"shard(s): {summary['columnar_bytes']} B columnar "
            f"[{summary['storage']}] at {summary['directory']}"
        )
        return 0
    ratio = (summary["json_bytes"] / summary["columnar_bytes"]
             if summary["columnar_bytes"] else float("inf"))
    print(
        f"compacted {summary['n_keys']} keys across "
        f"{summary['n_shards']} shard(s): "
        f"{summary['json_bytes']} B JSON -> "
        f"{summary['columnar_bytes']} B columnar [{summary['storage']}] "
        f"({ratio:.1f}x smaller) at {summary['directory']}"
    )
    return 0


def _cmd_engine_expand(args: argparse.Namespace) -> int:
    from repro.engine import PendingDeltaError, expand_shards

    try:
        summary = expand_shards(args.directory, out=args.out)
    except PendingDeltaError as exc:
        print(f"engine expand: {exc}", file=sys.stderr)
        return 2
    print(
        f"expanded {summary['n_keys']} keys across "
        f"{summary['n_shards']} shard(s): "
        f"{summary['columnar_bytes']} B columnar -> "
        f"{summary['json_bytes']} B JSON at {summary['directory']}"
    )
    return 0


def _cmd_engine_reshard(args: argparse.Namespace) -> int:
    from repro.engine import reshard

    summary = reshard(args.directory, args.shards, out=args.out)
    print(
        f"resharded {summary['n_keys']} keys [{summary['layout']}]: "
        f"{summary['old_shards']} -> {summary['new_shards']} shard(s), "
        f"{summary['moved_keys']} key(s) moved, occupancy "
        f"{summary['shard_sizes']} at {summary['directory']}"
    )
    return 0


def _cmd_engine_recognize(args: argparse.Namespace) -> int:
    from repro.data.io import load_dataset
    from repro.engine import BatchRecognizer, load_sharded

    sharded = load_sharded(args.efd_dir)
    dataset = load_dataset(args.data)
    engine = BatchRecognizer(
        sharded,
        metric=args.metric,
        depth=args.depth,
        interval=(args.interval[0], args.interval[1]),
        backend=args.backend,
        n_workers=args.workers,
    )
    records = list(dataset)
    predictions = engine.predict(records)
    correct = sum(
        1 for r, p in zip(records, predictions) if p == r.app_name
    )
    print(engine.stats.render())
    total = len(records)
    print(f"accuracy: {correct}/{total} = {correct / total:.3f}" if total else
          "empty dataset")
    return 0


def _cmd_engine_info(args: argparse.Namespace) -> int:
    if args.efd_dir is None and args.stats is None:
        print("engine info: pass --efd-dir and/or --stats", file=sys.stderr)
        return 2
    if args.efd_dir is not None:
        from repro.engine import is_columnar, load_sharded

        layout = "columnar" if is_columnar(args.efd_dir) else "json"
        expected = getattr(args, "format", "auto")
        if expected != "auto" and expected != layout:
            print(
                f"engine info: {args.efd_dir} holds a {layout} layout, "
                f"not {expected}",
                file=sys.stderr,
            )
            return 2
        try:
            sharded = load_sharded(args.efd_dir)
            stats = sharded.stats()
        except (FileNotFoundError, ValueError) as exc:
            # A manifest referencing a missing/corrupt shard, filter,
            # or key-order file names the offender — report it, don't
            # traceback.
            print(f"engine info: {exc}", file=sys.stderr)
            return 2
        storage = getattr(sharded, "storage", None)
        print(f"sharded EFD at {args.efd_dir}")
        print(f"layout      : {layout}"
              + (f" ({storage})" if storage else ""))
        filters = getattr(sharded, "filter_info", None)
        if filters is not None:
            info = filters()
            if info is not None:
                print(f"filters     : per-shard Bloom, "
                      f"{info['bits_per_key']} bits/key, "
                      f"fp_bound={info['fp_bound']:.4f}")
        pending = getattr(sharded, "delta_pending", 0)
        if pending:
            print(f"delta-log   : {pending} pending record(s) "
                  f"(fold with `efd engine compact`)")
        print(f"shards      : {sharded.n_shards}, occupancy {sharded.shard_sizes()}")
        print(
            f"keys        : {stats.n_keys} from {stats.n_insertions} insertions "
            f"(pruning_ratio={stats.pruning_ratio:.2f})"
        )
        print(
            f"labels      : {stats.n_labels}, colliding_keys={stats.n_colliding_keys}, "
            f"max_labels_per_key={stats.max_labels_per_key}"
        )
        print(f"metrics     : {sharded.metrics()}")
    if args.stats is not None:
        import json

        from repro.engine import EngineStats

        with open(args.stats, "r", encoding="utf-8") as fh:
            snapshot = EngineStats.from_dict(json.load(fh))
        print(f"engine counters from {args.stats}")
        print(snapshot.render())
    return 0


def _parse_hostport(value: str) -> tuple:
    """``HOST:PORT`` / ``:PORT`` / ``PORT`` -> (host, port)."""
    host, sep, port = value.rpartition(":")
    if not sep:
        host = ""
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise SystemExit(f"invalid HOST:PORT {value!r}")


def _serve_build_engine(args: argparse.Namespace, listening: bool = False):
    """Dictionary + depth from --efd / --efd-dir / --demo; returns
    (engine, sample iterable, expected labels or None, file to close
    or None).  In ``listening`` mode samples come over the network, so
    no local sample source is opened."""
    from repro.engine import BatchRecognizer
    from repro.serve import interleave_records, read_samples

    if args.demo:
        from repro.core.recognizer import EFDRecognizer
        from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator

        config = DatasetConfig(
            metrics=(args.metric,),
            repetitions=3,
            seed=args.seed,
            duration_cap=150.0,
            apps=("ft", "mg", "lu", "CoMD"),
        )
        dataset = TaxonomistDatasetGenerator(config).generate()
        # Honor --depth/--interval in demo mode too: the dictionary and
        # the serving engine must agree, or verdicts silently miss.
        recognizer = EFDRecognizer(
            metric=args.metric,
            depth=args.depth if args.depth is not None else 2,
            interval=(args.interval[0], args.interval[1]),
        ).fit(dataset)
        dictionary, depth = recognizer.dictionary_, recognizer.depth_
        # Stride across the (app-sorted) dataset so the demo stream
        # interleaves jobs of different applications.
        everything = list(dataset)
        stride = max(1, len(everything) // max(args.demo_jobs, 1))
        records = everything[::stride][: args.demo_jobs]
        job_ids = [f"job-{i:04d}" for i in range(len(records))]
        samples = interleave_records(records, args.metric, job_ids)
        expected = dict(zip(job_ids, (r.app_name for r in records)))
        stream_fh = None
    else:
        if args.depth is None:
            raise SystemExit("efd serve: --depth is required unless --demo")
        depth = args.depth
        if args.remote is not None:
            dictionary = _serve_remote_backend(args)
        elif args.efd is not None:
            from repro.core.serialization import load_dictionary

            dictionary = load_dictionary(args.efd)
        else:
            from repro.engine import load_sharded

            dictionary = load_sharded(args.efd_dir)
        if listening:
            stream_fh, samples = None, None
        elif args.input == "-":
            stream_fh = None
            samples = read_samples(sys.stdin)
        else:
            stream_fh = open(args.input, "r", encoding="utf-8")
            samples = read_samples(stream_fh)
        expected = None
    if getattr(args, "family", False):
        from repro.family import FamilyCascade, load_family_spec, make_family_engine

        spec = None
        coarse_depth = args.family_coarse_depth
        if args.family_spec is not None:
            spec, coarse_depth, _ = load_family_spec(args.family_spec)
        try:
            cascade = FamilyCascade(
                dictionary, spec=spec, coarse_depth=coarse_depth,
                fine_depth=depth,
            )
        except ValueError as exc:
            raise SystemExit(f"efd serve: {exc}")
        engine = make_family_engine(
            cascade,
            metric=args.metric,
            interval=(args.interval[0], args.interval[1]),
            backend=args.backend,
            n_workers=args.workers,
        )
    else:
        engine = BatchRecognizer(
            dictionary,
            metric=args.metric,
            depth=depth,
            interval=(args.interval[0], args.interval[1]),
            backend=args.backend,
            n_workers=args.workers,
        )
    if getattr(args, "remote", None) is not None:
        # One stats object end to end: the backend's remote_* counters
        # land in the same EngineStats the service renders at exit.
        dictionary.engine_stats = engine.stats
    return engine, samples, expected, stream_fh


def _serve_remote_backend(args: argparse.Namespace):
    """Build the scatter/gather client for ``efd serve --remote``."""
    from repro.engine.remote import RemoteError, RemoteShardBackend

    if args.remote_shards is None:
        raise SystemExit("efd serve: --remote requires --remote-shards "
                         "(total shard count of the remote dictionary)")
    try:
        return RemoteShardBackend(
            args.remote,
            n_shards=args.remote_shards,
            deadline=args.remote_deadline,
            try_timeout=args.remote_try_timeout,
            retries=args.remote_retries,
            backoff_base=args.remote_backoff_base,
            backoff_cap=args.remote_backoff_cap,
            hedge_delay=args.remote_hedge_delay,
            hedge_percentile=args.remote_hedge_percentile,
            breaker_failures=args.remote_breaker_failures,
            breaker_reset=args.remote_breaker_reset,
            pool_size=args.remote_pool_size,
            pipeline_chunk=args.remote_pipeline_chunk,
            filter_mirrors=not args.remote_no_filter_mirrors,
            protocol=args.remote_protocol,
        )
    except (ValueError, RemoteError) as exc:
        raise SystemExit(f"efd serve: {exc}")


class _VerdictReporter:
    """Shared ``on_verdict`` callback for every serve mode.

    Prints each verdict as it lands (flushed, so piped output streams
    live) and keeps the delivered-verdict tally — the summary source
    that stays correct when retention prunes resolved sessions out of
    ``service.results`` before the run ends.
    """

    def __init__(self, quiet: bool):
        self.quiet = quiet
        self.predictions: dict = {}

    def __call__(self, job, result) -> None:
        self.predictions[job] = result.prediction
        if not self.quiet:
            if hasattr(result, "outcome"):
                # Family-cascade verdict: outcome + family carry more
                # than the bare prediction ("same app, new version").
                print(f"verdict job={job} {result.describe()} "
                      f"votes={dict(result.votes)}", flush=True)
            else:
                app = result.prediction or "unknown"
                print(f"verdict job={job} app={app} "
                      f"votes={dict(result.votes)}", flush=True)


async def _serve_run(engine, samples, config, reporter, chunk_size: int = 256):
    """Feed a (possibly blocking) sample iterator through the service.

    ``chunk_size`` is how many samples each executor read pulls; live
    stdin feeds use 1 so a verdict is never held hostage to a chunk
    that hasn't filled yet.
    """
    import asyncio
    from itertools import islice

    from repro.serve import IngestService

    loop = asyncio.get_running_loop()
    service = IngestService(engine, config, on_verdict=reporter)
    async with service:
        iterator = iter(samples)
        while True:
            # Pull the stream on the default executor so a blocking
            # stdin read never stalls the recognition loop.
            chunk = await loop.run_in_executor(
                None, lambda: list(islice(iterator, chunk_size))
            )
            if not chunk:
                break
            await service.submit_many(chunk)
        await service.drain()
    return service


async def _serve_listen(engine, config, listen, uds, reporter):
    """Run the service behind a TCP/UDS listener until SIGTERM/SIGINT,
    then drain gracefully: stop accepting, flush in-flight producer
    batches, resolve every outstanding session."""
    import asyncio
    import signal

    from repro.serve import IngestService, NetListener

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)

    host, port = _parse_hostport(listen) if listen is not None else (None, None)
    service = IngestService(engine, config, on_verdict=reporter)
    try:
        async with service:
            listener = NetListener(service, host=host or "127.0.0.1",
                                   port=port, uds=uds)
            async with listener:
                for endpoint in listener.endpoints:
                    print(f"listening on {endpoint}", flush=True)
                await stop.wait()
                print("draining: no longer accepting producers", flush=True)
            await service.drain()
    finally:
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(sig)
    return service


async def _serve_replicated(args, config, reporter):
    """Run the service as a replication leader (``--publish``) and/or
    replica (``--follow``) until SIGTERM/SIGINT.

    A replica starts its follower *before* loading the dictionary so an
    empty ``--efd-dir`` bootstraps from the leader's snapshot; once the
    base is on disk the engine is built normally and the follower is
    attached to the live store, applying records under the service's
    engine lock.  A ``--publish`` endpoint re-ships this directory's
    delta-log downstream (fan-out relays work: a node may follow and
    publish at once) and answers ``status``/``promote``/``follow``
    control requests from ``efd promote``.
    """
    import asyncio
    import signal

    from repro.engine.replicate import (
        ReplicationFollower,
        ReplicationPublisher,
        parse_replica_endpoint,
    )
    from repro.serve import IngestService, NetListener

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    follower = publisher = listener = None
    try:
        if args.follow or args.follow_uds:
            upstream = (parse_replica_endpoint(args.follow)
                        if args.follow else {"uds": args.follow_uds})
            follower = ReplicationFollower(
                args.efd_dir,
                reconnect_delay=config.repl_reconnect_delay,
                **upstream,
            )
            await follower.start()
            if not await follower.wait_ready(timeout=60.0):
                await follower.close()
                raise SystemExit(
                    "efd serve: replica never reached the leader's "
                    "generation (is the leader publishing?)"
                )
            print(f"replica synced at generation {follower.generation}",
                  flush=True)
        engine, _, _, _ = _serve_build_engine(args, listening=True)
        service = IngestService(engine, config, on_verdict=reporter)
        if follower is not None:
            # Attach before the event loop runs anything else so no
            # records land between the store load and the attach.
            follower.attach(engine.dictionary, lock=service.engine_lock)
            follower.stats = engine.stats
        async with service:
            if args.publish or args.publish_uds:
                pub_kwargs: dict = {}
                if args.publish:
                    pub_kwargs.update(parse_replica_endpoint(args.publish))
                if args.publish_uds:
                    pub_kwargs["uds"] = args.publish_uds
                on_promote = on_follow = None
                if follower is not None:
                    async def on_promote():
                        reply = await follower.promote()
                        publisher.role = "leader"
                        print(f"promoted: serving as leader at generation "
                              f"{reply['generation']}", flush=True)
                        return reply

                    async def on_follow(msg):
                        target = str(msg.get("target", ""))
                        try:
                            endpoint = parse_replica_endpoint(target)
                        except (ValueError, SystemExit) as exc:
                            return {"error": f"bad follow target: {exc}"}
                        await follower.refollow(**endpoint)
                        print(f"re-following {target}", flush=True)
                        return {"ok": True, "target": target}
                publisher = ReplicationPublisher(
                    args.efd_dir,
                    stats=engine.stats,
                    poll_interval=config.repl_poll_interval,
                    heartbeat=config.repl_heartbeat,
                    role="replica" if follower is not None else "leader",
                    on_promote=on_promote,
                    on_follow=on_follow,
                    **pub_kwargs,
                )
                await publisher.start()
                for endpoint in publisher.endpoints:
                    print(f"publishing on {endpoint}", flush=True)
            if args.listen is not None or args.uds is not None:
                host, port = (_parse_hostport(args.listen)
                              if args.listen is not None else (None, None))
                listener = NetListener(service, host=host or "127.0.0.1",
                                       port=port, uds=args.uds)
                await listener.start()
                for endpoint in listener.endpoints:
                    print(f"listening on {endpoint}", flush=True)
            try:
                await stop.wait()
                print("draining: no longer accepting producers", flush=True)
            finally:
                if listener is not None:
                    await listener.close()
                if publisher is not None:
                    await publisher.close()
                if follower is not None:
                    await follower.close()
            await service.drain()
    finally:
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(sig)
    return service


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import dataclasses
    import json

    from repro.serve import ServeConfig

    listening = args.listen is not None or args.uds is not None
    following = args.follow is not None or args.follow_uds is not None
    replicating = (following or args.publish is not None
                   or args.publish_uds is not None)
    if listening and args.demo:
        raise SystemExit("efd serve: --demo cannot be combined with "
                         "--listen/--uds (producers push real streams)")
    if replicating and args.efd_dir is None:
        raise SystemExit("efd serve: --publish/--follow require --efd-dir "
                         "(replication ships a columnar directory)")
    if args.follow and args.follow_uds:
        raise SystemExit("efd serve: --follow and --follow-uds are "
                         "mutually exclusive (one leader at a time)")
    if replicating:
        engine = samples = expected = stream_fh = None
    else:
        engine, samples, expected, stream_fh = _serve_build_engine(
            args, listening=listening
        )
    config = ServeConfig(
        max_pending_samples=args.queue_size,
        backpressure=args.policy,
        max_sessions=args.max_sessions,
        batch_max_sessions=args.batch_size,
        batch_max_delay=args.batch_delay,
        session_timeout=args.session_timeout,
        evict=args.evict,
        default_nodes=args.nodes,
        retention_max_age=args.retention_age,
        retention_max_done=args.retention_max_done,
        compact_on_close=not args.no_compact_on_close,
        remote_deadline=args.remote_deadline,
        remote_try_timeout=args.remote_try_timeout,
        remote_retries=args.remote_retries,
        remote_backoff_base=args.remote_backoff_base,
        remote_backoff_cap=args.remote_backoff_cap,
        remote_hedge_delay=args.remote_hedge_delay,
        remote_hedge_percentile=args.remote_hedge_percentile,
        remote_breaker_failures=args.remote_breaker_failures,
        remote_breaker_reset=args.remote_breaker_reset,
        remote_pool_size=args.remote_pool_size,
        remote_pipeline_chunk=args.remote_pipeline_chunk,
        remote_filter_mirrors=not args.remote_no_filter_mirrors,
        remote_protocol=args.remote_protocol,
        family_mode=args.family,
        family_coarse_depth=args.family_coarse_depth,
        family_spec_path=args.family_spec,
    )
    if following:
        # A replica folding its own delta-log would advance its
        # generation past the leader's; only a promote may compact.
        config = dataclasses.replace(config, compact_on_close=False)
    reporter = _VerdictReporter(args.quiet)
    if replicating:
        service = asyncio.run(_serve_replicated(args, config, reporter))
    elif listening:
        service = asyncio.run(
            _serve_listen(engine, config, args.listen, args.uds, reporter)
        )
    else:
        # Live stdin: read sample-by-sample so verdicts flow as soon as
        # the interval completes; files/demo streams read in chunks.
        chunk_size = 1 if (not args.demo and args.input == "-") else 256
        try:
            service = asyncio.run(
                _serve_run(engine, samples, config, reporter, chunk_size)
            )
        finally:
            if stream_fh is not None:
                stream_fh.close()
    # Summarize from the stats gauges and the reporter tally, not the
    # session table — retention may already have pruned resolved
    # sessions out of service.results.
    stats = service.stats
    n_served = stats.sessions_active + stats.sessions_retained + stats.n_pruned
    print(f"served {n_served} session(s), "
          f"{len(reporter.predictions)} verdict(s)")
    print(stats.render())
    if expected is not None:
        correct = sum(
            1 for job, prediction in reporter.predictions.items()
            if prediction == expected.get(job)
        )
        total = len(expected)
        print(f"demo accuracy: {correct}/{total} = {correct / total:.3f}"
              if total else "demo: no jobs")
    if args.stats_out is not None:
        with open(args.stats_out, "w", encoding="utf-8") as fh:
            json.dump(stats.as_dict(), fh, indent=2)
        print(f"stats snapshot -> {args.stats_out}")
    return 0


def _cmd_shardserve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from repro.engine import load_sharded
    from repro.engine.remote import ShardServer

    store = load_sharded(args.directory)
    n_shards = (args.n_shards if args.n_shards is not None
                else getattr(store, "n_shards", None))
    if n_shards is None:
        raise SystemExit("efd shardserve: store has no shard count; "
                         "pass --n-shards")
    shards = None
    if args.shards is not None:
        try:
            shards = [int(s) for s in args.shards.split(",") if s.strip()]
        except ValueError:
            raise SystemExit(f"efd shardserve: invalid --shards {args.shards!r}")

    async def run() -> ShardServer:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        if args.uds is not None:
            kwargs = {"uds": args.uds}
        else:
            host, port = _parse_hostport(args.listen)
            kwargs = {"host": host, "port": port}
        try:
            server = ShardServer(store, n_shards=n_shards, shards=shards,
                                 **kwargs)
        except ValueError as exc:
            raise SystemExit(f"efd shardserve: {exc}")
        try:
            async with server:
                for endpoint in server.endpoints:
                    print(f"listening on {endpoint}", flush=True)
                owned = ",".join(str(s) for s in server.shards)
                print(f"serving shard(s) {owned} of {n_shards} "
                      f"({len(store)} key(s))", flush=True)
                await stop.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)
        return server

    server = asyncio.run(run())
    print(server.stats.render())
    if args.stats_out is not None:
        with open(args.stats_out, "w", encoding="utf-8") as fh:
            json.dump(server.stats.as_dict(), fh, indent=2)
        print(f"stats snapshot -> {args.stats_out}")
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    import asyncio

    from repro.engine.replicate import ReplicationError, elect_and_promote

    try:
        outcome = asyncio.run(
            elect_and_promote(args.candidates, timeout=args.timeout)
        )
    except ReplicationError as exc:
        print(f"efd promote: {exc}", file=sys.stderr)
        return 2
    promoted = outcome["promoted"]
    print(f"promoted {outcome['winner']} to leader at generation "
          f"{promoted.get('generation')} "
          f"({promoted.get('folded', 0)} pending record(s) folded)")
    for cand, status in outcome["statuses"].items():
        marker = "*" if cand == outcome["winner"] else " "
        print(f"{marker} {cand}: generation {status.get('generation')}, "
              f"{status.get('records')} pending record(s)")
    for cand, error in outcome["unreachable"].items():
        print(f"  {cand}: unreachable ({error})")
    for cand, reply in outcome["refollowed"].items():
        if reply.get("ok"):
            print(f"  {cand}: re-following {outcome['winner']}")
        else:
            print(f"  {cand}: re-follow failed: "
                  f"{reply.get('error', reply)}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import read_samples, replay_samples

    if args.producers < 1:
        raise SystemExit("efd replay: --producers must be >= 1")
    if args.input == "-":
        samples = list(read_samples(sys.stdin))
    else:
        with open(args.input, "r", encoding="utf-8") as fh:
            samples = list(read_samples(fh))
    host, port = (None, None)
    if args.connect is not None:
        host, port = _parse_hostport(args.connect)
    summaries = asyncio.run(replay_samples(
        samples,
        producers=args.producers,
        host=host or "127.0.0.1",
        port=port,
        uds=args.uds,
        batch_lines=args.batch_lines,
    ))
    accepted = sum(int(s.get("accepted", 0)) for s in summaries)
    errors = [s["error"] for s in summaries if "error" in s]
    if not args.quiet:
        for i, summary in enumerate(summaries):
            print(f"producer {i}: {summary}")
    print(f"replayed {len(samples)} sample(s) over {len(summaries)} "
          f"producer(s): accepted={accepted}, errors={len(errors)}")
    return 1 if errors else 0


def _family_load_dictionary(args: argparse.Namespace):
    if args.efd is not None:
        from repro.core.serialization import load_dictionary

        return load_dictionary(args.efd)
    from repro.engine import load_sharded

    return load_sharded(args.efd_dir)


def _cmd_family_build(args: argparse.Namespace) -> int:
    from repro.family import FamilyCascade, FamilySpec, save_family_spec

    dictionary = _family_load_dictionary(args)
    apps = dictionary.app_names()
    if not apps:
        raise SystemExit("efd family build: the dictionary holds no labels")
    mapping = {app: FamilySpec().family_of_app(app) for app in apps}
    for entry in args.map or []:
        app, sep, family = entry.partition("=")
        if not sep or not app or not family:
            raise SystemExit(
                f"efd family build: --map expects APP=FAMILY, got {entry!r}"
            )
        mapping[app] = family
    spec = FamilySpec(mapping)
    try:
        cascade = FamilyCascade(
            dictionary, spec=spec, coarse_depth=args.coarse_depth,
            fine_depth=args.depth,
        )
    except ValueError as exc:
        raise SystemExit(f"efd family build: {exc}")
    sizes = cascade.coarse_stats()
    print(f"family hierarchy over {sizes['variants']} app(s):")
    for family, variants in spec.variants_by_family(apps).items():
        print(f"  {family:<16} <- {', '.join(variants)}")
    print(f"coarse tier : {sizes['coarse_keys']} key(s) at depth "
          f"{args.coarse_depth} ({sizes['families']} family label(s))")
    print(f"fine tier   : {sizes['fine_keys']} key(s) at depth {args.depth}")
    if args.out is not None:
        save_family_spec(args.out, spec, args.coarse_depth, args.depth)
        print(f"family spec -> {args.out}")
    return 0


def _cmd_family_report(args: argparse.Namespace) -> int:
    from repro.data.io import load_dataset
    from repro.family import FamilyCascade, load_family_spec

    dictionary = _family_load_dictionary(args)
    spec = None
    coarse_depth = args.coarse_depth
    if args.spec is not None:
        spec, coarse_depth, _ = load_family_spec(args.spec)
    try:
        cascade = FamilyCascade(
            dictionary, spec=spec, coarse_depth=coarse_depth,
            fine_depth=args.depth,
        )
    except ValueError as exc:
        raise SystemExit(f"efd family report: {exc}")
    records = list(load_dataset(args.data))
    verdicts = cascade.recognize_records(
        records,
        metric=args.metric,
        interval=(args.interval[0], args.interval[1]),
        backend=args.backend,
        n_workers=args.workers,
    )
    tally = {"match": 0, "near-family": 0, "unknown": 0}
    for record, verdict in zip(records, verdicts):
        tally[verdict.outcome] += 1
        if not args.quiet:
            print(f"{record.label:<24} {verdict.describe()}")
    total = len(records)
    print(f"cascaded {total} execution(s): "
          f"{tally['match']} match, "
          f"{tally['near-family']} near-family (same app, new version), "
          f"{tally['unknown']} unknown app")
    sizes = cascade.coarse_stats()
    print(f"tiers: {sizes['coarse_keys']} coarse key(s) at depth "
          f"{coarse_depth} over {sizes['families']} family(ies), "
          f"{sizes['fine_keys']} fine key(s) at depth {args.depth}")
    return 0


_FAMILY_COMMANDS = {
    "build": _cmd_family_build,
    "report": _cmd_family_report,
}


def _cmd_family(args: argparse.Namespace) -> int:
    return _FAMILY_COMMANDS[args.family_command](args)


_ENGINE_COMMANDS = {
    "selftest": _cmd_engine_selftest,
    "shard": _cmd_engine_shard,
    "compact": _cmd_engine_compact,
    "expand": _cmd_engine_expand,
    "reshard": _cmd_engine_reshard,
    "recognize": _cmd_engine_recognize,
    "info": _cmd_engine_info,
}


def _cmd_engine(args: argparse.Namespace) -> int:
    return _ENGINE_COMMANDS[args.engine_command](args)


_COMMANDS = {
    "generate": _cmd_generate,
    "fit": _cmd_fit,
    "recognize": _cmd_recognize,
    "experiment": _cmd_experiment,
    "tables": _cmd_tables,
    "info": _cmd_info,
    "engine": _cmd_engine,
    "family": _cmd_family,
    "serve": _cmd_serve,
    "shardserve": _cmd_shardserve,
    "promote": _cmd_promote,
    "replay": _cmd_replay,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
