"""Command-line interface: ``efd`` (or ``python -m repro``).

Subcommands
-----------
- ``efd generate --out data.npz`` — build a synthetic Taxonomist-style
  dataset.
- ``efd fit --data data.npz --out efd.json`` — learn a dictionary.
- ``efd recognize --efd efd.json --data data.npz`` — recognize
  executions.
- ``efd experiment --name normal_fold`` — run one of the paper's five
  experiments end to end.
- ``efd tables`` — render the paper's Tables 1/2/4.
- ``efd info`` — registry and configuration overview.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("--out", required=True, help="output .npz path")
    p.add_argument("--metrics", nargs="+", default=["nr_mapped_vmstat"])
    p.add_argument("--repetitions", type=int, default=10)
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--duration-cap", type=float, default=None)


def _add_fit(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("fit", help="learn an EFD from a dataset")
    p.add_argument("--data", required=True, help="dataset .npz path")
    p.add_argument("--out", required=True, help="output dictionary JSON path")
    p.add_argument("--metric", default="nr_mapped_vmstat")
    p.add_argument("--depth", type=int, default=None,
                   help="fixed rounding depth (default: tuned by CV)")
    p.add_argument("--interval", nargs=2, type=float, default=[60.0, 120.0])


def _add_recognize(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("recognize", help="recognize executions with an EFD")
    p.add_argument("--efd", required=True, help="dictionary JSON path")
    p.add_argument("--data", required=True, help="dataset .npz path")
    p.add_argument("--metric", default="nr_mapped_vmstat")
    p.add_argument("--depth", type=int, required=True,
                   help="rounding depth the dictionary was built with")
    p.add_argument("--interval", nargs=2, type=float, default=[60.0, 120.0])


def _add_experiment(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("experiment", help="run one of the paper's experiments")
    p.add_argument(
        "--name",
        required=True,
        choices=["normal_fold", "soft_input", "soft_unknown",
                 "hard_input", "hard_unknown", "figure2"],
    )
    p.add_argument("--repetitions", type=int, default=6)
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--metric", default="nr_mapped_vmstat")
    p.add_argument("--folds", type=int, default=5)


def _add_tables(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("tables", help="render the paper's tables")
    p.add_argument("--which", nargs="+", default=["1", "2", "4"],
                   choices=["1", "2", "4"])
    p.add_argument("--repetitions", type=int, default=4)
    p.add_argument("--seed", type=int, default=2021)


def _add_info(sub: argparse._SubParsersAction) -> None:
    sub.add_parser("info", help="registry and configuration overview")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="efd",
        description="Execution Fingerprint Dictionary for HPC application "
                    "recognition (CLUSTER 2021 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_fit(sub)
    _add_recognize(sub)
    _add_experiment(sub)
    _add_tables(sub)
    _add_info(sub)
    return parser


# ---------------------------------------------------------------------------
# Command implementations (imports deferred so `--help` stays snappy)
# ---------------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data.io import save_dataset
    from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator

    config = DatasetConfig(
        metrics=tuple(args.metrics),
        repetitions=args.repetitions,
        seed=args.seed,
        duration_cap=args.duration_cap,
    )
    dataset = TaxonomistDatasetGenerator(config).generate()
    save_dataset(dataset, args.out)
    summary = dataset.summary()
    print(
        f"wrote {summary['executions']} executions "
        f"({summary['pairs']} app-input pairs x {args.repetitions} reps, "
        f"{summary['metrics']} metric(s)) to {args.out}"
    )
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from repro.core.recognizer import EFDRecognizer
    from repro.core.serialization import save_dictionary
    from repro.data.io import load_dataset

    dataset = load_dataset(args.data)
    recognizer = EFDRecognizer(
        metric=args.metric,
        interval=(args.interval[0], args.interval[1]),
        depth=args.depth,
    ).fit(dataset)
    save_dictionary(recognizer.dictionary_, args.out)
    stats = recognizer.stats()
    print(
        f"learned EFD: depth={recognizer.depth_}, keys={stats.n_keys}, "
        f"insertions={stats.n_insertions}, "
        f"pruning_ratio={stats.pruning_ratio:.2f} -> {args.out}"
    )
    return 0


def _cmd_recognize(args: argparse.Namespace) -> int:
    from repro.core.fingerprint import build_fingerprints
    from repro.core.matcher import match_fingerprints
    from repro.core.serialization import load_dictionary
    from repro.data.io import load_dataset

    efd = load_dictionary(args.efd)
    dataset = load_dataset(args.data)
    interval = (args.interval[0], args.interval[1])
    correct = 0
    for record in dataset:
        fps = build_fingerprints(record, args.metric, args.depth, interval)
        result = match_fingerprints(efd, fps)
        prediction = result.prediction or "unknown"
        marker = "OK " if prediction == record.app_name else "MISS"
        if prediction == record.app_name:
            correct += 1
        print(
            f"{marker} record {record.record_id:4d} true={record.label:14s} "
            f"predicted={prediction:12s} votes={dict(result.votes)}"
        )
    total = len(dataset)
    print(f"accuracy: {correct}/{total} = {correct / total:.3f}" if total else
          "empty dataset")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
    from repro.experiments.figures import figure2_series, render_figure2
    from repro.experiments.protocol import make_efd_factory, run_experiment

    config = DatasetConfig(
        metrics=(args.metric,), repetitions=args.repetitions, seed=args.seed
    )
    dataset = TaxonomistDatasetGenerator(config).generate()
    if args.name == "figure2":
        series = figure2_series(dataset, efd_metric=args.metric, k=args.folds,
                                seed=args.seed)
        print(render_figure2(series))
        return 0
    result = run_experiment(
        args.name, dataset, make_efd_factory(metric=args.metric, seed=args.seed),
        k=args.folds, seed=args.seed,
    )
    print(result)
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.data.taxonomist import DatasetConfig, TaxonomistDatasetGenerator
    from repro.experiments.tables import (
        example_efd,
        render_table1,
        render_table2,
        render_table4,
    )

    if "1" in args.which:
        print(render_table1())
        print()
    if "2" in args.which or "4" in args.which:
        config = DatasetConfig(repetitions=args.repetitions, seed=args.seed)
        dataset = TaxonomistDatasetGenerator(config).generate()
        if "2" in args.which:
            print(render_table2(dataset))
            print()
        if "4" in args.which:
            from repro.experiments.tables import render_table4 as _render4

            print(_render4(example_efd(dataset)))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.telemetry.metrics import default_registry, TABLE3_METRICS
    from repro.workloads.registry import APP_NAMES, STARRED_APPS, default_workloads

    registry = default_registry()
    workloads = default_workloads()
    print(f"repro {__version__} — EFD reproduction (CLUSTER 2021)")
    print(f"metric registry : {len(registry)} metrics in groups {registry.groups()}")
    print(f"paper metrics   : {list(TABLE3_METRICS)[:4]} ...")
    print(f"applications    : {APP_NAMES}")
    print(f"with input L    : {STARRED_APPS}")
    print(f"app-input pairs : {len(workloads.app_input_pairs())}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "fit": _cmd_fit,
    "recognize": _cmd_recognize,
    "experiment": _cmd_experiment,
    "tables": _cmd_tables,
    "info": _cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
