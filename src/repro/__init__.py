"""repro — Execution Fingerprint Dictionary for HPC Application Recognition.

A full reproduction of Jakobsche, Lachiche, Cavelan & Ciorba, *An
Execution Fingerprint Dictionary for HPC Application Recognition*
(IEEE CLUSTER 2021, arXiv:2109.04766), including every substrate the
paper depends on: an LDMS-like monitoring simulation, behaviour models
of the eleven evaluation applications, a simulated cluster, a
Taxonomist-style dataset generator and baseline classifier, and a
from-scratch ML toolbox (the environment has no scikit-learn).

Quick start
-----------
>>> from repro import generate_dataset, EFDRecognizer   # doctest: +SKIP
>>> dataset = generate_dataset(repetitions=6)           # doctest: +SKIP
>>> recognizer = EFDRecognizer().fit(dataset)           # doctest: +SKIP
>>> recognizer.predict(dataset[0])                      # doctest: +SKIP
'ft'
"""

from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import DEFAULT_INTERVAL, Fingerprint, build_fingerprints
from repro.core.inverse import UsagePredictor
from repro.core.matcher import MatchResult
from repro.core.multimetric import MultiMetricRecognizer
from repro.core.recognizer import EFDRecognizer
from repro.core.rounding import round_depth, round_depth_array
from repro.core.serialization import (
    dictionary_from_json,
    dictionary_to_json,
    load_dictionary,
    save_dictionary,
)
from repro.core.streaming import StreamingRecognizer, StreamSession
from repro.core.anomaly import DeviationDetector, DeviationReport
from repro.core.temporal import MultiIntervalRecognizer
from repro.core.tuning import select_rounding_depth
from repro.baselines.taxonomist import TaxonomistClassifier
from repro.data.dataset import ExecutionDataset, ExecutionRecord
from repro.data.io import load_dataset, save_dataset
from repro.data.splits import UNKNOWN_LABEL
from repro.data.taxonomist import (
    DatasetConfig,
    TaxonomistDatasetGenerator,
    generate_dataset,
)
from repro.engine import (
    BatchRecognizer,
    EngineStats,
    ShardedDictionary,
    load_sharded,
    save_sharded,
)
from repro.serve import IngestService, NetListener, Sample, ServeConfig
from repro.telemetry.metrics import default_registry

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "EFDRecognizer",
    "ExecutionFingerprintDictionary",
    "Fingerprint",
    "build_fingerprints",
    "DEFAULT_INTERVAL",
    "MatchResult",
    "round_depth",
    "round_depth_array",
    "select_rounding_depth",
    "MultiMetricRecognizer",
    "MultiIntervalRecognizer",
    "UsagePredictor",
    "StreamingRecognizer",
    "StreamSession",
    "DeviationDetector",
    "DeviationReport",
    "dictionary_to_json",
    "dictionary_from_json",
    "save_dictionary",
    "load_dictionary",
    # engine (sharded store + batch recognition)
    "BatchRecognizer",
    "EngineStats",
    "ShardedDictionary",
    "save_sharded",
    "load_sharded",
    # serve (async live-session ingestion + network listener)
    "IngestService",
    "NetListener",
    "Sample",
    "ServeConfig",
    # data
    "ExecutionDataset",
    "ExecutionRecord",
    "DatasetConfig",
    "TaxonomistDatasetGenerator",
    "generate_dataset",
    "save_dataset",
    "load_dataset",
    "UNKNOWN_LABEL",
    # baselines & telemetry
    "TaxonomistClassifier",
    "default_registry",
]
