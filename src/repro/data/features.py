"""Per-node statistical feature extraction (the baseline's food).

Taxonomist computes, for every metric's time series on every node, a
fixed family of statistical features over the *entire execution window*
and classifies nodes from the concatenated feature vector.  The EFD's
whole point is that one rounded interval mean suffices instead — but to
draw the paper's Figure 2 comparison we need the rich features too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import ExecutionDataset, ExecutionRecord

#: Feature family per metric series (Taxonomist uses percentiles and
#: simple moments; we add a skew proxy).
FEATURE_NAMES: Tuple[str, ...] = (
    "min", "max", "mean", "std",
    "p5", "p25", "p50", "p75", "p95",
    "skew_proxy",
)


def series_features(values: np.ndarray) -> np.ndarray:
    """Feature vector of one series; NaN samples are ignored.

    Returns zeros for an all-NaN series (a dead sampler should not crash
    feature extraction — the classifier simply sees an uninformative row).
    """
    values = np.asarray(values, dtype=float)
    valid = values[~np.isnan(values)]
    if valid.size == 0:
        return np.zeros(len(FEATURE_NAMES))
    mean = float(valid.mean())
    std = float(valid.std())
    p5, p25, p50, p75, p95 = np.percentile(valid, [5, 25, 50, 75, 95])
    skew_proxy = (mean - p50) / std if std > 0 else 0.0
    return np.array(
        [valid.min(), valid.max(), mean, std, p5, p25, p50, p75, p95, skew_proxy]
    )


@dataclass(frozen=True)
class FeatureMatrix:
    """Extracted features plus bookkeeping.

    ``X[i]`` describes one (execution, node) entity; ``exec_index[i]``
    maps it back to its dataset record so per-execution majority votes
    can be formed, and ``node[i]`` is the logical node id.
    """

    X: np.ndarray
    labels: Tuple[str, ...]       # application name per entity
    exec_index: Tuple[int, ...]   # dataset record position per entity
    node: Tuple[int, ...]
    feature_names: Tuple[str, ...]


class FeatureExtractor:
    """Extracts Taxonomist-style per-node features from a dataset.

    Parameters
    ----------
    metrics:
        Which metrics to featurize (defaults to every dataset metric).
    window:
        ``(start, end)`` seconds; ``end=None`` means full execution.  The
        paper's comparison uses the full window for the baseline; passing
        ``(60, 120)`` shows what the baseline does on the EFD's budget.
    """

    def __init__(
        self,
        metrics: Optional[Sequence[str]] = None,
        window: Tuple[float, Optional[float]] = (0.0, None),
    ):
        start, end = window
        if end is not None and end <= start:
            raise ValueError(f"window end must exceed start, got {window}")
        self.metrics = list(metrics) if metrics is not None else None
        self.window = (float(start), None if end is None else float(end))

    def feature_names_for(self, metrics: Sequence[str]) -> List[str]:
        return [f"{m}:{f}" for m in metrics for f in FEATURE_NAMES]

    def _record_metrics(self, dataset: ExecutionDataset) -> List[str]:
        if self.metrics is not None:
            missing = [m for m in self.metrics if m not in dataset.metrics]
            if missing:
                raise KeyError(
                    f"dataset lacks requested metrics {missing[:5]}; "
                    f"has {dataset.metrics[:5]}..."
                )
            return self.metrics
        return dataset.metrics

    def extract(self, dataset: ExecutionDataset) -> FeatureMatrix:
        """Feature matrix over every (execution, node) entity."""
        metrics = self._record_metrics(dataset)
        start, end = self.window
        rows: List[np.ndarray] = []
        labels: List[str] = []
        exec_index: List[int] = []
        nodes: List[int] = []
        for pos, record in enumerate(dataset):
            for node in range(record.n_nodes):
                vec = np.empty(len(metrics) * len(FEATURE_NAMES))
                for mi, metric in enumerate(metrics):
                    series = record.series(metric, node)
                    stop = end if end is not None else series.duration
                    window_series = series.slice(start, stop)
                    vec[mi * len(FEATURE_NAMES):(mi + 1) * len(FEATURE_NAMES)] = (
                        series_features(window_series.values)
                    )
                rows.append(vec)
                labels.append(record.app_name)
                exec_index.append(pos)
                nodes.append(node)
        X = np.vstack(rows) if rows else np.empty((0, len(metrics) * len(FEATURE_NAMES)))
        return FeatureMatrix(
            X=X,
            labels=tuple(labels),
            exec_index=tuple(exec_index),
            node=tuple(nodes),
            feature_names=tuple(self.feature_names_for(metrics)),
        )
