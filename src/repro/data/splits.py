"""Learning/testing splits for the paper's five experiments (§4).

Executions have two identifying dimensions — application name and input
size — and the experiments differ only in how the learning and testing
sets are split along them:

1. **normal fold** — stratified 5-fold cross-validation over everything.
2. **soft input** — normal folds, but each input size is removed from the
   *learning* side once; testing sets stay the same.
3. **soft unknown** — normal folds, but each application is removed from
   the learning side once; testing sets stay the same (the removed app's
   correct answer becomes "unknown").
4. **hard input** — learn on 3 of 4 input sizes, test *only* the 4th.
5. **hard unknown** — learn on 10 of 11 applications, test *only* the
   11th (correct answer: "unknown").

Correctness is judged at the application-name level ("returning FT_X for
FT_Y is considered correct").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RngLike, derive_rng
from repro.data.dataset import ExecutionDataset

#: Ground-truth label assigned to executions the dictionary should *not*
#: recognize.
UNKNOWN_LABEL = "unknown"


@dataclass(frozen=True)
class Split:
    """One learning/testing split with ground truth for the test side."""

    name: str
    train_indices: Tuple[int, ...]
    test_indices: Tuple[int, ...]
    expected: Tuple[str, ...]  # app-level ground truth per test index
    detail: str = ""

    def __post_init__(self) -> None:
        if len(self.test_indices) != len(self.expected):
            raise ValueError(
                f"split {self.name!r}: {len(self.test_indices)} test indices "
                f"but {len(self.expected)} expected labels"
            )
        overlap = set(self.train_indices) & set(self.test_indices)
        if overlap:
            raise ValueError(
                f"split {self.name!r}: train/test overlap on indices "
                f"{sorted(overlap)[:5]}"
            )


def _stratified_folds(
    labels: Sequence[str], k: int, rng: RngLike = None
) -> List[np.ndarray]:
    """Partition indices into ``k`` folds, stratified by label."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    labels = list(labels)
    if len(labels) < k:
        raise ValueError(f"cannot make {k} folds from {len(labels)} examples")
    generator = derive_rng(rng, "folds")
    by_label: Dict[str, List[int]] = {}
    for i, lab in enumerate(labels):
        by_label.setdefault(lab, []).append(i)
    folds: List[List[int]] = [[] for _ in range(k)]
    offset = 0
    for lab in sorted(by_label):
        idx = np.array(by_label[lab])
        generator.shuffle(idx)
        for j, i in enumerate(idx):
            folds[(j + offset) % k].append(int(i))
        # Rotate the starting fold per label so small classes spread out.
        offset += len(idx) % k
    return [np.array(sorted(f), dtype=int) for f in folds]


def kfold_splits(
    dataset: ExecutionDataset, k: int = 5, seed: RngLike = 0
) -> List[Split]:
    """Experiment 1 — stratified k-fold CV on the full dataset."""
    labels = dataset.labels()
    apps = dataset.app_labels()
    folds = _stratified_folds(labels, k, seed)
    splits = []
    for fi, test_idx in enumerate(folds):
        test_set = set(test_idx.tolist())
        train_idx = tuple(i for i in range(len(dataset)) if i not in test_set)
        expected = tuple(apps[i] for i in test_idx)
        splits.append(
            Split(
                name=f"normal_fold[{fi}]",
                train_indices=train_idx,
                test_indices=tuple(int(i) for i in test_idx),
                expected=expected,
                detail=f"fold {fi + 1}/{k}",
            )
        )
    return splits


def soft_input_splits(
    dataset: ExecutionDataset, k: int = 5, seed: RngLike = 0
) -> List[Split]:
    """Experiment 2 — normal folds minus one input size on the learn side."""
    base = kfold_splits(dataset, k, seed)
    records = dataset.records
    splits = []
    for removed in sorted(dataset.input_sizes()):
        for split in base:
            train = tuple(
                i for i in split.train_indices if records[i].input_size != removed
            )
            splits.append(
                Split(
                    name=f"soft_input[-{removed}]{split.name[len('normal_fold'):]}",
                    train_indices=train,
                    test_indices=split.test_indices,
                    expected=split.expected,
                    detail=f"input {removed} removed from learning",
                )
            )
    return splits


def soft_unknown_splits(
    dataset: ExecutionDataset, k: int = 5, seed: RngLike = 0
) -> List[Split]:
    """Experiment 3 — normal folds minus one application on the learn side.

    Ground truth for the removed application becomes ``UNKNOWN_LABEL``:
    the dictionary is *correct* when it finds no match for it.
    """
    base = kfold_splits(dataset, k, seed)
    records = dataset.records
    splits = []
    for removed in dataset.app_names():
        for split in base:
            train = tuple(
                i for i in split.train_indices if records[i].app_name != removed
            )
            expected = tuple(
                UNKNOWN_LABEL if records[i].app_name == removed else records[i].app_name
                for i in split.test_indices
            )
            splits.append(
                Split(
                    name=f"soft_unknown[-{removed}]{split.name[len('normal_fold'):]}",
                    train_indices=train,
                    test_indices=split.test_indices,
                    expected=expected,
                    detail=f"application {removed} removed from learning",
                )
            )
    return splits


def hard_input_splits(dataset: ExecutionDataset) -> List[Split]:
    """Experiment 4 — learn 3 of 4 inputs, test exclusively the 4th."""
    records = dataset.records
    splits = []
    for held_out in sorted(dataset.input_sizes()):
        train = tuple(
            i for i, r in enumerate(records) if r.input_size != held_out
        )
        test = tuple(i for i, r in enumerate(records) if r.input_size == held_out)
        expected = tuple(records[i].app_name for i in test)
        splits.append(
            Split(
                name=f"hard_input[{held_out}]",
                train_indices=train,
                test_indices=test,
                expected=expected,
                detail=f"testing exclusively input {held_out}",
            )
        )
    return splits


def hard_unknown_splits(dataset: ExecutionDataset) -> List[Split]:
    """Experiment 5 — learn 10 of 11 applications, test exclusively the 11th."""
    records = dataset.records
    splits = []
    for held_out in dataset.app_names():
        train = tuple(i for i, r in enumerate(records) if r.app_name != held_out)
        test = tuple(i for i, r in enumerate(records) if r.app_name == held_out)
        expected = tuple(UNKNOWN_LABEL for _ in test)
        splits.append(
            Split(
                name=f"hard_unknown[{held_out}]",
                train_indices=train,
                test_indices=test,
                expected=expected,
                detail=f"testing exclusively unknown application {held_out}",
            )
        )
    return splits
