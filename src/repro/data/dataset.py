"""Execution dataset containers.

An :class:`ExecutionRecord` is one labeled execution: application name,
input size, and per-(metric, node) telemetry.  An
:class:`ExecutionDataset` is an ordered collection of records with the
query helpers the experiment protocols need (filtering along the two
identifying dimensions — application and input — is exactly how the
paper's five experiments differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.execution import ExecutionResult
from repro.telemetry.timeseries import TimeSeries


@dataclass
class ExecutionRecord:
    """One labeled execution."""

    record_id: int
    app_name: str
    input_size: str
    n_nodes: int
    duration: float
    telemetry: Dict[Tuple[str, int], TimeSeries]
    rep_index: int = 0

    def __post_init__(self) -> None:
        if self.record_id < 0:
            raise ValueError(f"record_id must be >= 0, got {self.record_id}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        for (metric, node), series in self.telemetry.items():
            if not isinstance(series, TimeSeries):
                raise TypeError(
                    f"telemetry[{metric!r}, {node}] must be TimeSeries, "
                    f"got {type(series).__name__}"
                )
            if node < 0 or node >= self.n_nodes:
                raise ValueError(
                    f"telemetry node {node} outside [0, {self.n_nodes})"
                )

    @classmethod
    def from_result(
        cls, result: ExecutionResult, record_id: int, rep_index: int = 0
    ) -> "ExecutionRecord":
        return cls(
            record_id=record_id,
            app_name=result.app_name,
            input_size=result.input_size,
            n_nodes=result.n_nodes,
            duration=result.duration,
            telemetry=dict(result.telemetry),
            rep_index=rep_index,
        )

    @property
    def label(self) -> str:
        """``app_input`` label (e.g. ``"miniAMR_Z"``)."""
        return f"{self.app_name}_{self.input_size}"

    def metrics(self) -> List[str]:
        return sorted({m for m, _ in self.telemetry})

    def series(self, metric: str, node: int) -> TimeSeries:
        try:
            return self.telemetry[(metric, node)]
        except KeyError:
            raise KeyError(
                f"record {self.record_id} ({self.label}) has no series for "
                f"metric={metric!r} node={node}"
            ) from None

    def interval_mean(self, metric: str, node: int, start: float, end: float) -> float:
        """Mean of ``metric`` on ``node`` over ``[start, end)`` seconds."""
        return self.series(metric, node).interval_mean(start, end)


class ExecutionDataset:
    """Ordered collection of :class:`ExecutionRecord`."""

    def __init__(self, records: Sequence[ExecutionRecord], metrics: Sequence[str]):
        self.records: List[ExecutionRecord] = list(records)
        self.metrics: List[str] = list(metrics)
        ids = [r.record_id for r in self.records]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate record_id in dataset")

    # -- protocol -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ExecutionRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> ExecutionRecord:
        return self.records[index]

    # -- label queries --------------------------------------------------------
    def labels(self) -> List[str]:
        """``app_input`` label per record, dataset order."""
        return [r.label for r in self.records]

    def app_labels(self) -> List[str]:
        """Application name per record, dataset order."""
        return [r.app_name for r in self.records]

    def app_names(self) -> List[str]:
        """Distinct application names, first-seen order."""
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.app_name, None)
        return list(seen)

    def input_sizes(self) -> List[str]:
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.input_size, None)
        return list(seen)

    def app_input_pairs(self) -> List[Tuple[str, str]]:
        seen: Dict[Tuple[str, str], None] = {}
        for r in self.records:
            seen.setdefault((r.app_name, r.input_size), None)
        return list(seen)

    # -- selection --------------------------------------------------------------
    def indices_where(self, predicate: Callable[[ExecutionRecord], bool]) -> List[int]:
        return [i for i, r in enumerate(self.records) if predicate(r)]

    def subset(self, indices: Sequence[int]) -> "ExecutionDataset":
        """New dataset holding ``records[i] for i in indices`` (shared records)."""
        n = len(self.records)
        for i in indices:
            if i < 0 or i >= n:
                raise IndexError(f"index {i} outside [0, {n})")
        return ExecutionDataset([self.records[i] for i in indices], self.metrics)

    def filter(
        self,
        apps: Optional[Sequence[str]] = None,
        inputs: Optional[Sequence[str]] = None,
        exclude_apps: Optional[Sequence[str]] = None,
        exclude_inputs: Optional[Sequence[str]] = None,
    ) -> "ExecutionDataset":
        """Filtered view along the two identifying dimensions."""
        apps_set = set(apps) if apps is not None else None
        inputs_set = set(inputs) if inputs is not None else None
        ex_apps = set(exclude_apps or ())
        ex_inputs = set(exclude_inputs or ())

        def keep(r: ExecutionRecord) -> bool:
            if apps_set is not None and r.app_name not in apps_set:
                return False
            if inputs_set is not None and r.input_size not in inputs_set:
                return False
            if r.app_name in ex_apps or r.input_size in ex_inputs:
                return False
            return True

        return ExecutionDataset([r for r in self.records if keep(r)], self.metrics)

    # -- summaries -----------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Dataset composition in Table 2 terms."""
        reps: Dict[Tuple[str, str], int] = {}
        for r in self.records:
            key = (r.app_name, r.input_size)
            reps[key] = reps.get(key, 0) + 1
        rep_counts = sorted(set(reps.values()))
        return {
            "applications": self.app_names(),
            "input_sizes": sorted(self.input_sizes()),
            "node_count": self.records[0].n_nodes if self.records else 0,
            "pairs": len(reps),
            "repetitions": rep_counts,
            "executions": len(self.records),
            "metrics": len(self.metrics),
        }

    def check_consistent(self) -> None:
        """Validate that every record carries every dataset metric."""
        for r in self.records:
            have = set(r.metrics())
            missing = [m for m in self.metrics if m not in have]
            if missing:
                raise ValueError(
                    f"record {r.record_id} ({r.label}) is missing metrics "
                    f"{missing[:5]}"
                )
