"""Dataset persistence.

Datasets round-trip through a single compressed ``.npz`` archive: one
array per (record, metric, node) series plus a JSON metadata blob.  This
keeps the on-disk format dependency-free and the load path exact
(bit-identical values, NaN dropout markers preserved).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

import numpy as np

from repro.data.dataset import ExecutionDataset, ExecutionRecord
from repro.telemetry.timeseries import TimeSeries

_META_KEY = "__meta__"
_FORMAT_VERSION = 1


def _series_key(record_id: int, metric: str, node: int) -> str:
    return f"r{record_id}|{metric}|{node}"


def save_dataset(dataset: ExecutionDataset, path: str) -> None:
    """Write ``dataset`` to ``path`` (``.npz``, compressed)."""
    arrays: Dict[str, np.ndarray] = {}
    meta_records: List[dict] = []
    for record in dataset:
        series_meta = []
        for (metric, node), series in sorted(record.telemetry.items()):
            key = _series_key(record.record_id, metric, node)
            arrays[key] = series.values
            series_meta.append(
                {"metric": metric, "node": node, "period": series.period,
                 "t0": series.t0, "key": key}
            )
        meta_records.append(
            {
                "record_id": record.record_id,
                "app_name": record.app_name,
                "input_size": record.input_size,
                "n_nodes": record.n_nodes,
                "duration": record.duration,
                "rep_index": record.rep_index,
                "series": series_meta,
            }
        )
    meta = {
        "format_version": _FORMAT_VERSION,
        "metrics": dataset.metrics,
        "records": meta_records,
    }
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_dataset(path: str) -> ExecutionDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path}: not a repro dataset archive (missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        version = meta.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported dataset format version {version!r} "
                f"(expected {_FORMAT_VERSION})"
            )
        records: List[ExecutionRecord] = []
        for rmeta in meta["records"]:
            telemetry: Dict[Tuple[str, int], TimeSeries] = {}
            for smeta in rmeta["series"]:
                values = archive[smeta["key"]]
                telemetry[(smeta["metric"], int(smeta["node"]))] = TimeSeries(
                    values, period=smeta["period"], t0=smeta["t0"]
                )
            records.append(
                ExecutionRecord(
                    record_id=rmeta["record_id"],
                    app_name=rmeta["app_name"],
                    input_size=rmeta["input_size"],
                    n_nodes=rmeta["n_nodes"],
                    duration=rmeta["duration"],
                    telemetry=telemetry,
                    rep_index=rmeta.get("rep_index", 0),
                )
            )
    dataset = ExecutionDataset(records, meta["metrics"])
    dataset.check_consistent()
    return dataset
