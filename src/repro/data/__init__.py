"""Dataset substrate.

Reconstructs the public Taxonomist dataset's *shape* (Table 2): labeled
repeated executions of eleven applications with inputs X/Y/Z (plus L for
a subset) on four nodes, with 562 LDMS metrics at 1 Hz.  See DESIGN.md
for the calibration rationale.
"""

from repro.data.dataset import ExecutionRecord, ExecutionDataset
from repro.data.taxonomist import (
    DatasetConfig,
    TaxonomistDatasetGenerator,
    generate_dataset,
)
from repro.data.splits import (
    Split,
    kfold_splits,
    soft_input_splits,
    soft_unknown_splits,
    hard_input_splits,
    hard_unknown_splits,
    UNKNOWN_LABEL,
)
from repro.data.features import FeatureExtractor, FEATURE_NAMES
from repro.data.io import save_dataset, load_dataset

__all__ = [
    "ExecutionRecord",
    "ExecutionDataset",
    "DatasetConfig",
    "TaxonomistDatasetGenerator",
    "generate_dataset",
    "Split",
    "kfold_splits",
    "soft_input_splits",
    "soft_unknown_splits",
    "hard_input_splits",
    "hard_unknown_splits",
    "UNKNOWN_LABEL",
    "FeatureExtractor",
    "FEATURE_NAMES",
    "save_dataset",
    "load_dataset",
]
