"""Taxonomist-style dataset generator (Table 2).

Generates labeled repeated executions of the eleven evaluation
applications by actually *running* their behaviour models through the
simulated cluster + LDMS pipeline.  The public dataset the paper uses is
one third of the original (10 of 30 repetitions, 562 of 721 metrics);
``DatasetConfig.repetitions`` defaults to the public subset's 10.

Determinism: the whole dataset is a pure function of
``DatasetConfig.seed`` — every execution derives its RNG from
``(seed, app, input, repetition)``, so adding metrics or dropping
repetitions never reshuffles the remaining telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util.hashing import stable_hash
from repro._util.rng import derive_rng
from repro.cluster.execution import ExecutionEngine
from repro.data.dataset import ExecutionDataset, ExecutionRecord
from repro.telemetry.metrics import MetricRegistry, default_registry
from repro.telemetry.noise import NoiseModel, make_noise
from repro.telemetry.sampler import SamplerConfig
from repro.workloads.registry import WorkloadRegistry, default_workloads

#: Number of repeated executions in the full (non-public) dataset.
FULL_REPETITIONS = 30
#: Number in the public subset the paper evaluates on (one third).
PUBLIC_REPETITIONS = 10


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of the synthetic dataset.

    Defaults reproduce the public dataset's shape for the paper's
    headline metric.  Tests shrink ``repetitions``/``duration_cap`` for
    speed; benches widen ``metrics`` for the Taxonomist baseline.
    """

    metrics: Tuple[str, ...] = ("nr_mapped_vmstat",)
    repetitions: int = PUBLIC_REPETITIONS
    n_nodes: int = 4
    seed: int = 2021
    noise_kind: str = "default"
    noise_scale: float = 1.0
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    duration_cap: Optional[float] = None  # cap execution length (seconds)
    apps: Optional[Tuple[str, ...]] = None  # None -> all eleven
    inputs: Optional[Tuple[str, ...]] = None  # None -> per-app availability

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not self.metrics:
            raise ValueError("metrics must be non-empty")
        if self.duration_cap is not None and self.duration_cap <= 0:
            raise ValueError("duration_cap must be positive")


class TaxonomistDatasetGenerator:
    """Builds :class:`ExecutionDataset` objects from behaviour models."""

    def __init__(
        self,
        config: Optional[DatasetConfig] = None,
        workloads: Optional[WorkloadRegistry] = None,
        registry: Optional[MetricRegistry] = None,
    ):
        self.config = config or DatasetConfig()
        self.workloads = workloads or default_workloads()
        self.registry = registry or default_registry()
        for m in self.config.metrics:
            self.registry.get(m)  # validate metric names early

    def _noise(self) -> NoiseModel:
        return make_noise(
            self.config.noise_kind, scale_multiplier=self.config.noise_scale
        )

    def _pairs(self) -> List[Tuple[str, str]]:
        cfg = self.config
        apps = list(cfg.apps) if cfg.apps is not None else self.workloads.names()
        pairs: List[Tuple[str, str]] = []
        for app in apps:
            available = self.workloads.inputs_for(app)
            wanted = (
                [i for i in cfg.inputs if i in available]
                if cfg.inputs is not None
                else available
            )
            for inp in wanted:
                pairs.append((app, inp))
        return pairs

    def generate(self) -> ExecutionDataset:
        """Generate the dataset (deterministic in the config)."""
        cfg = self.config
        engine = ExecutionEngine(
            metrics=list(cfg.metrics),
            sampler_config=cfg.sampler,
            noise=self._noise(),
            registry=self.registry,
        )
        records: List[ExecutionRecord] = []
        record_id = 0
        for app_name, inp in self._pairs():
            app = self.workloads.get(app_name)
            for rep in range(cfg.repetitions):
                rng = derive_rng(stable_hash(cfg.seed, app_name, inp, rep))
                duration = app.duration(inp)
                if cfg.duration_cap is not None:
                    duration = min(duration, cfg.duration_cap)
                result = engine.run(
                    app,
                    inp,
                    n_nodes=cfg.n_nodes,
                    rng=rng,
                    execution_id=record_id,
                    duration=duration,
                )
                records.append(
                    ExecutionRecord.from_result(result, record_id, rep_index=rep)
                )
                record_id += 1
        dataset = ExecutionDataset(records, list(cfg.metrics))
        dataset.check_consistent()
        return dataset


def generate_dataset(
    metrics: Sequence[str] = ("nr_mapped_vmstat",),
    repetitions: int = PUBLIC_REPETITIONS,
    seed: int = 2021,
    **kwargs,
) -> ExecutionDataset:
    """Convenience wrapper: ``generate_dataset(metrics=[...], ...)``."""
    config = DatasetConfig(
        metrics=tuple(metrics), repetitions=repetitions, seed=seed, **kwargs
    )
    return TaxonomistDatasetGenerator(config).generate()
