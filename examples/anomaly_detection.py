#!/usr/bin/env python3
"""Detecting deviations from past resource usage (paper §1, use case b).

    "...we can (b) detect deviations from past resource usage
    (indicating anomalies and potential errors)."

A job claims to execute application ``lu``. The EFD has learned lu's
fingerprints from past executions, so the deviation detector can check —
two minutes into the run — whether the job behaves like lu ever did:

1. an honest lu run sits within a bucket or two of learned fingerprints;
2. a run with one degraded node (e.g. memory pressure from a leak) puts
   that node many buckets away -> node-level alert;
3. a job that lied about its application entirely is flagged on every
   node.

Streaming recognition and deviation checking compose: the same
per-node interval means feed both.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro import DeviationDetector, EFDRecognizer, generate_dataset
from repro.cluster.execution import ExecutionEngine
from repro.data.dataset import ExecutionRecord
from repro.telemetry.timeseries import TimeSeries
from repro.workloads.registry import default_workloads


def main() -> None:
    print("=== Learn fingerprints from production history ===")
    history = generate_dataset(repetitions=6, seed=17)
    recognizer = EFDRecognizer(depth=3).fit(history)
    detector = DeviationDetector(
        recognizer.dictionary_, depth=3, threshold_buckets=3.0
    )
    print(f"dictionary: {recognizer.stats().n_keys} keys, depth 3, "
          f"alert threshold 3 buckets\n")

    engine = ExecutionEngine(metrics=["nr_mapped_vmstat"])
    lu = default_workloads().get("lu")

    print("=== 1. Honest lu execution ===")
    honest = ExecutionRecord.from_result(
        engine.run(lu, "Y", n_nodes=4, rng=101, duration=150.0), 1
    )
    report = detector.check(honest, app="lu")
    print(f"{report}")
    for node in report.nodes:
        print(f"  node {node.node}: observed {node.observed_mean:8.1f}, "
              f"nearest learned key {node.nearest_key:8.1f} "
              f"({node.distance_buckets:.1f} buckets)")

    print("\n=== 2. lu with one degraded node (leaking ~12%) ===")
    degraded_result = engine.run(lu, "Y", n_nodes=4, rng=102, duration=150.0)
    telemetry = dict(degraded_result.telemetry)
    leaky = telemetry[("nr_mapped_vmstat", 2)]
    telemetry[("nr_mapped_vmstat", 2)] = TimeSeries(
        leaky.values * np.linspace(1.0, 1.25, len(leaky.values))
    )
    degraded = ExecutionRecord(2, "lu", "Y", 4, 150.0, telemetry)
    report = detector.check(degraded, app="lu")
    print(f"{report}")
    print(f"  anomalous nodes: {report.anomalous_nodes()} "
          f"(operator drill-down target)")

    print("\n=== 3. Job that lied about its application ===")
    imposter_result = engine.run(
        default_workloads().get("CoMD"), "X", n_nodes=4, rng=103,
        duration=150.0,
    )
    imposter = ExecutionRecord.from_result(imposter_result, 3)
    report = detector.check(imposter, app="lu")  # declared lu, runs CoMD
    print(f"declared lu, actually CoMD -> {report}")
    recognized = recognizer.predict_one(imposter)
    print(f"recognition agrees: fingerprints match {recognized!r}, not 'lu'")


if __name__ == "__main__":
    main()
