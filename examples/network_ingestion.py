#!/usr/bin/env python3
"""Network ingestion: many producers, one recognizer, one socket.

`examples/live_serving.py` feeds the `IngestService` in-process; this
example runs the fleet topology on top of it — a `NetListener` accepts
several concurrent monitoring relays over a Unix domain socket, each
pushing its own share of the jobs as newline-delimited JSON:

1. learn an EFD and start the `IngestService` behind a `NetListener`
   bound to a Unix domain socket,
2. split a 12-job interleaved telemetry stream across 3 producer tasks
   (`split_by_job` keeps each job's samples on one connection, in
   order) and push them concurrently with `push_samples`,
3. watch verdicts arrive while the producers are still streaming,
4. prove the multi-producer verdicts element-wise identical to the
   synchronous `recognize_sessions` path on the same samples,
5. read the connection counters the listener added to `EngineStats`.

Run:  python examples/network_ingestion.py
"""

import asyncio
import os
import tempfile

from repro import (
    BatchRecognizer,
    EFDRecognizer,
    IngestService,
    NetListener,
    ServeConfig,
    StreamingRecognizer,
    generate_dataset,
)
from repro.serve import interleave_records, push_samples, split_by_job

METRIC = "nr_mapped_vmstat"
N_JOBS = 12
N_PRODUCERS = 3


def main() -> None:
    print("=== 1. Learn an EFD, start the service behind a UDS listener ===")
    dataset = generate_dataset(repetitions=3, seed=42, duration_cap=150.0)
    recognizer = EFDRecognizer(metric=METRIC, depth=3).fit(dataset)
    engine = BatchRecognizer(
        recognizer.dictionary_, metric=METRIC, depth=recognizer.depth_
    )
    records = list(dataset)[:: max(1, len(dataset) // N_JOBS)][:N_JOBS]
    job_ids = [f"job-{i:04d}" for i in range(len(records))]
    samples = list(interleave_records(records, METRIC, job_ids))
    streams = split_by_job(samples, N_PRODUCERS)
    print(f"dictionary: {len(recognizer.dictionary_)} keys; "
          f"{len(records)} jobs, {len(samples)} samples split over "
          f"{N_PRODUCERS} producers\n")

    arrived = []
    sock = os.path.join(tempfile.mkdtemp(prefix="efd-net-"), "efd.sock")

    async def serve() -> IngestService:
        config = ServeConfig(
            max_pending_samples=512,   # bounded: slow service stalls producers
            backpressure="block",      # lossless, via TCP/UDS flow control
            batch_max_sessions=16,
            batch_max_delay=0.005,
        )
        service = IngestService(
            engine, config,
            on_verdict=lambda job, r: arrived.append((job, r)),
        )
        async with service:
            async with NetListener(service, uds=sock) as listener:
                print(f"=== 2. {N_PRODUCERS} producers -> "
                      f"{listener.endpoints[0]} ===")
                summaries = await asyncio.gather(*(
                    push_samples(stream, uds=sock) for stream in streams
                ))
                for i, summary in enumerate(summaries):
                    print(f"producer {i}: accepted {summary['accepted']} "
                          f"of {summary['lines']} lines")
            await service.drain()
        return service

    service = asyncio.run(serve())

    print(f"\n=== 3. {len(arrived)} verdicts arrived mid-stream ===")
    for job, result in sorted(arrived)[:4]:
        print(f"  {job}: {result.prediction or 'unknown'}")
    print("  ...")

    print("\n=== 4. Multi-producer verdicts == synchronous batch path ===")
    streaming = StreamingRecognizer.from_recognizer(recognizer)
    sessions = []
    for record, job in zip(records, job_ids):
        session = streaming.open_session(n_nodes=record.n_nodes, session_id=job)
        for node in range(record.n_nodes):
            series = record.series(METRIC, node)
            session.ingest_many(node, series.times, series.values)
        sessions.append(session)
    reference = BatchRecognizer(
        recognizer.dictionary_, metric=METRIC, depth=recognizer.depth_
    ).recognize_sessions(sessions, force=True)
    results = service.results
    assert [results[job] for job in job_ids] == reference, \
        "network ingestion must equal the synchronous engine"
    print(f"element-wise identical across all {len(job_ids)} sessions, "
          f"regardless of which producer carried which job\n")

    print("=== 5. Connection counters ===")
    print(service.stats.render())


if __name__ == "__main__":
    main()
