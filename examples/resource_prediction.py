#!/usr/bin/env python3
"""Resource-usage prediction by using the dictionary in reverse (§6).

    "Populating the dictionary with different time intervals could enable
    resource usage prediction, by using the dictionary in reverse."

This example populates an EFD with three consecutive intervals, then:

1. recognizes a fresh execution from its FIRST two minutes,
2. looks the recognized application up in reverse to forecast its
   metric levels in the LATER intervals,
3. compares the forecast against what the execution actually did.

Useful for energy-aware scheduling: knowing two minutes in what a job
will consume for the rest of its run.

Run:  python examples/resource_prediction.py
"""

from repro import generate_dataset
from repro.core.dictionary import ExecutionFingerprintDictionary
from repro.core.fingerprint import build_fingerprints
from repro.core.inverse import UsagePredictor
from repro.core.matcher import match_fingerprints

INTERVALS = [(60.0, 120.0), (120.0, 180.0), (180.0, 240.0)]
METRIC = "nr_mapped_vmstat"
DEPTH = 3


def main() -> None:
    print("=== Build a multi-interval EFD from historic executions ===")
    history = generate_dataset(repetitions=6, seed=5)
    efd = ExecutionFingerprintDictionary()
    for record in history:
        for interval in INTERVALS:
            efd.add_many(
                build_fingerprints(record, METRIC, DEPTH, interval),
                record.label,
            )
    stats = efd.stats()
    print(
        f"dictionary: {stats.n_keys} keys across {len(INTERVALS)} intervals "
        f"({stats.n_insertions} fingerprints inserted)\n"
    )

    print("=== A fresh execution arrives; recognize it at the 2-minute mark ===")
    fresh = generate_dataset(repetitions=1, seed=999).filter(apps=["lu"])[0]
    first = build_fingerprints(fresh, METRIC, DEPTH, INTERVALS[0])
    verdict = match_fingerprints(efd, first)
    app = verdict.prediction or "unknown"
    print(f"recognized: {app} (votes: {dict(verdict.votes)})\n")

    print("=== Reverse lookup: forecast the rest of the execution ===")
    predictor = UsagePredictor(efd)
    print(f"{'interval':>12s} {'node':>4s} {'forecast':>10s} "
          f"{'actual':>10s} {'error':>7s}")
    for interval, expected in predictor.forecast_profile(app, METRIC, node=0):
        actual = fresh.interval_mean(METRIC, 0, *interval)
        err = abs(expected - actual) / actual
        print(
            f"[{interval[0]:4.0f}:{interval[1]:4.0f}] {0:>4d} "
            f"{expected:>10.0f} {actual:>10.0f} {err:>6.1%}"
        )

    print("\nforecast spread per node (min..max of stored fingerprints):")
    for forecast in predictor.forecast(app, metric=METRIC):
        if forecast.interval == INTERVALS[1]:
            print(
                f"  node {forecast.node}: {forecast.low:.0f}.."
                f"{forecast.high:.0f} "
                f"(from {forecast.observations} observations)"
            )


if __name__ == "__main__":
    main()
